//! Implementation of the `tconv` command-line tool: argument parsing and
//! the subcommand drivers, kept in a library so they can be tested.
//!
//! Subcommands:
//!
//! * `run` — convolve a PGM image through the delay-space engine;
//! * `describe` — print a compiled architecture's structure and costs;
//! * `explore` — sweep term counts / unit scales and print the Pareto set;
//! * `faults` — run a seeded fault-injection campaign and print the
//!   degradation report;
//! * `batch` — push a directory of PGM frames (or synthetic frames)
//!   through the supervised runtime: validation, timeouts, retry, and
//!   digital fallback, with a health report;
//! * `serve` — run the fault-tolerant streaming convolution service
//!   (length-prefixed binary protocol over TCP and/or a Unix socket,
//!   graceful SIGTERM drain);
//! * `kernels` — list the built-in kernels.
//!
//! No third-party argument parser: flags are simple `--key value` pairs.
//! Every failure path surfaces as a typed [`CliError`] — bad user input
//! prints one friendly line, never a panic backtrace — and each variant
//! maps to a distinct documented process exit code
//! ([`CliError::exit_code`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use ta_circuits::UnitScale;
use ta_core::campaign::{self, CampaignConfig};
use ta_core::{
    exec, ArchConfig, Architecture, ArithmeticMode, FaultError, GateEngine, SystemDescription,
    SystemError,
};
use ta_image::pgm::PgmError;
use ta_image::{conv, metrics, pgm, synth, Image, Kernel};

/// Every way a `tconv` invocation can fail, typed so the binary can print
/// a single clean diagnostic line (and tests can assert on the cause).
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// A positional argument appeared where a `--flag` was expected.
    UnexpectedArgument(String),
    /// A `--flag` was given without its value.
    MissingValue(String),
    /// A flag's value failed to parse as the expected number.
    InvalidNumber {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// The subcommand word is not one of the known commands.
    UnknownCommand(String),
    /// `--kernel` named no built-in kernel set.
    UnknownKernel(String),
    /// `--mode` named no arithmetic mode.
    UnknownMode(String),
    /// A flag combination is out of range (e.g. `--unit 0`).
    InvalidConfig(String),
    /// `run` was invoked with neither `--input` nor `--demo`.
    MissingInput,
    /// PGM I/O failed.
    Image(PgmError),
    /// The system description or architecture could not be compiled.
    System(SystemError),
    /// The engine rejected the run.
    Exec(exec::ExecError),
    /// The fault campaign configuration was invalid.
    Fault(FaultError),
    /// The supervised runtime was misconfigured.
    Runtime(ta_runtime::RuntimeError),
    /// A supervised batch left frames with no usable output; carries the
    /// full batch report so the diagnostics are not lost.
    BatchFailed {
        /// Frames with no usable output.
        failed: usize,
        /// The rendered batch report.
        report: String,
    },
    /// A telemetry artifact (`--trace`, `--metrics`, `--vcd`) could not
    /// be written.
    Telemetry(std::io::Error),
    /// The streaming service could not bind or run.
    Serve(ta_serve::ServeError),
    /// The write-ahead journal could not be created, resumed, or
    /// written (`--journal` / `--resume`).
    Journal(String),
    /// `profile` found a dynamic op count that disagrees with the static
    /// census — the simulator and the energy model have diverged.
    ProfileMismatch {
        /// Which op class disagreed.
        what: &'static str,
        /// The count the simulator observed.
        dynamic: u64,
        /// The count the energy model expected.
        expected: u64,
    },
    /// `top` could not connect to, scrape, or parse the server's metrics.
    Top(String),
    /// `inspect-bundle` could not read the file, or the bundle failed its
    /// schema check.
    Bundle(String),
}

impl CliError {
    /// The process exit code for this error, one distinct code per
    /// variant (see the `EXIT CODES` section of [`USAGE`]). Code 1 is
    /// left unused so a generic abort cannot be confused with a typed
    /// failure.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::UnexpectedArgument(_) => 2,
            CliError::MissingValue(_) => 3,
            CliError::InvalidNumber { .. } => 4,
            CliError::UnknownCommand(_) => 5,
            CliError::UnknownKernel(_) => 6,
            CliError::UnknownMode(_) => 7,
            CliError::InvalidConfig(_) => 8,
            CliError::MissingInput => 9,
            CliError::Image(_) => 10,
            CliError::System(_) => 11,
            CliError::Exec(_) => 12,
            CliError::Fault(_) => 13,
            CliError::Runtime(_) => 14,
            CliError::BatchFailed { .. } => 15,
            CliError::Telemetry(_) => 16,
            CliError::ProfileMismatch { .. } => 17,
            CliError::Serve(_) => 18,
            CliError::Journal(_) => 19,
            CliError::Top(_) => 20,
            CliError::Bundle(_) => 21,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnexpectedArgument(a) => write!(f, "unexpected argument {a:?}"),
            CliError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            CliError::InvalidNumber { flag, value } => {
                write!(f, "{flag} expects a number, got {value:?}")
            }
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?} — try `tconv help`")
            }
            CliError::UnknownKernel(k) => write!(
                f,
                "unknown kernel {k:?}; try: sobel pyrdown gauss laplacian sharpen emboss box3"
            ),
            CliError::UnknownMode(m) => {
                write!(f, "unknown mode {m:?}; try: importance exact approx noisy")
            }
            CliError::InvalidConfig(why) => f.write_str(why),
            CliError::MissingInput => f.write_str("run needs --input in.pgm (or --demo)"),
            CliError::Image(e) => write!(f, "image i/o: {e}"),
            CliError::System(e) => write!(f, "architecture: {e}"),
            CliError::Exec(e) => write!(f, "execution: {e}"),
            CliError::Fault(e) => write!(f, "fault campaign: {e}"),
            CliError::Runtime(e) => write!(f, "runtime: {e}"),
            CliError::BatchFailed { failed, report } => {
                write!(
                    f,
                    "{report}\nbatch: {failed} frame(s) produced no usable output"
                )
            }
            CliError::Telemetry(e) => write!(f, "telemetry output: {e}"),
            CliError::Serve(e) => write!(f, "serve: {e}"),
            CliError::Journal(why) => write!(f, "journal: {why}"),
            CliError::Top(why) => write!(f, "top: {why}"),
            CliError::Bundle(why) => write!(f, "inspect-bundle: {why}"),
            CliError::ProfileMismatch {
                what,
                dynamic,
                expected,
            } => write!(
                f,
                "profile: {what} diverged — simulator counted {dynamic}, energy model expects {expected}"
            ),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Image(e) => Some(e),
            CliError::System(e) => Some(e),
            CliError::Exec(e) => Some(e),
            CliError::Fault(e) => Some(e),
            CliError::Runtime(e) => Some(e),
            CliError::Telemetry(e) => Some(e),
            CliError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PgmError> for CliError {
    fn from(e: PgmError) -> Self {
        CliError::Image(e)
    }
}

impl From<SystemError> for CliError {
    fn from(e: SystemError) -> Self {
        CliError::System(e)
    }
}

impl From<exec::ExecError> for CliError {
    fn from(e: exec::ExecError) -> Self {
        CliError::Exec(e)
    }
}

impl From<FaultError> for CliError {
    fn from(e: FaultError) -> Self {
        CliError::Fault(e)
    }
}

impl From<ta_runtime::RuntimeError> for CliError {
    fn from(e: ta_runtime::RuntimeError) -> Self {
        CliError::Runtime(e)
    }
}

impl From<ta_core::Error> for CliError {
    fn from(e: ta_core::Error) -> Self {
        match e {
            ta_core::Error::System(e) => CliError::System(e),
            ta_core::Error::Exec(e) => CliError::Exec(e),
            ta_core::Error::Fault(e) => CliError::Fault(e),
            other => CliError::InvalidConfig(other.to_string()),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
tconv — delay-space convolution engine (temporal arithmetic, ASPLOS'24)

USAGE:
  tconv run --input in.pgm --kernel sobel [--output out.pgm] [options]
  tconv run --demo [--kernel gauss] [options]      (synthetic input)
  tconv describe --kernel sobel [--size 150] [options]
  tconv explore [--kernel sobel] [--size 72] [options]
  tconv faults [--kernel sobel] [--size 24] [options]
  tconv batch --input-dir frames/ [--output-dir out/] [options]
  tconv batch --demo [--frames 8] [options]
  tconv batch ... --journal batch.wal [--resume] [--fsync batch]
  tconv profile --demo [--kernel sobel] [--vcd wave.vcd] [options]
  tconv serve [--tcp 127.0.0.1:0] [--uds /run/tconv.sock] [--chaos]
  tconv top --addr HOST:PORT [--interval-ms 2000] [--once]
  tconv inspect-bundle FILE
  tconv kernels

OPTIONS (run/describe/explore/faults):
  --kernel NAME     sobel | pyrdown | gauss | laplacian | sharpen | emboss | box3
  --unit NS         unit scale in ns per delay unit        [default: 1]
  --nlse N          number of nLSE max-terms               [default: 7]
  --nlde N          number of nLDE inhibit-terms           [default: 20]
  --mode MODE       importance | exact | approx | noisy    [default: noisy]
  --seed N          noise seed                             [default: 0]
  --size N          frame edge for --demo/describe/explore [default: 96]

OPTIONS (faults):
  --rates LIST      comma-separated per-site fault rates   [default: 0,0.01,0.05,0.1]
  --trials N        fault-map draws per rate               [default: 3]
  --drift F         delay-drift magnitude (fraction)       [default: 0.2]
  --advance U       spurious-early advance (units)         [default: 0.5]
  --pixel-sites N   pixel sites probed in the sensitivity scan [default: 12]

OPTIONS (profile — per-stage time/energy/op breakdown):
  --vcd PATH        dump a first-cycle netlist waveform as VCD (GTKWave)
  --gate-opt MODE   on | off — netlist optimizer (constant folding,
                    hash-consing, dead-gate elimination) + event-driven
                    evaluation for the gate-level report   [default: on]
                    off compiles the unoptimized full-sweep engine
  (profile also accepts the run options above; default mode: approx)

TELEMETRY (any command):
  --trace PATH      write structured span/event records as JSON lines
  --metrics PATH    write a Prometheus-text metrics snapshot on exit

PARALLELISM (any command):
  --threads N       worker threads for the frame engine and every sweep
                    (0 = one per core; results are bit-identical at any
                    thread count)                          [default: 0]

SIMD (any command):
  --simd MODE       off | identical | tolerant             [default: identical]
                    identical: vectorized kernels, bit-for-bit equal to
                    the scalar engine; tolerant: polynomial exp/ln lanes,
                    a few ulp from libm; off: scalar golden path
  --simd-tier TIER  scalar | sse2 | avx2 | neon — pin the ISA tier
                    (default: widest available; errors if unavailable)

OPTIONS (batch — supervised runtime):
  --frames N        synthetic frames with --demo           [default: 8]
  --tolerance F     reject outputs beyond F nRMSE vs the digital reference
  --timeout-ms N    per-attempt watchdog budget (0 = off)  [default: 0]
  --retries N       retries after the first attempt        [default: 2]
  --fallback NAME   reference | exact | none               [default: reference]
  --fault-rate F    inject transient faults at this per-site rate [default: 0]
  --workers N       worker threads (0 = one per core)      [default: 0]

DURABILITY (batch — checkpoint/resume):
  --journal PATH    write-ahead journal: checkpoint every completed frame
  --resume          replay PATH's checkpoints (same inputs/config/seed
                    required) and execute only the unfinished frames;
                    resumed results are bit-identical to an
                    uninterrupted run
  --fsync POLICY    always | batch | never                 [default: batch]

OPTIONS (serve — fault-tolerant streaming convolution service):
  --tcp ADDR        TCP listen address, or `none`          [default: 127.0.0.1:0]
  --uds PATH        also listen on a Unix-domain socket
  --credits N       per-connection flow-control window     [default: 4]
  --max-connections N  concurrent connections before shed  [default: 32]
  --max-inflight N  global in-flight frame cap             [default: 8]
  --tenant-pending N   per-tenant pending frame cap        [default: 4]
  --deadline-ms N   default per-frame deadline             [default: 10000]
  --idle-ms N       idle connection timeout                [default: 30000]
  --strikes N       protocol violations before quarantine  [default: 3]
  --plan-cache N    compiled plans cached per connection   [default: 4]
  --chaos           honour chaos directives in submissions (testing only)
  --journal PATH    write-ahead journal of accepted requests and replies;
                    on restart, in-flight frames are recovered (or shed)
                    and client retries are answered idempotently from
                    the journal's completion index
  --fsync POLICY    always | batch | never                 [default: batch]
  --recovery MODE   recover | shed — what to do with journaled in-flight
                    frames at startup                      [default: recover]
  --slo-ms N        per-request latency objective; replies past it burn
                    the tenant's SLO error budget          [default: 250]
  --bundle-dir DIR  arm the flight recorder: on any anomaly (watchdog
                    timeout, degraded/failed frame, panic, journal error,
                    quarantine, shed burst) dump a JSONL diagnostics
                    bundle — recent traced spans/events, the in-flight
                    request contexts with their op/energy census, and a
                    full metrics snapshot — into DIR
  Prints `listening on ADDR` as soon as each endpoint is bound. SIGTERM
  or SIGINT drains gracefully: in-flight frames finish, new work is shed
  with busy(draining), connected clients get a goodbye, and the process
  exits 0.

OBSERVABILITY (top / inspect-bundle):
  tconv top polls a running server's Metrics wire request and renders a
  live dashboard: request/shed rates, latency percentiles, per-tenant
  SLO burn, journal size, and anomaly counts.
  --addr HOST:PORT  the server's TCP endpoint (required)
  --interval-ms N   refresh period                         [default: 2000]
  --once            print one snapshot and exit (no screen clearing)
  tconv inspect-bundle FILE schema-checks a flight-recorder bundle and
  prints its story: the anomaly, the offending trace's event timeline,
  and the in-flight requests at dump time. Exits non-zero if the file is
  not a valid bundle.

EXIT CODES:
  0 success; 1 unused (generic abort)
  2 unexpected argument      3 flag missing its value
  4 malformed number         5 unknown command
  6 unknown kernel           7 unknown mode
  8 invalid configuration    9 missing input
  10 image i/o failed        11 architecture rejected
  12 execution rejected      13 fault campaign invalid
  14 runtime misconfigured   15 batch left failed frames
  16 telemetry write failed  17 profile census mismatch
  18 serve failed to bind or run
  19 journal create/resume/write failed
  20 top could not connect or scrape
  21 bundle file invalid
";

/// Parsed `--key value` flags plus the subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand word.
    pub command: String,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::MissingValue`] for a dangling `--flag` with no
    /// value when the flag is not a known switch, and
    /// [`CliError::UnexpectedArgument`] for stray positional words.
    pub fn parse(raw: &[String]) -> Result<Args, CliError> {
        let mut args = Args {
            command: raw.first().cloned().unwrap_or_default(),
            ..Args::default()
        };
        let switches = ["--demo", "--help", "--chaos", "--resume", "--once"];
        let mut i = 1;
        while i < raw.len() {
            let key = &raw[i];
            if !key.starts_with("--") {
                // `inspect-bundle FILE` takes its one positional argument;
                // everywhere else a stray word is an error.
                if args.command == "inspect-bundle" && args.get("--file").is_none() {
                    args.flags.push(("--file".to_string(), key.clone()));
                    i += 1;
                    continue;
                }
                return Err(CliError::UnexpectedArgument(key.clone()));
            }
            if switches.contains(&key.as_str()) {
                args.switches.push(key.clone());
                i += 1;
            } else if i + 1 < raw.len() {
                args.flags.push((key.clone(), raw[i + 1].clone()));
                i += 2;
            } else {
                return Err(CliError::MissingValue(key.clone()));
            }
        }
        Ok(args)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::InvalidNumber {
                flag: key.to_string(),
                value: v.to_string(),
            }),
        }
    }
}

/// Resolves a kernel-set name.
///
/// # Errors
///
/// Returns [`CliError::UnknownKernel`] for an unknown name.
pub fn kernel_set(name: &str) -> Result<(Vec<Kernel>, usize), CliError> {
    Ok(match name {
        "sobel" => (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1),
        "pyrdown" => (vec![Kernel::pyr_down_5x5()], 2),
        "gauss" => (vec![Kernel::gaussian(7, 0.0)], 1),
        "laplacian" => (vec![Kernel::laplacian()], 1),
        "sharpen" => (vec![Kernel::sharpen()], 1),
        "emboss" => (vec![Kernel::emboss()], 1),
        "box3" => (vec![Kernel::box_filter(3)], 1),
        other => return Err(CliError::UnknownKernel(other.to_string())),
    })
}

fn mode_of(name: &str) -> Result<ArithmeticMode, CliError> {
    Ok(match name {
        "importance" => ArithmeticMode::ImportanceExact,
        "exact" => ArithmeticMode::DelayExact,
        "approx" => ArithmeticMode::DelayApprox,
        "noisy" => ArithmeticMode::DelayApproxNoisy,
        other => return Err(CliError::UnknownMode(other.to_string())),
    })
}

fn config_of(args: &Args) -> Result<ArchConfig, CliError> {
    let unit: f64 = args.num("--unit", 1.0)?;
    let nlse: usize = args.num("--nlse", 7)?;
    let nlde: usize = args.num("--nlde", 20)?;
    if unit <= 0.0 || nlse == 0 || nlde == 0 {
        return Err(CliError::InvalidConfig(
            "--unit/--nlse/--nlde must be positive".into(),
        ));
    }
    Ok(ArchConfig::new(UnitScale::new(unit, 50.0), nlse, nlde))
}

/// Parses `--fsync always|batch|never` (default: batch).
fn fsync_of(args: &Args) -> Result<ta_journal::FsyncPolicy, CliError> {
    let name = args.get("--fsync").unwrap_or("batch");
    ta_journal::FsyncPolicy::parse(name).ok_or_else(|| {
        CliError::InvalidConfig(format!("unknown --fsync {name:?}; try: always batch never"))
    })
}

/// Entry point shared by the binary and the tests: runs a parsed command
/// and returns the text to print.
///
/// The global telemetry flags are honoured for every command: `--trace
/// PATH` installs a JSONL trace sink before the command runs, and
/// `--metrics PATH` writes a Prometheus-text metrics snapshot after it
/// finishes (even a failing command leaves its partial metrics behind).
/// `--threads N` sizes the shared worker pool for every command (0 = one
/// worker per core); outputs are bit-identical at any thread count.
///
/// # Errors
///
/// Returns a [`CliError`] for bad arguments or I/O failures.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    if args.has("--help") || args.command.is_empty() || args.command == "help" {
        return Ok(USAGE.to_string());
    }
    ta_pool::set_threads(args.num("--threads", 0usize)?);
    if let Some(name) = args.get("--simd") {
        let mode: ta_simd::SimdMode = name.parse().map_err(|_| {
            CliError::InvalidConfig(format!(
                "unknown --simd {name:?}; try: off identical tolerant"
            ))
        })?;
        ta_simd::set_mode(mode);
    }
    if let Some(name) = args.get("--simd-tier") {
        let tier: ta_simd::SimdTier = name.parse().map_err(|_| {
            CliError::InvalidConfig(format!(
                "unknown --simd-tier {name:?}; try: scalar sse2 avx2 neon"
            ))
        })?;
        ta_simd::force_tier(Some(tier)).map_err(|e| CliError::InvalidConfig(e.to_string()))?;
    }
    if let Some(path) = args.get("--trace") {
        let sink = ta_telemetry::JsonlSink::create(path).map_err(CliError::Telemetry)?;
        ta_telemetry::tracer().install(std::sync::Arc::new(sink));
    }
    let result = match args.command.as_str() {
        "run" => cmd_run(args),
        "describe" => cmd_describe(args),
        "explore" => cmd_explore(args),
        "faults" => cmd_faults(args),
        "batch" => cmd_batch(args),
        "profile" => cmd_profile(args),
        "serve" => cmd_serve(args),
        "top" => cmd_top(args),
        "inspect-bundle" => cmd_inspect_bundle(args),
        "kernels" => Ok(cmd_kernels()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    };
    ta_telemetry::tracer().flush();
    if let Some(path) = args.get("--metrics") {
        std::fs::write(path, ta_telemetry::metrics().to_prometheus())
            .map_err(CliError::Telemetry)?;
    }
    result
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let image = if args.has("--demo") {
        let size: usize = args.num("--size", 96)?;
        synth::natural_image(size, size, args.num("--seed", 0u64)?)
    } else {
        let path = args.get("--input").ok_or(CliError::MissingInput)?;
        pgm::load_pgm(path)?
    };
    let mode = mode_of(args.get("--mode").unwrap_or("noisy"))?;
    let cfg = config_of(args)?;
    let desc = SystemDescription::new(image.width(), image.height(), kernels.clone(), stride)?;
    let arch = Architecture::new(desc, cfg)?;
    let run = exec::run(&arch, &image, mode, args.num("--seed", 0u64)?)?;

    let mut out = format!(
        "{} on {}×{} ({} mode)\n",
        kernels[0].name(),
        image.width(),
        image.height(),
        mode
    );
    // The engine's VTC saturates pixels below its dynamic-range floor, so
    // the software reference must see the same clipped frame (otherwise an
    // exact run over an image containing true zeros would report phantom
    // error). The importance mode bypasses the VTC and keeps raw pixels.
    let reference_image = if mode == ArithmeticMode::ImportanceExact {
        image.clone()
    } else {
        // Derive the floor from the compiled VTC rather than repeating its
        // constant: max_delay_units = -ln(min_pixel).
        let floor = (-arch.vtc().max_delay_units()).exp();
        image.map(|p| p.clamp(0.0, 1.0).max(floor))
    };
    for (k, o) in kernels.iter().zip(&run.outputs) {
        let reference = conv::convolve(&reference_image, k, stride);
        out.push_str(&format!(
            "  {:<10} {}×{}  nrmse vs software: {:.5}\n",
            k.name(),
            o.width(),
            o.height(),
            metrics::normalized_rmse(o, &reference)
        ));
    }
    out.push_str(&format!(
        "  energy: {}\n  timing: {}\n",
        run.energy, run.timing
    ));

    if let Some(path) = args.get("--output") {
        // Normalise the first output into [0,1] for the graymap.
        let o = &run.outputs[0];
        let (lo, hi) = o.min_max();
        let span = (hi - lo).max(1e-12);
        let norm = o.map(|p| (p - lo) / span);
        pgm::save_pgm(&norm, path)?;
        out.push_str(&format!(
            "  wrote {path} (first output, range-normalised)\n"
        ));
    }
    Ok(out)
}

fn cmd_describe(args: &Args) -> Result<String, CliError> {
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let size: usize = args.num("--size", 150)?;
    let desc = SystemDescription::new(size, size, kernels, stride)?;
    let arch = Architecture::new(desc, config_of(args)?)?;
    Ok(arch.describe())
}

fn cmd_explore(args: &Args) -> Result<String, CliError> {
    use ta_core::dse::{explore, SweepGrid};
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let size: usize = args.num("--size", 72)?;
    let seed: u64 = args.num("--seed", 0u64)?;
    let desc = SystemDescription::new(size, size, kernels, stride)?;
    let images: Vec<Image> = (0..2)
        .map(|i| synth::natural_image(size, size, seed + i))
        .collect();
    let grid = SweepGrid {
        nlse_terms: vec![5, 7, 10, 15],
        nlde_terms: vec![10, 20],
        unit_scales_ns: vec![1.0, 5.0, 10.0],
        element_multiplier: 50.0,
        seed,
    };
    let mut points = explore(&desc, &images, &grid)?;
    points.sort_by(|a, b| a.energy_uj.total_cmp(&b.energy_uj));
    let mut out = format!(
        "{:>9} {:>5} {:>5} {:>12} {:>9}  pareto\n",
        "unit(ns)", "nLSE", "nLDE", "energy(µJ)", "RMSE"
    );
    for p in &points {
        out.push_str(&format!(
            "{:>9.0} {:>5} {:>5} {:>12.2} {:>9.4}  {}\n",
            p.unit_ns,
            p.nlse_terms,
            p.nlde_terms,
            p.energy_uj,
            p.rmse,
            if p.pareto { "*" } else { "" }
        ));
    }
    Ok(out)
}

/// `tconv faults` — a seeded fault-injection campaign on a demo frame (or
/// a PGM via `--input`): rate sweep plus per-site sensitivity.
fn cmd_faults(args: &Args) -> Result<String, CliError> {
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let seed: u64 = args.num("--seed", 0u64)?;
    let image = match args.get("--input") {
        Some(path) => pgm::load_pgm(path)?,
        None => {
            let size: usize = args.num("--size", 24)?;
            synth::natural_image(size, size, seed)
        }
    };
    // Ideal-approximation hardware by default: fault effects stand out
    // against a deterministic background.
    let mode = mode_of(args.get("--mode").unwrap_or("approx"))?;
    let rates_raw = args.get("--rates").unwrap_or("0,0.01,0.05,0.1");
    let rates: Vec<f64> = rates_raw
        .split(',')
        .map(|tok| {
            tok.trim().parse().map_err(|_| CliError::InvalidNumber {
                flag: "--rates".into(),
                value: tok.to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    if rates.is_empty() {
        return Err(CliError::InvalidConfig(
            "--rates needs at least one rate".into(),
        ));
    }
    let cfg = CampaignConfig {
        mode,
        seed,
        rates,
        trials_per_rate: args.num("--trials", 3usize)?,
        drift_fraction: args.num("--drift", 0.2f64)?,
        early_advance_units: args.num("--advance", 0.5f64)?,
        max_pixel_sites: args.num("--pixel-sites", 12usize)?,
    };
    let desc = SystemDescription::new(image.width(), image.height(), kernels, stride)?;
    let arch = Architecture::new(desc, config_of(args)?)?;
    let report = campaign::run_campaign(&arch, &image, &cfg)?;
    Ok(report.to_string())
}

/// `tconv batch` — supervised batch execution: a directory of PGM frames
/// (or `--demo` synthetic frames) through the temporal engine under
/// validation, watchdog timeouts, seeded retry, and graceful fallback.
fn cmd_batch(args: &Args) -> Result<String, CliError> {
    use std::sync::Arc;
    use std::time::Duration;
    use ta_baseline::digital::DigitalModel;
    use ta_baseline::DigitalReference;
    use ta_core::FaultModel;
    use ta_runtime::{
        Engine, Fallback, FaultyTemporalEngine, RetryPolicy, Supervisor, SupervisorConfig,
        TemporalEngine, ValidationPolicy,
    };

    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let mode = mode_of(args.get("--mode").unwrap_or("noisy"))?;
    let seed: u64 = args.num("--seed", 0u64)?;

    // Collect the input frames: every *.pgm under --input-dir in name
    // order, or synthetic frames with --demo.
    let (names, images): (Vec<String>, Vec<Image>) = if let Some(dir) = args.get("--input-dir") {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| CliError::Image(PgmError::Io(e)))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|e| e.eq_ignore_ascii_case("pgm")))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(CliError::InvalidConfig(format!("no .pgm frames in {dir}")));
        }
        let mut names = Vec::new();
        let mut images = Vec::new();
        for p in paths {
            names.push(
                p.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default(),
            );
            images.push(pgm::load_pgm(&p)?);
        }
        (names, images)
    } else if args.has("--demo") {
        let count: usize = args.num("--frames", 8)?;
        let size: usize = args.num("--size", 48)?;
        (
            (0..count).map(|i| format!("demo-{i:03}.pgm")).collect(),
            (0..count)
                .map(|i| synth::natural_image(size, size, seed.wrapping_add(i as u64)))
                .collect(),
        )
    } else {
        return Err(CliError::MissingInput);
    };

    // The architecture is compiled once for the batch, so every frame
    // must share the first frame's geometry.
    let (w, h) = (images[0].width(), images[0].height());
    if let Some((name, img)) = names
        .iter()
        .zip(&images)
        .find(|(_, img)| (img.width(), img.height()) != (w, h))
    {
        return Err(CliError::InvalidConfig(format!(
            "frame {name} is {}×{} but the batch is {w}×{h}",
            img.width(),
            img.height()
        )));
    }
    let desc = SystemDescription::new(w, h, kernels.clone(), stride)?;
    let arch = Architecture::new(desc, config_of(args)?)?;

    let fault_rate: f64 = args.num("--fault-rate", 0.0)?;
    let engine: Arc<dyn Engine> = if fault_rate > 0.0 {
        let model = FaultModel::with_rate(fault_rate).map_err(CliError::Fault)?;
        Arc::new(FaultyTemporalEngine::new(
            arch.clone(),
            mode,
            model,
            seed ^ 0xFA,
        ))
    } else {
        Arc::new(TemporalEngine::new(arch.clone(), mode))
    };

    let tolerance: Option<f64> = match args.get("--tolerance") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| CliError::InvalidNumber {
            flag: "--tolerance".into(),
            value: v.to_string(),
        })?),
    };
    let timeout_ms: u64 = args.num("--timeout-ms", 0u64)?;
    let fallback_name = args.get("--fallback").unwrap_or("reference");
    let reference = Arc::new(
        DigitalReference::new(DigitalModel::conventional_65nm(), kernels.clone(), stride)
            .with_pixel_floor((-arch.vtc().max_delay_units()).exp()),
    );

    let mut supervisor = Supervisor::new(SupervisorConfig {
        validation: ValidationPolicy {
            require_finite: true,
            nrmse_tolerance: tolerance,
        },
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        retry: RetryPolicy {
            max_retries: args.num("--retries", 2u32)?,
            ..RetryPolicy::default()
        },
        workers: args.num("--workers", 0usize)?,
        seed,
    })
    .with_reference(reference);
    supervisor = match fallback_name {
        "reference" => supervisor.with_fallback(Fallback::Reference),
        "exact" => supervisor.with_fallback(Fallback::Engine(Arc::new(TemporalEngine::new(
            arch.clone(),
            ArithmeticMode::DelayExact,
        )))),
        "none" => supervisor,
        other => {
            return Err(CliError::InvalidConfig(format!(
                "unknown --fallback {other:?}; try: reference exact none"
            )))
        }
    };

    if args.has("--resume") && args.get("--journal").is_none() {
        return Err(CliError::InvalidConfig(
            "--resume needs --journal PATH (the journal to replay)".into(),
        ));
    }
    let (batch, replayed) = match args.get("--journal") {
        None => (supervisor.run_batch(&engine, &images, seed)?, None),
        Some(path) => {
            use ta_runtime::{hash_images, BatchJournal, BatchMeta, Fingerprint};
            let fsync = fsync_of(args)?;
            // Campaign identity: everything that steers the outputs.
            // Worker/thread counts are deliberately excluded — results
            // are bit-identical at any parallelism.
            let config_hash = Fingerprint::new()
                .str(args.get("--kernel").unwrap_or("sobel"))
                .str(&mode.to_string())
                .u64(w as u64)
                .u64(h as u64)
                .f64(args.num("--unit", 1.0)?)
                .u64(args.num("--nlse", 7u64)?)
                .u64(args.num("--nlde", 20u64)?)
                .f64(fault_rate)
                .f64(tolerance.unwrap_or(-1.0))
                .u64(timeout_ms)
                .u64(u64::from(args.num("--retries", 2u32)?))
                .str(fallback_name)
                .finish();
            let meta = BatchMeta {
                batch_seed: seed,
                frames: images.len() as u32,
                config_hash,
                images_hash: hash_images(&images),
            };
            let path = std::path::Path::new(path);
            let journal = if args.has("--resume") {
                BatchJournal::resume(path, fsync, &meta)
            } else {
                BatchJournal::create(path, fsync, &meta)
            }
            .map_err(|e| CliError::Journal(e.to_string()))?;
            let replayed = journal.recovered().len();
            let run = supervisor.run_batch_journaled(&engine, &images, seed, &journal);
            // Export the journal gauges the way serve mode does — from the
            // journal itself, even when the run errors out, so a `--metrics`
            // snapshot always reflects what is on disk.
            let stats = journal.stats();
            let m = ta_telemetry::metrics();
            m.describe(
                "ta_runtime_journal_records",
                "Records in the batch write-ahead journal",
            );
            m.describe(
                "ta_runtime_journal_bytes",
                "Bytes in the batch write-ahead journal",
            );
            m.gauge("ta_runtime_journal_records")
                .set(stats.records as f64);
            m.gauge("ta_runtime_journal_bytes").set(stats.bytes as f64);
            let batch = run.map_err(|e| match e {
                ta_runtime::RuntimeError::Journal(why) => CliError::Journal(why),
                other => CliError::Runtime(other),
            })?;
            (batch, Some(replayed))
        }
    };

    let mut out = format!(
        "supervised batch: {} frame(s) of {w}×{h} through {} ({mode} mode)\n",
        images.len(),
        engine.name(),
    );
    if let Some(replayed) = replayed {
        out.push_str(&format!(
            "journal: replayed {replayed} of {} frame(s), executed {}\n",
            images.len(),
            images.len() - replayed,
        ));
    }
    for (name, report) in names.iter().zip(&batch.reports) {
        out.push_str(&format!(
            "  {:<16} {:<9} attempts {} latency {:.2} ms\n",
            name,
            match &report.status {
                ta_runtime::FrameStatus::Ok => "ok".to_string(),
                ta_runtime::FrameStatus::Degraded { fallback, .. } =>
                    format!("degraded({fallback})"),
                ta_runtime::FrameStatus::Failed { .. } => "FAILED".to_string(),
            },
            report.attempts,
            report.latency.as_secs_f64() * 1e3,
        ));
        for line in &report.log {
            out.push_str(&format!("      {line}\n"));
        }
    }
    out.push_str(&format!("{}\n", batch.health));

    if let Some(dir) = args.get("--output-dir") {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Image(PgmError::Io(e)))?;
        let mut written = 0usize;
        for (name, outputs) in names.iter().zip(&batch.outputs) {
            let Some(outputs) = outputs else { continue };
            // First output, range-normalised, like `tconv run --output`.
            let o = &outputs[0];
            let (lo, hi) = o.min_max();
            let span = (hi - lo).max(1e-12);
            let norm = o.map(|p| (p - lo) / span);
            pgm::save_pgm(&norm, std::path::Path::new(dir).join(name))?;
            written += 1;
        }
        out.push_str(&format!("wrote {written} frame(s) to {dir}\n"));
    }

    if batch.health.failed > 0 {
        return Err(CliError::BatchFailed {
            failed: batch.health.failed,
            report: out,
        });
    }
    Ok(out)
}

/// `tconv profile` — run one frame with per-stage profiling on and print
/// a stage-by-stage breakdown of wall-clock time, modelled energy and op
/// counts, cross-checking the simulator's dynamic counters against the
/// energy model's static census.
fn cmd_profile(args: &Args) -> Result<String, CliError> {
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let seed: u64 = args.num("--seed", 0u64)?;
    let image = match args.get("--input") {
        Some(path) => pgm::load_pgm(path)?,
        None => {
            let size: usize = args.num("--size", 48)?;
            synth::natural_image(size, size, seed)
        }
    };
    let mode = mode_of(args.get("--mode").unwrap_or("approx"))?;
    if mode == ArithmeticMode::ImportanceExact {
        return Err(CliError::InvalidConfig(
            "profile needs a delay-space mode: exact | approx | noisy".into(),
        ));
    }
    let gate_opt = match args.get("--gate-opt").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::InvalidConfig(format!(
                "unknown --gate-opt {other:?}; try: on off"
            )))
        }
    };
    let desc = SystemDescription::new(image.width(), image.height(), kernels.clone(), stride)?;
    let arch = Architecture::new(desc, config_of(args)?)?;

    ta_telemetry::tracer().set_profiling(true);
    // Plan-cache counters are process-cumulative; snapshot around the run
    // so the report shows this frame's delta.
    let m = ta_telemetry::metrics();
    let (computed, reused) = (
        m.counter("ta_core_plan_rows_computed_total"),
        m.counter("ta_core_plan_rows_reused_total"),
    );
    let (computed0, reused0) = (computed.get(), reused.get());
    let run = exec::run(&arch, &image, mode, seed)?;
    let (rows_computed, rows_reused) = (computed.get() - computed0, reused.get() - reused0);
    let stages = run.stages.unwrap_or_default();
    let energy = arch.stage_energy();
    let census = arch.op_census();
    let ops = run.ops;

    // The acceptance cross-check: every data-independent op the simulator
    // performed must be an op the energy model charged for, and vice
    // versa. (Edge events and TDC decodes are data/mode-dependent and are
    // reported without a static expectation.)
    for (what, dynamic, expected) in [
        (
            "vtc conversions",
            ops.vtc_conversions,
            census.vtc_conversions,
        ),
        ("nLSE ops", ops.nlse_ops, census.nlse_ops),
        ("nLDE ops", ops.nlde_ops, census.nlde_ops),
    ] {
        if dynamic != expected {
            return Err(CliError::ProfileMismatch {
                what,
                dynamic,
                expected,
            });
        }
    }

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let mut out = format!(
        "profile: {} on {}×{} ({mode} mode), 1 frame\n",
        kernels[0].name(),
        image.width(),
        image.height(),
    );
    out.push_str(&format!(
        "  {:<16} {:>10} {:>13}  {}\n",
        "stage", "time(µs)", "energy(pJ)", "ops"
    ));
    let rows: [(&str, Option<f64>, f64, String); 6] = [
        (
            "vtc encode",
            Some(us(stages.vtc_encode)),
            energy.vtc_pj,
            format!("{} conversions", ops.vtc_conversions),
        ),
        (
            "weight matrix",
            Some(us(stages.delay_matrix)),
            energy.weight_matrix_pj,
            format!("{} edge events", ops.edge_events),
        ),
        (
            "nlse tree",
            Some(us(stages.nlse_tree)),
            energy.nlse_tree_pj,
            format!("{} nLSE ops", ops.nlse_ops),
        ),
        ("recurrence loop", None, energy.loop_pj, String::new()),
        (
            "nlde renorm",
            Some(us(stages.nlde_renorm)),
            energy.nlde_pj,
            format!("{} nLDE ops", ops.nlde_ops),
        ),
        (
            "tdc decode",
            None,
            energy.tdc_pj,
            format!("{} conversions", ops.tdc_conversions),
        ),
    ];
    for (name, time, pj, ops_text) in &rows {
        let time_text = time.map_or_else(|| "—".to_string(), |t| format!("{t:.1}"));
        out.push_str(&format!(
            "  {name:<16} {time_text:>10} {pj:>13.1}  {ops_text}\n"
        ));
    }
    out.push_str(&format!(
        "  {:<16} {:>10.1} {:>13.1}\n",
        "total",
        us(stages.total()),
        energy.total_pj(),
    ));
    out.push_str(&format!(
        "op census: dynamic counts match static expectation (vtc {}, nlse {}, nlde {})\n",
        ops.vtc_conversions, ops.nlse_ops, ops.nlde_ops
    ));
    let frame = run.energy.total_pj();
    out.push_str(&format!(
        "energy report agreement: {frame:.1} pJ/frame (stage buckets fold to the same tally)\n"
    ));
    let uses = rows_computed + rows_reused;
    let hit_pct = if uses == 0 {
        0.0
    } else {
        rows_reused as f64 / uses as f64 * 100.0
    };
    out.push_str(&format!(
        "plan cache: {rows_computed} row cells computed, {rows_reused} reused ({hit_pct:.1}% of {uses} uses)\n"
    ));

    // Gate-level pass: compile the race-logic netlists (optimized unless
    // --gate-opt off) and run the frame through the gate engine so the
    // report shows what the netlist optimizer bought on this geometry.
    let engine = if gate_opt {
        GateEngine::compile(&arch)
    } else {
        GateEngine::compile_unoptimized(&arch)
    };
    let (_gate_outs, gate_stats) = engine.run_counted(&arch, &image)?;
    match engine.opt_summary() {
        Some(s) => out.push_str(&format!(
            "gate opt: {} -> {} gates ({:.1}% eliminated; {} folded, {} shared, {} dead), {} netlists ({} deduped)\n",
            s.gates_pre,
            s.gates_post,
            s.reduction() * 100.0,
            s.folded,
            s.shared,
            s.dead,
            s.netlists,
            s.netlists_deduped,
        )),
        None => out.push_str("gate opt: off (full-sweep golden engine)\n"),
    }
    out.push_str(&format!(
        "gate events: {} gate evaluations across {} netlist evals\n",
        gate_stats.gate_evals, gate_stats.cycle_evals,
    ));

    if let Some(path) = args.get("--vcd") {
        write_profile_vcd(&arch, &image, path)?;
        out.push_str(&format!("wrote {path} (first-cycle netlist waveform)\n"));
    }
    Ok(out)
}

/// Compiles the first recurrence cycle of kernel 0 (first rail) into a
/// race-logic netlist, evaluates it on the frame's top-left window, and
/// dumps every node's edge time as a VCD waveform.
fn write_profile_vcd(
    arch: &Architecture,
    image: &ta_image::Image,
    path: &str,
) -> Result<(), CliError> {
    use ta_delay_space::DelayValue;
    use ta_race_logic::{blocks, CircuitBuilder};

    let dk = &arch.delay_kernels()[0];
    let rail = dk.rails()[0];
    let kw = arch.desc().kernel_width();
    let terms = arch.nlse_unit().approx().terms().to_vec();
    let k = arch.nlse_unit().latency_units();

    let mut b = CircuitBuilder::new();
    let pixels: Vec<_> = (0..kw).map(|kx| b.input(format!("px{kx}"))).collect();
    let boundary = b.input("frame_boundary");
    let mut leaves = Vec::new();
    for (kx, &px) in pixels.iter().enumerate() {
        let w = dk.rail_delay(rail, kx, 0);
        if w.is_never() {
            continue;
        }
        let weighted = b.delay(px, w.delay());
        leaves.push(b.inhibit(weighted, boundary));
    }
    if leaves.is_empty() {
        // A kernel row with no firing weights on this rail has no
        // datapath to dump; trace the raw pixel edges instead.
        leaves = pixels.clone();
    }
    let tree = blocks::build_nlse_tree(&mut b, &leaves, &terms, k);
    b.output("row0", tree.node);
    let circuit = b
        .build()
        .map_err(|e| CliError::InvalidConfig(format!("vcd netlist: {e}")))?;

    let vtc = arch.vtc();
    let mut inputs: Vec<DelayValue> = (0..kw)
        .map(|kx| vtc.convert_ideal(image.get(kx, 0)))
        .collect();
    inputs.push(DelayValue::from_delay(arch.schedule().cycle_units + 1e-9));
    let (_, trace) = circuit
        .evaluate_traced(&inputs)
        .map_err(|e| CliError::InvalidConfig(format!("vcd evaluation: {e}")))?;
    std::fs::write(path, trace.to_vcd(arch.cfg().unit.unit_ns())).map_err(CliError::Telemetry)
}

/// `tconv serve` — run the streaming convolution service until SIGTERM
/// (or SIGINT) drains it. Announces each bound endpoint on stdout as
/// `listening on ADDR` before blocking, so wrappers can discover an
/// ephemeral port; returns the drain summary as the command output.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    use std::io::Write as _;
    use std::time::Duration;
    use ta_serve::{ServeConfig, Server};

    let defaults = ServeConfig::default();
    let tcp = match args.get("--tcp") {
        Some("none") => None,
        Some(addr) => Some(addr.to_string()),
        None => defaults.tcp.clone(),
    };
    let cfg = ServeConfig {
        tcp,
        uds: args.get("--uds").map(std::path::PathBuf::from),
        credits: args.num("--credits", defaults.credits)?,
        max_connections: args.num("--max-connections", defaults.max_connections)?,
        max_inflight: args.num("--max-inflight", defaults.max_inflight)?,
        tenant_pending: args.num("--tenant-pending", defaults.tenant_pending)?,
        default_deadline: Duration::from_millis(args.num("--deadline-ms", 10_000u64)?),
        idle_timeout: Duration::from_millis(args.num("--idle-ms", 30_000u64)?),
        strikes: args.num("--strikes", defaults.strikes)?,
        chaos_enabled: args.has("--chaos"),
        plan_cache: args.num("--plan-cache", defaults.plan_cache)?,
        journal: args.get("--journal").map(std::path::PathBuf::from),
        journal_fsync: fsync_of(args)?,
        slo: Duration::from_millis(args.num("--slo-ms", defaults.slo.as_millis() as u64)?),
        bundle_dir: args.get("--bundle-dir").map(std::path::PathBuf::from),
        recovery: {
            let name = args.get("--recovery").unwrap_or("recover");
            ta_serve::RecoveryPolicy::parse(name).ok_or_else(|| {
                CliError::InvalidConfig(format!("unknown --recovery {name:?}; try: recover shed"))
            })?
        },
        ..defaults
    };

    ta_serve::signal::install_term_handler();
    let server = Server::bind(cfg).map_err(CliError::Serve)?;

    // Announce endpoints before blocking in the accept loop: wrappers
    // (and the process-level tests) parse these lines to find the port.
    let mut stdout = std::io::stdout();
    if let Some(addr) = server.local_addr() {
        let _ = writeln!(stdout, "listening on {addr}");
    }
    if let Some(path) = args.get("--uds") {
        let _ = writeln!(stdout, "listening on uds:{path}");
    }
    let _ = stdout.flush();

    let summary = server.run().map_err(CliError::Serve)?;
    Ok(format!(
        "serve: drained cleanly — {} connection(s) open at drain, \
         {} frame(s) completed, {} shed, {} failed, {} forced close(s)\n",
        summary.connections_at_drain,
        summary.completed,
        summary.shed,
        summary.failed,
        summary.forced_closes,
    ))
}

/// `tconv top` — a live dashboard over a running server's Metrics wire
/// request: request/shed rates, latency percentiles, per-tenant SLO
/// burn, journal size, and anomaly counts. `--once` prints a single
/// snapshot (no screen clearing) and exits, for scripts and smoke tests.
fn cmd_top(args: &Args) -> Result<String, CliError> {
    use std::io::Write as _;
    use std::time::{Duration, Instant};
    use ta_serve::{Request, Response};

    let addr = args
        .get("--addr")
        .ok_or_else(|| CliError::InvalidConfig("top needs --addr HOST:PORT".into()))?;
    let interval = Duration::from_millis(args.num("--interval-ms", 2_000u64)?);
    let once = args.has("--once");

    let mut client = ta_serve::Client::connect_tcp(addr, "tconv-top")
        .map_err(|e| CliError::Top(e.to_string()))?;
    let mut prev: Option<(Instant, ta_telemetry::promtext::Scrape)> = None;
    loop {
        let text = match client
            .call(&Request::Metrics)
            .map_err(|e| CliError::Top(e.to_string()))?
        {
            Response::Metrics { text } => text,
            other => return Err(CliError::Top(format!("expected Metrics, got {other:?}"))),
        };
        let now = Instant::now();
        let scrape = ta_telemetry::promtext::parse(&text)
            .map_err(|e| CliError::Top(format!("metrics snapshot unparsable: {e}")))?;
        let frame = render_top(
            addr,
            &scrape,
            prev.as_ref().map(|(t, s)| (now.duration_since(*t), s)),
        );
        if once {
            return Ok(frame);
        }
        // Clear and repaint; stdout errors (e.g. a closed pipe) end the
        // dashboard cleanly rather than looping blind.
        let mut stdout = std::io::stdout();
        if write!(stdout, "\x1b[2J\x1b[H{frame}")
            .and_then(|()| stdout.flush())
            .is_err()
        {
            return Ok(String::new());
        }
        prev = Some((now, scrape));
        std::thread::sleep(interval);
    }
}

/// One rendered `tconv top` frame. `prev` (the previous scrape and the
/// time since it) turns cumulative counters into per-second rates.
fn render_top(
    addr: &str,
    scrape: &ta_telemetry::promtext::Scrape,
    prev: Option<(std::time::Duration, &ta_telemetry::promtext::Scrape)>,
) -> String {
    let total = |name: &str| scrape.sum(name);
    let rate = |name: &str| -> Option<f64> {
        let (dt, old) = prev.as_ref()?;
        let secs = dt.as_secs_f64();
        (secs > 0.0).then(|| (scrape.sum(name) - old.sum(name)).max(0.0) / secs)
    };
    let fmt_rate = |name: &str| match rate(name) {
        Some(r) => format!("{r:8.1}/s"),
        None => "       —  ".to_string(),
    };

    let submits = total("ta_serve_submits_total");
    let shed = total("ta_serve_shed_total");
    let shed_frac = if submits > 0.0 { shed / submits } else { 0.0 };

    let mut out = format!("tconv top — {addr}\n\n");
    out.push_str("  requests            total       rate\n");
    for (label, family) in [
        ("submits", "ta_serve_submits_total"),
        ("completed", "ta_serve_completed_total"),
        ("degraded", "ta_serve_degraded_total"),
        ("failed", "ta_serve_failed_total"),
        ("shed", "ta_serve_shed_total"),
    ] {
        out.push_str(&format!(
            "    {label:<12} {:>10} {}\n",
            total(family),
            fmt_rate(family)
        ));
    }
    out.push_str(&format!("    shed fraction {shed_frac:>9.3}\n"));

    // Latency percentiles from the cumulative histogram buckets.
    let buckets = scrape.family("ta_serve_latency_seconds_bucket");
    let mut cum: Vec<(f64, f64)> = buckets
        .iter()
        .filter_map(|s| {
            let le = s.label("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, s.value))
        })
        .collect();
    cum.sort_by(|a, b| a.0.total_cmp(&b.0));
    let count = cum.last().map_or(0.0, |&(_, c)| c);
    if count > 0.0 {
        out.push_str("\n  latency    p50        p90        p99\n         ");
        for q in [0.50, 0.90, 0.99] {
            let target = q * count;
            let bound = cum
                .iter()
                .find(|&&(_, c)| c >= target)
                .map_or(f64::INFINITY, |&(b, _)| b);
            if bound.is_finite() {
                out.push_str(&format!(" ≤{:>7.1}ms", bound * 1e3));
            } else {
                out.push_str("     >last ");
            }
        }
        out.push('\n');
    }

    // Per-tenant SLO burn (breaches / requests, cumulative).
    let burns = scrape.family("ta_serve_slo_burn");
    if !burns.is_empty() {
        out.push_str("\n  slo burn (breaches/requests)\n");
        for s in burns {
            let tenant = s.label("tenant").unwrap_or("?");
            let requests = scrape
                .get("ta_serve_slo_requests_total", &[("tenant", tenant)])
                .unwrap_or(0.0);
            out.push_str(&format!(
                "    {tenant:<16} {:>6.3}  ({requests} requests)\n",
                s.value
            ));
        }
    }

    // Journal size (present only when the server journals).
    if let (Some(records), Some(bytes)) = (
        scrape.value("ta_serve_journal_records"),
        scrape.value("ta_serve_journal_bytes"),
    ) {
        out.push_str(&format!(
            "\n  journal    {records} record(s), {bytes} byte(s)\n"
        ));
    }

    // Anomalies by kind, plus bundles dumped.
    let anomalies = scrape.family("ta_anomalies_total");
    if !anomalies.is_empty() {
        out.push_str("\n  anomalies\n");
        for s in anomalies {
            out.push_str(&format!(
                "    {:<18} {:>8}\n",
                s.label("kind").unwrap_or("?"),
                s.value
            ));
        }
    }
    if let Some(bundles) = scrape.value("ta_serve_bundles_written_total") {
        out.push_str(&format!("    bundles written    {bundles:>8}\n"));
    }
    out
}

/// `tconv inspect-bundle FILE` — schema-check a flight-recorder bundle
/// and print its story for triage. A file that fails the check exits
/// non-zero, so scripts can assert bundle validity.
fn cmd_inspect_bundle(args: &Args) -> Result<String, CliError> {
    let path = args
        .get("--file")
        .ok_or_else(|| CliError::InvalidConfig("inspect-bundle needs a bundle FILE".into()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Bundle(format!("{path}: {e}")))?;
    let summary =
        ta_serve::BundleSummary::parse(&text).map_err(|e| CliError::Bundle(e.to_string()))?;

    let mut out = format!("bundle: {path}\n  anomaly: {}\n", summary.kind);
    if summary.trace.is_empty() {
        out.push_str("  trace:   (untraced anomaly)\n");
    } else {
        out.push_str(&format!("  trace:   {}\n", summary.trace));
    }
    let count = |kind: &str| summary.lines.iter().filter(|l| l.kind == kind).count();
    out.push_str(&format!(
        "  lines:   {} ({} request context(s), {} span(s), {} event(s))\n",
        summary.lines.len(),
        count("request"),
        count("span"),
        count("event"),
    ));

    // The offending request's timeline, in ring order.
    if !summary.trace.is_empty() {
        let ours = summary.lines_for_trace(&summary.trace);
        out.push_str(&format!("  timeline for trace {}:\n", summary.trace));
        for i in ours {
            let line = &summary.lines[i];
            out.push_str(&format!(
                "    {:<8} {}\n",
                line.kind,
                line.name.as_deref().unwrap_or("(request context)")
            ));
        }
    }

    // Other traces captured in the ring, deduplicated.
    let mut others: Vec<&str> = summary
        .lines
        .iter()
        .filter_map(|l| l.trace.as_deref())
        .filter(|t| *t != summary.trace)
        .collect();
    others.sort_unstable();
    others.dedup();
    if !others.is_empty() {
        out.push_str(&format!(
            "  {} other trace(s) in the ring: {}\n",
            others.len(),
            others.join(", ")
        ));
    }
    Ok(out)
}

fn cmd_kernels() -> String {
    let mut out = String::from("built-in kernel sets:\n");
    for name in [
        "sobel",
        "pyrdown",
        "gauss",
        "laplacian",
        "sharpen",
        "emboss",
        "box3",
    ] {
        if let Ok((ks, stride)) = kernel_set(name) {
            out.push_str(&format!(
                "  {:<10} {}×{}, stride {}, {} filter(s){}\n",
                name,
                ks[0].width(),
                ks[0].height(),
                stride,
                ks.len(),
                if ks.iter().any(|k| k.has_negative_weights()) {
                    ", split rails + nLDE"
                } else {
                    ""
                }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&argv(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&argv(&[])).unwrap().contains("USAGE"));
        assert!(matches!(
            dispatch(&argv(&["frobnicate"])),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn kernels_listing() {
        let out = dispatch(&argv(&["kernels"])).unwrap();
        for k in ["sobel", "pyrdown", "gauss", "laplacian"] {
            assert!(out.contains(k));
        }
    }

    #[test]
    fn describe_sobel() {
        let out = dispatch(&argv(&["describe", "--kernel", "sobel", "--size", "32"])).unwrap();
        assert!(out.contains("MAC blocks"));
        assert!(out.contains("nLSE tree"));
    }

    #[test]
    fn threads_flag_is_global_and_deterministic() {
        // The rendered report embeds the run's numeric results, so equal
        // strings across worker counts means equal outputs. Leaves the
        // process-global default behind on purpose: every thread count
        // must produce identical results anyway.
        let base = ["run", "--demo", "--size", "24", "--mode", "noisy"];
        let with = |n: &str| {
            let mut v = base.to_vec();
            v.extend(["--threads", n]);
            dispatch(&argv(&v)).unwrap()
        };
        let one = with("1");
        assert_eq!(one, with("2"), "1 vs 2 workers");
        assert_eq!(one, with("8"), "1 vs 8 workers");
        ta_pool::set_threads(0);
    }

    #[test]
    fn run_demo_all_modes() {
        for mode in ["importance", "exact", "approx", "noisy"] {
            let out = dispatch(&argv(&[
                "run", "--demo", "--size", "24", "--kernel", "box3", "--mode", mode,
            ]))
            .unwrap();
            assert!(out.contains("nrmse"), "mode {mode}: {out}");
        }
    }

    #[test]
    fn run_pgm_roundtrip() {
        let dir = std::env::temp_dir();
        let input = dir.join("tconv_test_in.pgm");
        let output = dir.join("tconv_test_out.pgm");
        ta_image::pgm::save_pgm(&synth::natural_image(20, 20, 1), &input).unwrap();
        let out = dispatch(&argv(&[
            "run",
            "--input",
            input.to_str().unwrap(),
            "--output",
            output.to_str().unwrap(),
            "--kernel",
            "sharpen",
            "--mode",
            "approx",
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let written = ta_image::pgm::load_pgm(&output).unwrap();
        assert_eq!((written.width(), written.height()), (18, 18));
        std::fs::remove_file(input).ok();
        std::fs::remove_file(output).ok();
    }

    #[test]
    fn bad_flags_raise_typed_errors() {
        assert!(matches!(
            Args::parse(&["run".into(), "--unit".into()]),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            Args::parse(&["run".into(), "stray".into()]),
            Err(CliError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            dispatch(&argv(&["run", "--demo", "--kernel", "nope"])),
            Err(CliError::UnknownKernel(_))
        ));
        assert!(matches!(
            dispatch(&argv(&["run", "--demo", "--mode", "nope"])),
            Err(CliError::UnknownMode(_))
        ));
        assert!(matches!(
            dispatch(&argv(&["run", "--demo", "--unit", "abc"])),
            Err(CliError::InvalidNumber { .. })
        ));
        assert!(matches!(
            dispatch(&argv(&["run"])),
            Err(CliError::MissingInput)
        ));
        assert!(matches!(
            dispatch(&argv(&["run", "--input", "/no/such/file.pgm"])),
            Err(CliError::Image(_))
        ));
        // Every error renders a non-empty, single-line-friendly message.
        let e = dispatch(&argv(&["run", "--demo", "--unit", "abc"])).unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn profile_demo_prints_breakdown_and_verifies_census() {
        let out = dispatch(&argv(&[
            "profile", "--demo", "--size", "20", "--kernel", "sobel",
        ]))
        .unwrap();
        assert!(out.contains("stage"), "{out}");
        for stage in [
            "vtc encode",
            "weight matrix",
            "nlse tree",
            "nlde renorm",
            "total",
        ] {
            assert!(out.contains(stage), "missing {stage}:\n{out}");
        }
        assert!(
            out.contains("op census: dynamic counts match static expectation"),
            "{out}"
        );
        // 20×20 input → 400 VTC conversions, whatever the kernel.
        assert!(out.contains("400 conversions"), "{out}");
        // The optimizer is on by default and Sobel's zero-weight column
        // gives it something to fold, so the gate report shows a shrink.
        assert!(out.contains("gate opt:"), "{out}");
        assert!(out.contains("-> "), "{out}");
        assert!(out.contains("gate events:"), "{out}");
        assert!(!out.contains("gate opt: off"), "{out}");
    }

    #[test]
    fn profile_gate_opt_off_uses_the_sweep_engine() {
        let out = dispatch(&argv(&[
            "profile",
            "--demo",
            "--size",
            "16",
            "--kernel",
            "box3",
            "--gate-opt",
            "off",
        ]))
        .unwrap();
        assert!(
            out.contains("gate opt: off (full-sweep golden engine)"),
            "{out}"
        );
        assert!(out.contains("gate events:"), "{out}");
    }

    #[test]
    fn profile_rejects_unknown_gate_opt_mode() {
        let e = dispatch(&argv(&[
            "profile",
            "--demo",
            "--size",
            "16",
            "--gate-opt",
            "sideways",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("--gate-opt"), "{e}");
    }

    #[test]
    fn profile_rejects_importance_mode() {
        assert!(matches!(
            dispatch(&argv(&[
                "profile",
                "--demo",
                "--size",
                "16",
                "--mode",
                "importance"
            ])),
            Err(CliError::InvalidConfig(_))
        ));
    }

    #[test]
    fn profile_writes_a_parseable_vcd() {
        let path = std::env::temp_dir().join("tconv_test_profile.vcd");
        let out = dispatch(&argv(&[
            "profile",
            "--demo",
            "--size",
            "16",
            "--kernel",
            "box3",
            "--vcd",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let vcd = std::fs::read_to_string(&path).unwrap();
        assert!(vcd.contains("$timescale 1ps $end"), "{vcd}");
        assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
        let stamps: Vec<u64> = vcd
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().unwrap())
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metrics_and_trace_flags_write_artifacts() {
        let dir = std::env::temp_dir();
        let metrics = dir.join("tconv_test_metrics.prom");
        let trace = dir.join("tconv_test_trace.jsonl");
        dispatch(&argv(&[
            "profile",
            "--demo",
            "--size",
            "16",
            "--kernel",
            "box3",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            prom.contains("# TYPE ta_core_frames_total counter"),
            "{prom}"
        );
        assert!(prom.contains("ta_core_nlse_ops_total"), "{prom}");
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(jsonl.lines().any(|l| l.contains("\"exec.run\"")), "{jsonl}");
        // Every line is a JSON object.
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(metrics).ok();
        std::fs::remove_file(trace).ok();
    }

    #[test]
    fn batch_metrics_include_journal_gauges() {
        // Regression: a journaled batch's `--metrics` snapshot must carry
        // the journal record/byte gauges (with HELP), matching what serve
        // mode exports for its own journal.
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("tconv_test_batch_{}.wal", std::process::id()));
        let metrics = dir.join(format!("tconv_test_batch_{}.prom", std::process::id()));
        std::fs::remove_file(&journal).ok();
        dispatch(&argv(&[
            "batch",
            "--demo",
            "--frames",
            "2",
            "--size",
            "16",
            "--kernel",
            "box3",
            "--journal",
            journal.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(&metrics).unwrap();
        for needle in [
            "# HELP ta_runtime_journal_records",
            "# HELP ta_runtime_journal_bytes",
            "ta_runtime_journal_records",
            "ta_runtime_journal_bytes",
        ] {
            assert!(prom.contains(needle), "metrics lack {needle:?}:\n{prom}");
        }
        // The gauges reflect a real on-disk journal, not zeros.
        let records_line = prom
            .lines()
            .find(|l| l.starts_with("ta_runtime_journal_records "))
            .unwrap();
        let records: f64 = records_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            records >= 2.0,
            "2 frames must leave >= 2 records: {records_line}"
        );
        std::fs::remove_file(journal).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn top_once_renders_dashboard_from_live_server() {
        use std::time::Duration;
        let server = ta_serve::Server::bind(ta_serve::ServeConfig {
            idle_timeout: Duration::from_secs(5),
            ..ta_serve::ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // One served frame so the dashboard has traffic to show.
        let mut client = ta_serve::Client::connect_tcp(&addr, "dash").unwrap();
        let sub = ta_serve::Submit {
            id: 1,
            spec: ta_serve::wire::ArchSpec {
                kernel: "box3".into(),
                mode: ta_serve::wire::MODE_EXACT,
                unit_ns: 1.0,
                nlse_terms: 7,
                nlde_terms: 20,
                fault_rate: 0.0,
            },
            seed: 3,
            deadline_ms: 0,
            want_outputs: false,
            chaos: ta_serve::wire::Chaos::None,
            width: 12,
            height: 12,
            pixels: ta_image::synth::natural_image(12, 12, 3).pixels().to_vec(),
            trace: ta_telemetry::TraceId::ZERO,
        };
        assert!(matches!(
            client.submit(sub).unwrap(),
            ta_serve::Response::Done { .. }
        ));

        let out = dispatch(&argv(&["top", "--addr", &addr, "--once"])).unwrap();
        assert!(out.contains("tconv top"), "{out}");
        assert!(out.contains("submits"), "{out}");
        assert!(out.contains("shed fraction"), "{out}");
        assert!(out.contains("slo burn"), "{out}");
        assert!(
            out.contains("dash"),
            "the serving tenant must appear: {out}"
        );

        let _ = client.goodbye();
        handle.begin_drain();
        runner.join().unwrap();
    }

    #[test]
    fn top_without_server_fails_with_top_error() {
        // A port nobody listens on: connect must fail as CliError::Top.
        let err = dispatch(&argv(&["top", "--addr", "127.0.0.1:1", "--once"])).unwrap_err();
        assert!(matches!(err, CliError::Top(_)), "{err:?}");
        assert_eq!(err.exit_code(), 20);
    }

    #[test]
    fn inspect_bundle_accepts_valid_and_rejects_invalid() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("tconv_test_bundle_{}.jsonl", std::process::id()));
        std::fs::write(
            &good,
            concat!(
                "{\"type\":\"bundle\",\"version\":1,\"kind\":\"watchdog_timeout\",\"trace\":\"ab12\"}\n",
                "{\"type\":\"request\",\"trace\":\"ab12\",\"tenant\":\"acme\",\"id\":7}\n",
                "{\"type\":\"event\",\"seq\":1,\"name\":\"serve.admitted\",\"trace\":\"ab12\"}\n",
                "{\"type\":\"event\",\"seq\":2,\"name\":\"anomaly\",\"trace\":\"ab12\"}\n",
                "{\"type\":\"metrics\",\"snapshot\":{}}\n",
            ),
        )
        .unwrap();
        let out = dispatch(&argv(&["inspect-bundle", good.to_str().unwrap()])).unwrap();
        assert!(out.contains("watchdog_timeout"), "{out}");
        assert!(out.contains("ab12"), "{out}");
        assert!(out.contains("serve.admitted"), "{out}");

        let bad = dir.join(format!("tconv_test_badbundle_{}.jsonl", std::process::id()));
        std::fs::write(&bad, "{\"type\":\"event\"}\nnot json\n").unwrap();
        let err = dispatch(&argv(&["inspect-bundle", bad.to_str().unwrap()])).unwrap_err();
        assert!(matches!(err, CliError::Bundle(_)), "{err:?}");
        assert_eq!(err.exit_code(), 21);

        // Missing file is also a Bundle error, not a panic.
        let err = dispatch(&argv(&["inspect-bundle", "/nonexistent/b.jsonl"])).unwrap_err();
        assert!(matches!(err, CliError::Bundle(_)), "{err:?}");
        std::fs::remove_file(good).ok();
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn explore_quick() {
        let out = dispatch(&argv(&["explore", "--kernel", "box3", "--size", "24"])).unwrap();
        assert!(out.contains("pareto"));
        assert!(out.lines().count() > 10);
    }

    #[test]
    fn faults_campaign_runs_and_reproduces() {
        let cmd = [
            "faults",
            "--kernel",
            "box3",
            "--size",
            "10",
            "--rates",
            "0,0.2",
            "--trials",
            "2",
            "--pixel-sites",
            "4",
            "--seed",
            "5",
        ];
        let a = dispatch(&argv(&cmd)).unwrap();
        let b = dispatch(&argv(&cmd)).unwrap();
        assert_eq!(a, b, "seeded campaigns must reproduce bit-identically");
        assert!(a.contains("rate sweep"));
        assert!(a.contains("site sensitivity"));
    }

    #[test]
    fn serve_without_listeners_is_a_typed_error() {
        let e = dispatch(&argv(&["serve", "--tcp", "none"])).unwrap_err();
        assert!(matches!(e, CliError::Serve(_)), "{e}");
        assert_eq!(e.exit_code(), 18);
    }

    #[test]
    fn serve_drains_on_handle_and_reports_summary() {
        // In-process drain path: run the service on an ephemeral port and
        // stop it via the SIGTERM latch (the real signal handler sets the
        // same flag).
        ta_serve::signal::set_term_requested(false);
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = done.clone();
        let runner = std::thread::spawn(move || {
            let out = dispatch(&argv(&["serve", "--tcp", "127.0.0.1:0"]));
            done2.store(true, std::sync::atomic::Ordering::SeqCst);
            out
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(!done.load(std::sync::atomic::Ordering::SeqCst));
        ta_serve::signal::set_term_requested(true);
        let out = runner.join().unwrap().unwrap();
        ta_serve::signal::set_term_requested(false);
        assert!(out.contains("drained cleanly"), "{out}");
    }

    #[test]
    fn faults_rejects_bad_configuration() {
        assert!(matches!(
            dispatch(&argv(&["faults", "--size", "10", "--rates", "0,abc"])),
            Err(CliError::InvalidNumber { .. })
        ));
        assert!(matches!(
            dispatch(&argv(&["faults", "--size", "10", "--rates", "1.5"])),
            Err(CliError::Exec(_)) | Err(CliError::Fault(_))
        ));
        assert!(matches!(
            dispatch(&argv(&["faults", "--size", "10", "--mode", "importance"])),
            Err(CliError::Exec(_))
        ));
    }
}
