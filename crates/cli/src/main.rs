//! `tconv` — the delay-space convolution engine at the command line.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = ta_cli::Args::parse(&raw).and_then(|args| ta_cli::dispatch(&args));
    match result {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("tconv: {e}");
            eprintln!("run `tconv help` for usage");
            // One documented exit code per error class — see the EXIT
            // CODES section of `tconv help`.
            std::process::exit(e.exit_code());
        }
    }
}
