//! Kill -9 crash recovery against the real `tconv` binary.
//!
//! Each test runs a never-killed control, then SIGKILLs a journaled run
//! mid-flight, restarts it, and asserts the recovered artifacts are
//! byte-identical to the control — durability is replay, not
//! approximation. Recovered-vs-control artifacts are left under
//! `target/crash-artifacts/` for CI to upload on failure.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ta_serve::wire::{ArchSpec, Chaos, Response, Submit, MODE_EXACT};
use ta_serve::Client;
use ta_telemetry::TraceId;

const TCONV: &str = env!("CARGO_BIN_EXE_tconv");

/// The workspace `target/` directory, derived from the binary path.
fn target_dir() -> PathBuf {
    Path::new(TCONV)
        .parent()
        .and_then(Path::parent)
        .expect("binary lives under target/<profile>/")
        .to_path_buf()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = target_dir()
        .join("crash-artifacts")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_for_file_size(path: &Path, min: u64, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if std::fs::metadata(path).map(|m| m.len()).unwrap_or(0) >= min {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Byte-compares every file in `control` against `recovered`.
fn assert_dirs_identical(control: &Path, recovered: &Path) {
    let mut names: Vec<String> = std::fs::read_dir(control)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "control produced no artifacts");
    for name in names {
        let want = std::fs::read(control.join(&name)).unwrap();
        let got = std::fs::read(recovered.join(&name))
            .unwrap_or_else(|e| panic!("recovered artifact {name} missing: {e}"));
        assert_eq!(got, want, "artifact {name} differs from control");
    }
}

// ---------------------------------------------------------------------
// Batch: SIGKILL mid-campaign, --resume, byte-identical PGMs
// ---------------------------------------------------------------------

fn batch_args(dir: &Path, out: &str) -> Vec<String> {
    [
        "batch",
        "--demo",
        "--frames",
        "8",
        "--size",
        "48",
        "--seed",
        "5",
        "--workers",
        "1",
        "--output-dir",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([dir.join(out).to_string_lossy().into_owned()])
    .collect()
}

#[test]
fn batch_killed_mid_campaign_resumes_bit_identical() {
    let dir = scratch("batch");
    let journal = dir.join("batch.wal");

    // Control: the same campaign, never interrupted, no journal.
    let control = Command::new(TCONV)
        .args(batch_args(&dir, "control"))
        .output()
        .unwrap();
    assert!(control.status.success(), "control run failed");

    // Crashed run: journal on, SIGKILL once at least one 48×48 frame
    // checkpoint (two planes ≈ 37 KiB) is durable.
    let mut child = Command::new(TCONV)
        .args(batch_args(&dir, "crashed"))
        .args(["--journal", &journal.to_string_lossy(), "--fsync", "always"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let saw_checkpoint = wait_for_file_size(&journal, 40_000, Duration::from_secs(60));
    child.kill().unwrap(); // SIGKILL — no drop handlers, no flush
    let _ = child.wait();
    assert!(saw_checkpoint, "no checkpoint became durable before kill");

    // Resume: replays the checkpoints, executes the rest.
    let resumed = Command::new(TCONV)
        .args(batch_args(&dir, "recovered"))
        .args([
            "--journal",
            &journal.to_string_lossy(),
            "--resume",
            "--fsync",
            "always",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(resumed.status.success(), "resume failed: {stdout}");
    assert!(
        stdout.contains("journal: replayed"),
        "resume did not report replay: {stdout}"
    );

    assert_dirs_identical(&dir.join("control"), &dir.join("recovered"));
}

// ---------------------------------------------------------------------
// Serve: SIGKILL with a request in flight, restart, retry is answered
// with the control checksum
// ---------------------------------------------------------------------

const W: u32 = 24;
const H: u32 = 24;

fn serve_submit(chaos: Chaos) -> Submit {
    Submit {
        id: 1,
        spec: ArchSpec {
            kernel: "box3".into(),
            // Exact mode: the output is seed-independent, so the
            // recovered answer must match the control bit-for-bit even
            // though recovery re-executes with different attempt timing.
            mode: MODE_EXACT,
            unit_ns: 1.0,
            nlse_terms: 7,
            nlde_terms: 20,
            fault_rate: 0.0,
        },
        seed: 7,
        deadline_ms: 20_000,
        want_outputs: false,
        chaos,
        width: W,
        height: H,
        pixels: ta_image::synth::natural_image(W as usize, H as usize, 7)
            .pixels()
            .to_vec(),
        trace: TraceId::ZERO,
    }
}

/// Spawns `tconv serve` and reads its announced TCP address.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(TCONV)
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited early").unwrap();
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn serve_killed_with_request_in_flight_recovers_the_answer() {
    let dir = scratch("serve");
    let journal = dir.join("serve.wal");
    let journal_arg = journal.to_string_lossy().into_owned();

    // Control: a never-killed, journal-less server computes the answer.
    let (mut control, addr) = spawn_serve(&[]);
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    let want = match client.submit(serve_submit(Chaos::None)).unwrap() {
        Response::Done { checksum, .. } => checksum,
        other => panic!("control expected Done, got {other:?}"),
    };
    drop(client);
    control.kill().unwrap();
    let _ = control.wait();

    // Crashed server: chaos stalls the engine so the request is still
    // executing — accepted in the journal, no completion — when SIGKILL
    // lands.
    let (mut crashed, addr) =
        spawn_serve(&["--journal", &journal_arg, "--fsync", "always", "--chaos"]);
    let stall = serve_submit(Chaos::StallAttempts { n: 1, ms: 8_000 });
    let pixels_bytes = u64::from(W * H) * 8;
    let submitter = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect_tcp(&addr, "acme").unwrap();
            // The server dies mid-request; any outcome is acceptable here.
            let _ = client.submit(stall);
        }
    });
    assert!(
        wait_for_file_size(&journal, pixels_bytes, Duration::from_secs(30)),
        "accepted record never became durable"
    );
    crashed.kill().unwrap(); // SIGKILL mid-stall: the request is in flight
    let _ = crashed.wait();
    let _ = submitter.join();

    // Restart (chaos still enabled so the stalling request is
    // recoverable): recovery re-executes it before serving, and the
    // retrying client is answered from the journal — byte-identical to
    // the control, with nothing recomputed for the retry itself.
    let (mut restarted, addr) = spawn_serve(&["--journal", &journal_arg, "--chaos"]);
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    let mut retry = serve_submit(Chaos::None);
    retry.want_outputs = true;
    match client.submit(retry).unwrap() {
        Response::Done {
            checksum,
            latency_us,
            outputs,
            ..
        } => {
            assert_eq!(checksum, want, "recovered answer differs from control");
            assert_eq!(latency_us, 0, "retry must be served from the journal");
            assert!(outputs.is_empty(), "the index holds identity, not planes");
        }
        other => panic!("expected recovered Done, got {other:?}"),
    }
    drop(client);
    restarted.kill().unwrap();
    let _ = restarted.wait();

    // Leave the checksums behind as CI artifacts.
    std::fs::write(
        dir.join("checksums.txt"),
        format!("control {want:#018x}\nrecovered {want:#018x}\n"),
    )
    .unwrap();
}
