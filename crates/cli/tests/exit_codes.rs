//! Process-level tests: every `CliError` variant maps to its documented
//! exit code, and the supervised `batch` subcommand degrades gracefully
//! instead of aborting.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::{Command, Output};

fn tconv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tconv"))
        .args(args)
        .output()
        .expect("spawn tconv")
}

fn exit_code(args: &[&str]) -> i32 {
    tconv(args).status.code().expect("no exit code (signal?)")
}

#[test]
fn success_paths_exit_zero() {
    assert_eq!(exit_code(&["help"]), 0);
    assert_eq!(exit_code(&["kernels"]), 0);
    assert_eq!(
        exit_code(&["run", "--demo", "--size", "16", "--kernel", "box3", "--mode", "approx"]),
        0
    );
}

#[test]
fn each_error_class_has_its_documented_code() {
    // 2 unexpected argument
    assert_eq!(exit_code(&["run", "stray"]), 2);
    // 3 flag missing its value
    assert_eq!(exit_code(&["run", "--unit"]), 3);
    // 4 malformed number
    assert_eq!(exit_code(&["run", "--demo", "--unit", "abc"]), 4);
    // 5 unknown command
    assert_eq!(exit_code(&["frobnicate"]), 5);
    // 6 unknown kernel
    assert_eq!(exit_code(&["run", "--demo", "--kernel", "nope"]), 6);
    // 7 unknown mode
    assert_eq!(exit_code(&["run", "--demo", "--mode", "nope"]), 7);
    // 8 invalid configuration
    assert_eq!(exit_code(&["run", "--demo", "--unit", "0"]), 8);
    // 9 missing input
    assert_eq!(exit_code(&["run"]), 9);
    // 10 image i/o
    assert_eq!(exit_code(&["run", "--input", "/no/such/file.pgm"]), 10);
    // 12 execution rejected (fault campaign in importance mode)
    assert_eq!(
        exit_code(&["faults", "--size", "10", "--mode", "importance"]),
        12
    );
    // 13 fault model invalid (rate out of range); the `faults` campaign
    // wraps this inside ExecError, so `batch --fault-rate` is the direct
    // surface.
    assert_eq!(
        exit_code(&[
            "batch",
            "--demo",
            "--frames",
            "1",
            "--size",
            "16",
            "--fault-rate",
            "1.5"
        ]),
        13
    );
}

#[test]
fn stderr_carries_one_friendly_line() {
    let out = tconv(&["run", "--demo", "--kernel", "nope"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("tconv: unknown kernel"), "stderr: {err}");
    assert!(err.contains("tconv help"), "stderr: {err}");
}

#[test]
fn batch_demo_degrades_gracefully_and_exits_zero() {
    // A brutal transient fault environment with a tight tolerance: frames
    // that fail validation after one retry are served by the digital
    // reference, so the process still succeeds with zero aborts.
    let out = tconv(&[
        "batch",
        "--demo",
        "--frames",
        "4",
        "--size",
        "16",
        "--kernel",
        "box3",
        "--mode",
        "approx",
        "--fault-rate",
        "0.05",
        "--tolerance",
        "0.000001",
        "--retries",
        "1",
        "--fallback",
        "reference",
        "--seed",
        "7",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("degraded(digital-adc-mac)"), "{text}");
    assert!(text.contains("failed 0"), "{text}");
}

#[test]
fn batch_without_fallback_exits_fifteen_with_report() {
    let out = tconv(&[
        "batch",
        "--demo",
        "--frames",
        "2",
        "--size",
        "16",
        "--kernel",
        "box3",
        "--mode",
        "approx",
        "--fault-rate",
        "0.05",
        "--tolerance",
        "0.000001",
        "--retries",
        "0",
        "--fallback",
        "none",
        "--seed",
        "7",
    ]);
    assert_eq!(out.status.code(), Some(15), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("FAILED"), "stderr: {err}");
    assert!(err.contains("produced no usable output"), "stderr: {err}");
}

#[test]
fn batch_reports_reproduce_under_fixed_seed() {
    let args = [
        "batch",
        "--demo",
        "--frames",
        "4",
        "--size",
        "16",
        "--kernel",
        "box3",
        "--mode",
        "noisy",
        "--fault-rate",
        "0.02",
        "--tolerance",
        "0.05",
        "--retries",
        "2",
        "--seed",
        "11",
        "--workers",
        "3",
    ];
    let a = tconv(&args);
    let b = tconv(&args);
    assert_eq!(a.status.code(), b.status.code());
    let strip_latency = |raw: &[u8]| {
        // Latency figures are wall-clock and legitimately vary run to
        // run; everything else must be bit-identical.
        String::from_utf8_lossy(raw)
            .lines()
            .map(|l| l.split("latency").next().unwrap_or(l).to_owned())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_latency(&a.stdout), strip_latency(&b.stdout));
}

#[test]
fn batch_roundtrips_a_directory_of_frames() {
    let dir = std::env::temp_dir().join(format!("tconv_batch_{}", std::process::id()));
    let in_dir = dir.join("in");
    let out_dir = dir.join("out");
    std::fs::create_dir_all(&in_dir).unwrap();
    for i in 0..3 {
        let img = ta_image::synth::natural_image(16, 16, i);
        ta_image::pgm::save_pgm(&img, in_dir.join(format!("frame-{i}.pgm"))).unwrap();
    }
    let out = tconv(&[
        "batch",
        "--input-dir",
        in_dir.to_str().unwrap(),
        "--output-dir",
        out_dir.to_str().unwrap(),
        "--kernel",
        "box3",
        "--mode",
        "approx",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok 3"), "{text}");
    assert!(text.contains("wrote 3 frame(s)"), "{text}");
    for i in 0..3 {
        let written = ta_image::pgm::load_pgm(out_dir.join(format!("frame-{i}.pgm"))).unwrap();
        assert_eq!((written.width(), written.height()), (14, 14));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_rejects_mixed_frame_sizes_with_invalid_config_code() {
    let dir = std::env::temp_dir().join(format!("tconv_mixed_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    ta_image::pgm::save_pgm(
        &ta_image::synth::natural_image(16, 16, 0),
        dir.join("a.pgm"),
    )
    .unwrap();
    ta_image::pgm::save_pgm(
        &ta_image::synth::natural_image(20, 20, 1),
        dir.join("b.pgm"),
    )
    .unwrap();
    let code = exit_code(&[
        "batch",
        "--input-dir",
        dir.to_str().unwrap(),
        "--kernel",
        "box3",
    ]);
    assert_eq!(code, 8);
    std::fs::remove_dir_all(&dir).ok();
}
