//! Process-level contract for `tconv serve`: the binary announces its
//! endpoint on stdout, serves frames over the wire, and a SIGTERM drains
//! it to exit code 0 with connected clients told goodbye.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ta_serve::wire::{ArchSpec, Chaos, Request, Response, Submit, MODE_EXACT};
use ta_serve::Client;
use ta_telemetry::TraceId;

fn demo_submit(id: u64) -> Submit {
    let (w, h) = (8u32, 8u32);
    let n = (w * h) as usize;
    Submit {
        id,
        spec: ArchSpec {
            kernel: "box3".to_string(),
            mode: MODE_EXACT,
            unit_ns: 1.0,
            nlse_terms: 7,
            nlde_terms: 20,
            fault_rate: 0.0,
        },
        seed: 7,
        deadline_ms: 5_000,
        want_outputs: false,
        chaos: Chaos::None,
        width: w,
        height: h,
        pixels: (0..n)
            .map(|i| 0.05 + 0.9 * (i as f64) / (n as f64))
            .collect(),
        trace: TraceId::ZERO,
    }
}

#[test]
fn sigterm_drains_the_server_process_to_exit_zero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tconv"))
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tconv serve");

    // The first stdout line announces the bound (ephemeral) endpoint.
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut announce = String::new();
    reader.read_line(&mut announce).expect("announce line");
    let addr = announce
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {announce:?}"))
        .to_string();

    // The service answers real work over the announced endpoint.
    let mut client = Client::connect_tcp(&addr, "proc-test").expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    match client.submit(demo_submit(1)).expect("submit") {
        Response::Done { id: 1, .. } => {}
        other => panic!("expected Done for frame 1, got {other:?}"),
    }
    match client.call(&Request::Ping { nonce: 99 }).expect("ping") {
        Response::Pong { nonce: 99 } => {}
        other => panic!("expected Pong(99), got {other:?}"),
    }

    // SIGTERM → graceful drain: the still-connected client is told
    // goodbye, and the process exits 0.
    let pid = child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success(), "kill -TERM {pid} failed");

    match client.recv().expect("drain goodbye") {
        Response::Bye { drained: true } => {}
        other => panic!("expected Bye{{drained: true}}, got {other:?}"),
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(status.code(), Some(0), "clean drain must exit 0");

    // The drain summary lands on stdout after the announce line.
    let mut rest = String::new();
    for line in reader.lines() {
        rest.push_str(&line.expect("stdout line"));
        rest.push('\n');
    }
    assert!(rest.contains("drained cleanly"), "{rest}");
}
