//! The temporal comparator: sorting two edges in time.
//!
//! §2.3 of the paper places a "temporal comparator circuit" (Smith,
//! ISCA '18) at the input of the nLSE approximation hardware so the operands
//! arrive ordered, which halves the number of max-terms required. On a
//! single-rising-edge encoding the comparator's two outputs are exactly
//! first-arrival and last-arrival of the inputs; this module exposes both a
//! functional version and a netlist constructor.

use ta_delay_space::DelayValue;

use crate::circuit::{CircuitBuilder, NodeId};

/// Functionally sorts two edges: returns `(earlier, later)`.
///
/// ```
/// use ta_delay_space::DelayValue;
/// use ta_race_logic::sort_edges;
/// let a = DelayValue::from_delay(4.0);
/// let b = DelayValue::from_delay(1.0);
/// assert_eq!(sort_edges(a, b), (b, a));
/// ```
pub fn sort_edges(x: DelayValue, y: DelayValue) -> (DelayValue, DelayValue) {
    (x.first_arrival(y), x.last_arrival(y))
}

/// Builds the comparator in netlist form: `(first, last)` output nodes.
///
/// In hardware this is one OR and one AND gate on the rising edges.
pub fn build_comparator(b: &mut CircuitBuilder, x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    let first = b.first_arrival(&[x, y]);
    let last = b.last_arrival(&[x, y]);
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_and_netlist_agree() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let (f, l) = build_comparator(&mut b, x, y);
        b.output("first", f);
        b.output("last", l);
        let c = b.build().unwrap();

        for &(tx, ty) in &[(1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (0.5, f64::INFINITY)] {
            let dx = DelayValue::from_delay(tx);
            let dy = DelayValue::from_delay(ty);
            let out = c.evaluate(&[dx, dy]).unwrap();
            let (first, last) = sort_edges(dx, dy);
            assert_eq!(out[0], first);
            assert_eq!(out[1], last);
        }
    }

    #[test]
    fn sorted_outputs_are_ordered() {
        let a = DelayValue::from_delay(-2.0);
        let b = DelayValue::from_delay(5.0);
        let (f, l) = sort_edges(b, a);
        assert!(f <= l);
        assert_eq!(f, a);
    }
}
