//! Gate-level primitives of the temporal netlist.

use crate::circuit::NodeId;

/// A race-logic gate: each node of a [`crate::Circuit`] is either an input
/// or one of these.
///
/// The four primitives are logically complete for temporal functions
/// (Smith, ISCA '18) and, on rising edges, map to ordinary CMOS: `fa` is an
/// OR gate, `la` an AND gate, `inhibit` a two-transistor cell, and delays
/// are inverter chains.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// First arrival of the fan-in: the earliest edge (temporal `min`).
    FirstArrival(Vec<NodeId>),
    /// Last arrival of the fan-in: the latest edge (temporal `max`).
    LastArrival(Vec<NodeId>),
    /// Passes `data`'s edge only if it arrives strictly before
    /// `inhibitor`'s; otherwise never fires.
    Inhibit {
        /// The gated data edge.
        data: NodeId,
        /// The inhibiting edge.
        inhibitor: NodeId,
    },
    /// A fixed delay element: shifts the input edge later by `delta` units.
    ///
    /// `delta` must be non-negative — hardware cannot advance an edge.
    /// (Negative *constants* in the approximation formulas are absorbed
    /// into the `K` time shift of §2.3 before reaching the netlist.)
    Delay {
        /// The delayed node.
        input: NodeId,
        /// Nominal delay in abstract units (≥ 0).
        delta: f64,
    },
}

impl Gate {
    /// The fan-in nodes of this gate, in a fixed order.
    pub fn fan_in(&self) -> Vec<NodeId> {
        match self {
            Gate::FirstArrival(ins) | Gate::LastArrival(ins) => ins.clone(),
            Gate::Inhibit { data, inhibitor } => vec![*data, *inhibitor],
            Gate::Delay { input, .. } => vec![*input],
        }
    }
}
