//! Classic race-logic computations (paper §2: "race logic has been shown
//! to efficiently implement shortest path graph algorithms, decision
//! trees, sorting networks…").
//!
//! These pre-date the delay-space encoding — they use the *linear* reading
//! of arrival times — and are included both as evidence that the substrate
//! is complete and as reusable building blocks (the temporal comparator
//! network is what makes the paper's operand-ordering trick cheap).

use ta_delay_space::DelayValue;

use crate::circuit::{Circuit, CircuitBuilder, CircuitError, NodeId};

/// Builds an odd-even transposition sorting network over `inputs`:
/// output `i` fires at the `i`-th smallest arrival time. Each
/// compare-exchange stage is one `fa` + one `la` gate — sorting with zero
/// arithmetic, the signature race-logic trick.
///
/// Returns the sorted output nodes (earliest first).
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn build_sorting_network(b: &mut CircuitBuilder, inputs: &[NodeId]) -> Vec<NodeId> {
    assert!(!inputs.is_empty(), "cannot sort zero edges");
    let n = inputs.len();
    let mut lanes = inputs.to_vec();
    for round in 0..n {
        let start = round % 2;
        let mut k = start;
        while k + 1 < n {
            let (lo, hi) = (lanes[k], lanes[k + 1]);
            lanes[k] = b.first_arrival(&[lo, hi]);
            lanes[k + 1] = b.last_arrival(&[lo, hi]);
            k += 2;
        }
    }
    lanes
}

/// A complete temporal sorter as a standalone [`Circuit`] with inputs
/// `x0..x{n-1}` and outputs `sorted0..` (earliest first).
///
/// # Errors
///
/// Returns a [`CircuitError`] if `n == 0` (via the builder's validation).
pub fn sorting_circuit(n: usize) -> Result<Circuit, CircuitError> {
    let mut b = CircuitBuilder::new();
    let inputs: Vec<NodeId> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    if n == 0 {
        b.first_arrival(&[]); // records EmptyFanIn
        return b.build();
    }
    let sorted = build_sorting_network(&mut b, &inputs);
    for (i, node) in sorted.iter().enumerate() {
        b.output(format!("sorted{i}"), *node);
    }
    b.build()
}

/// Builds the race-logic shortest-path engine for a directed grid DP (the
/// DNA-alignment-style dynamic programming of Madhavan et al., ISCA '14):
/// cell `(x, y)` fires when the cheapest monotone (right/down/diagonal)
/// path from the origin reaches it, each step delayed by its cell cost.
///
/// `costs` is row-major, `width × height`; the returned circuit has one
/// input (the start edge at the origin's reference time) and one output
/// (`goal`) whose arrival time is `start + shortest_path_cost`.
///
/// # Panics
///
/// Panics if `costs.len() != width*height`, a dimension is zero, or any
/// cost is negative/NaN (temporal delays cannot run backwards).
pub fn grid_shortest_path(width: usize, height: usize, costs: &[f64]) -> Circuit {
    assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
    assert_eq!(costs.len(), width * height, "one cost per grid cell");
    assert!(
        costs.iter().all(|c| c.is_finite() && *c >= 0.0),
        "cell costs must be finite and non-negative"
    );
    let mut b = CircuitBuilder::new();
    let start = b.input("start");

    let mut nodes: Vec<NodeId> = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let cost = costs[y * width + x];
            let entered = if x == 0 && y == 0 {
                start
            } else {
                // Wavefront arrives from the earliest of the three
                // monotone predecessors.
                let mut preds = Vec::with_capacity(3);
                if x > 0 {
                    preds.push(nodes[y * width + (x - 1)]);
                }
                if y > 0 {
                    preds.push(nodes[(y - 1) * width + x]);
                }
                if x > 0 && y > 0 {
                    preds.push(nodes[(y - 1) * width + (x - 1)]);
                }
                b.first_arrival(&preds)
            };
            let fired = b.delay(entered, cost);
            nodes.push(fired);
        }
    }
    b.output("goal", nodes[width * height - 1]);
    b.build()
        .expect("grid DP netlists are valid by construction")
}

/// A binary decision tree over temporally-encoded features, after the
/// boosted race trees of Tzimpragos et al. (ASPLOS '19, cited in §2).
///
/// Features arrive as edges whose delay linearly encodes the feature
/// value. A split `feature_i < θ` is decided *without arithmetic*: an
/// inhibit cell gated by a reference edge at delay `θ` fires iff the
/// comparison holds; the opposite branch uses the mirrored cell. A leaf's
/// activation is the `la` (AND) of its path conditions — it fires iff
/// every comparison on the path holds — and each class output is the `fa`
/// (OR) of its leaves. Exactly one leaf fires per evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// An internal split: `if feature[index] < threshold { lt } else { ge }`.
    Split {
        /// Feature index compared.
        index: usize,
        /// Threshold in delay units.
        threshold: f64,
        /// Subtree when `feature < threshold`.
        lt: Box<TreeNode>,
        /// Subtree when `feature >= threshold`.
        ge: Box<TreeNode>,
    },
    /// A leaf voting for `class`.
    Leaf {
        /// Predicted class id.
        class: usize,
    },
}

impl TreeNode {
    /// Software reference inference.
    pub fn classify(&self, features: &[f64]) -> usize {
        match self {
            TreeNode::Leaf { class } => *class,
            TreeNode::Split {
                index,
                threshold,
                lt,
                ge,
            } => {
                if features[*index] < *threshold {
                    lt.classify(features)
                } else {
                    ge.classify(features)
                }
            }
        }
    }

    fn max_class(&self) -> usize {
        match self {
            TreeNode::Leaf { class } => *class,
            TreeNode::Split { lt, ge, .. } => lt.max_class().max(ge.max_class()),
        }
    }

    fn feature_count(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Split { index, lt, ge, .. } => {
                (*index + 1).max(lt.feature_count()).max(ge.feature_count())
            }
        }
    }
}

/// Compiles a decision tree into a race-logic [`Circuit`].
///
/// Inputs: one edge per feature (`f0..`), plus one `go` reference edge at
/// the features' shared reference time. Outputs: one per class
/// (`class0..`); the predicted class is the output that fires.
///
/// # Panics
///
/// Panics if any threshold is negative (delay-encoded features are
/// non-negative).
pub fn decision_tree_circuit(tree: &TreeNode) -> Circuit {
    let n_features = tree.feature_count();
    let n_classes = tree.max_class() + 1;
    let mut b = CircuitBuilder::new();
    let features: Vec<NodeId> = (0..n_features).map(|i| b.input(format!("f{i}"))).collect();
    let go = b.input("go");

    // Collect, per class, the la-of-conditions node for each leaf.
    let mut class_leaves: Vec<Vec<NodeId>> = vec![Vec::new(); n_classes];
    fn walk(
        node: &TreeNode,
        conditions: &mut Vec<NodeId>,
        b: &mut CircuitBuilder,
        features: &[NodeId],
        go: NodeId,
        class_leaves: &mut [Vec<NodeId>],
    ) {
        match node {
            TreeNode::Leaf { class } => {
                // The leaf fires iff all path conditions fired.
                let activation = if conditions.is_empty() {
                    go
                } else {
                    b.last_arrival(conditions)
                };
                class_leaves[*class].push(activation);
            }
            TreeNode::Split {
                index,
                threshold,
                lt,
                ge,
            } => {
                assert!(*threshold >= 0.0, "thresholds must be non-negative delays");
                let reference = b.delay(go, *threshold);
                // feature < θ: the feature edge beats the reference.
                let lt_cond = b.inhibit(features[*index], reference);
                // feature ≥ θ: the reference beats the feature — with a
                // hair of margin so an exact tie routes to this branch,
                // matching the software `<` (inhibit is strict on both
                // sides, which would otherwise drop ties entirely).
                let feature_margin = b.delay(features[*index], 1e-9);
                let ge_cond = b.inhibit(reference, feature_margin);
                conditions.push(lt_cond);
                walk(lt, conditions, b, features, go, class_leaves);
                conditions.pop();
                conditions.push(ge_cond);
                walk(ge, conditions, b, features, go, class_leaves);
                conditions.pop();
            }
        }
    }
    let mut conditions = Vec::new();
    walk(
        tree,
        &mut conditions,
        &mut b,
        &features,
        go,
        &mut class_leaves,
    );

    for (class, leaves) in class_leaves.iter().enumerate() {
        if leaves.is_empty() {
            // A class id with no leaf: emit a never output for uniformity.
            let never = b.inhibit(go, go); // t_d < t_i is false at equality
            b.output(format!("class{class}"), never);
        } else {
            let vote = b.first_arrival(leaves);
            b.output(format!("class{class}"), vote);
        }
    }
    b.build()
        .expect("decision-tree netlists are valid by construction")
}

/// Runs temporal inference: features in delay units, returns the
/// predicted class (the unique class output that fires).
///
/// # Errors
///
/// Propagates [`CircuitError`] from evaluation.
///
/// # Panics
///
/// Panics if no class output fires (cannot happen for a well-formed tree
/// with features distinct from thresholds).
pub fn decision_tree_infer(circuit: &Circuit, features: &[f64]) -> Result<usize, CircuitError> {
    let mut inputs: Vec<DelayValue> = features
        .iter()
        .map(|&f| DelayValue::from_delay(f))
        .collect();
    inputs.push(DelayValue::from_delay(0.0)); // the go edge
    let outs = circuit.evaluate(&inputs)?;
    Ok(outs
        .iter()
        .position(|o| !o.is_never())
        .expect("exactly one leaf fires for in-range features"))
}

/// Software reference for [`grid_shortest_path`].
pub fn grid_shortest_path_reference(width: usize, height: usize, costs: &[f64]) -> f64 {
    assert_eq!(costs.len(), width * height, "one cost per grid cell");
    let mut dp = vec![f64::INFINITY; width * height];
    for y in 0..height {
        for x in 0..width {
            let c = costs[y * width + x];
            let best_in = if x == 0 && y == 0 {
                0.0
            } else {
                let mut m = f64::INFINITY;
                if x > 0 {
                    m = m.min(dp[y * width + x - 1]);
                }
                if y > 0 {
                    m = m.min(dp[(y - 1) * width + x]);
                }
                if x > 0 && y > 0 {
                    m = m.min(dp[(y - 1) * width + x - 1]);
                }
                m
            };
            dp[y * width + x] = best_in + c;
        }
    }
    dp[width * height - 1]
}

/// Sorts edge times through [`sorting_circuit`] and decodes back —
/// a convenience wrapper used by tests and examples.
///
/// # Errors
///
/// Propagates [`CircuitError`] from construction/evaluation.
pub fn sort_times(times: &[f64]) -> Result<Vec<f64>, CircuitError> {
    let circuit = sorting_circuit(times.len())?;
    let inputs: Vec<DelayValue> = times.iter().map(|&t| DelayValue::from_delay(t)).collect();
    Ok(circuit
        .evaluate(&inputs)?
        .into_iter()
        .map(|v| v.delay())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorting_network_sorts() {
        let times = [3.0, 1.0, 2.5, 0.5, 4.0, 0.7, 3.9];
        let got = sort_times(&times).unwrap();
        let mut want = times.to_vec();
        want.sort_by(f64::total_cmp);
        assert_eq!(got, want);
    }

    #[test]
    fn sorting_handles_duplicates_and_never() {
        let got = sort_times(&[2.0, 2.0, 1.0]).unwrap();
        assert_eq!(got, vec![1.0, 2.0, 2.0]);
        // A never-firing input sorts last.
        let circuit = sorting_circuit(3).unwrap();
        let out = circuit
            .evaluate(&[
                DelayValue::from_delay(1.0),
                DelayValue::ZERO,
                DelayValue::from_delay(0.5),
            ])
            .unwrap();
        assert_eq!(out[0].delay(), 0.5);
        assert_eq!(out[1].delay(), 1.0);
        assert!(out[2].is_never());
    }

    #[test]
    fn sorting_network_gate_count() {
        // Odd-even transposition on n lanes: n rounds of ⌊n/2⌋-ish
        // compare-exchanges, each one fa + one la.
        let c = sorting_circuit(6).unwrap();
        let s = c.stats();
        assert_eq!(s.fa_gates, s.la_gates);
        assert_eq!(s.fa_gates, 15); // 6 rounds alternating 3/2 exchanges
        assert_eq!(s.delay_elements, 0); // sorting needs no arithmetic at all
    }

    #[test]
    fn single_input_sorts_trivially() {
        assert_eq!(sort_times(&[7.0]).unwrap(), vec![7.0]);
    }

    #[test]
    fn grid_dp_matches_software_reference() {
        let costs = [
            1.0, 9.0, 1.0, //
            1.0, 9.0, 1.0, //
            1.0, 1.0, 1.0, //
        ];
        let circuit = grid_shortest_path(3, 3, &costs);
        let out = circuit.evaluate(&[DelayValue::from_delay(0.0)]).unwrap()[0];
        let want = grid_shortest_path_reference(3, 3, &costs);
        assert!((out.delay() - want).abs() < 1e-12);
        assert_eq!(want, 4.0); // down the left edge with one diagonal hop
    }

    #[test]
    fn grid_dp_random_agreement() {
        for seed in 0..10u64 {
            let (w, h) = (5, 4);
            let costs: Vec<f64> = (0..w * h)
                .map(|i| {
                    let x = (seed * 2654435761 + i as u64 * 40503).wrapping_mul(2654435761);
                    (x % 1000) as f64 / 100.0
                })
                .collect();
            let circuit = grid_shortest_path(w, h, &costs);
            let got = circuit.evaluate(&[DelayValue::from_delay(0.0)]).unwrap()[0].delay();
            let want = grid_shortest_path_reference(w, h, &costs);
            assert!((got - want).abs() < 1e-9, "seed {seed}: {got} vs {want}");
        }
    }

    #[test]
    fn grid_dp_respects_start_offset() {
        let circuit = grid_shortest_path(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        let out = circuit.evaluate(&[DelayValue::from_delay(10.0)]).unwrap()[0];
        // Diagonal path: 1 + 1 = 2 plus the start offset.
        assert!((out.delay() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_rejected() {
        grid_shortest_path(2, 1, &[1.0, -2.0]);
    }

    fn demo_tree() -> TreeNode {
        // if f0 < 2 { if f1 < 1 { class 0 } else { class 1 } }
        // else      { if f0 < 4 { class 2 } else { class 0 } }
        TreeNode::Split {
            index: 0,
            threshold: 2.0,
            lt: Box::new(TreeNode::Split {
                index: 1,
                threshold: 1.0,
                lt: Box::new(TreeNode::Leaf { class: 0 }),
                ge: Box::new(TreeNode::Leaf { class: 1 }),
            }),
            ge: Box::new(TreeNode::Split {
                index: 0,
                threshold: 4.0,
                lt: Box::new(TreeNode::Leaf { class: 2 }),
                ge: Box::new(TreeNode::Leaf { class: 0 }),
            }),
        }
    }

    #[test]
    fn decision_tree_matches_software_inference() {
        let tree = demo_tree();
        let circuit = decision_tree_circuit(&tree);
        for &features in &[
            [0.5, 0.5],
            [0.5, 3.0],
            [3.0, 0.0],
            [5.0, 9.9],
            [1.99, 0.99],
            [2.0, 0.0], // tie on the first split routes to ge
        ] {
            let want = tree.classify(&features);
            let got = decision_tree_infer(&circuit, &features).unwrap();
            assert_eq!(got, want, "features {features:?}");
        }
    }

    #[test]
    fn decision_tree_exhaustive_grid_agreement() {
        let tree = demo_tree();
        let circuit = decision_tree_circuit(&tree);
        for i in 0..30 {
            for j in 0..30 {
                let features = [i as f64 * 0.2, j as f64 * 0.11];
                assert_eq!(
                    decision_tree_infer(&circuit, &features).unwrap(),
                    tree.classify(&features),
                    "features {features:?}"
                );
            }
        }
    }

    #[test]
    fn decision_tree_single_leaf() {
        let tree = TreeNode::Leaf { class: 3 };
        let circuit = decision_tree_circuit(&tree);
        assert_eq!(circuit.output_names().len(), 4);
        assert_eq!(decision_tree_infer(&circuit, &[]).unwrap(), 3);
    }

    #[test]
    fn decision_tree_uses_no_arithmetic() {
        // The whole classifier is comparisons and routing: delays exist
        // only as threshold references, never as value arithmetic.
        let circuit = decision_tree_circuit(&demo_tree());
        let s = circuit.stats();
        assert!(s.inhibit_cells >= 6); // two per split
        assert_eq!(s.delay_elements, 6); // one θ reference + one margin per split
    }
}
