//! Ready-made temporal circuit blocks: the hardware nLSE/nLDE approximation
//! units of §2.3 (Fig 6) and the accumulation trees of §4.3.
//!
//! All blocks operate in a time-shifted frame: a block configured with shift
//! `k` produces `f(x', y') + k` where `f` is the approximated function. The
//! shift makes every internal constant non-negative so it can be realised
//! with physical delay elements, and downstream recurrence logic absorbs it
//! into the cycle time (§3).

use ta_delay_space::DelayValue;

use crate::circuit::{Circuit, CircuitBuilder, CircuitError, NodeId};
use crate::comparator::build_comparator;

/// One max-term `(C_i, D_i)` of the min-of-max nLSE approximation (Eq. 6),
/// or one inhibit-term `(E_i, F_i)` of the min-of-inhibit nLDE
/// approximation (Eq. 7).
pub type TermPair = (f64, f64);

/// How operand ordering is handled by an nLSE block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandOrdering {
    /// A temporal comparator sorts the inputs first, so each `(C, D)` term
    /// is instantiated once (the paper's design: §2.3).
    Comparator,
    /// No comparator: every term is instantiated twice, mirrored, doubling
    /// the max-term hardware. Kept for the ablation of the comparator
    /// optimisation.
    Mirrored,
}

/// Computes the time shift `K` required to make all constants of a term
/// list non-negative (§2.3): `K ≥ -min(C_i, D_i)`, and at least 0.
pub fn required_shift(terms: &[TermPair]) -> f64 {
    terms
        .iter()
        .flat_map(|&(c, d)| [c, d])
        .fold(0.0_f64, |k, v| k.max(-v))
}

/// A constructed approximation block inside a larger netlist.
#[derive(Debug, Clone, Copy)]
pub struct BlockOutput {
    /// The node carrying the block's result edge.
    pub node: NodeId,
    /// The total time shift of the result relative to the mathematical
    /// function: `out = f(x, y) + shift`.
    pub shift: f64,
}

/// Builds the **naive** nLSE approximation of Fig 6a: every max-term owns a
/// dedicated pair of delay elements.
///
/// The result edge is `nLSẼ(x, y) + k` where `nLSẼ` is the min-of-max
/// approximation with the given `terms` and `k ≥` [`required_shift`].
///
/// # Panics
///
/// Panics if `terms` is empty or `k < required_shift(terms)` (the netlist
/// would need negative delays).
pub fn build_nlse_naive(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    terms: &[TermPair],
    k: f64,
    ordering: OperandOrdering,
) -> BlockOutput {
    assert!(!terms.is_empty(), "nLSE block needs at least one max-term");
    assert!(
        k >= required_shift(terms),
        "shift k={k} below required {}",
        required_shift(terms)
    );
    let mut fan_in = Vec::new();
    match ordering {
        OperandOrdering::Comparator => {
            let (lo, hi) = build_comparator(b, x, y);
            // min(x, y) + k comes straight off the comparator's first output.
            let min_path = b.delay(lo, k);
            fan_in.push(min_path);
            for &(c, d) in terms {
                let hi_d = b.delay(hi, c + k);
                let lo_d = b.delay(lo, d + k);
                fan_in.push(b.last_arrival(&[hi_d, lo_d]));
            }
        }
        OperandOrdering::Mirrored => {
            let xd = b.delay(x, k);
            let yd = b.delay(y, k);
            fan_in.push(xd);
            fan_in.push(yd);
            for &(c, d) in terms {
                let a1 = b.delay(x, c + k);
                let b1 = b.delay(y, d + k);
                fan_in.push(b.last_arrival(&[a1, b1]));
                let a2 = b.delay(x, d + k);
                let b2 = b.delay(y, c + k);
                fan_in.push(b.last_arrival(&[a2, b2]));
            }
        }
    }
    BlockOutput {
        node: b.first_arrival(&fan_in),
        shift: k,
    }
}

/// Builds the **optimized shared-chain** nLSE approximation of Fig 6b: each
/// input drives a single chain of delay elements and max-terms tap the
/// chain at the appropriate cumulative delays, eliminating redundant delay.
///
/// Functionally identical to [`build_nlse_naive`] with
/// [`OperandOrdering::Comparator`]; the difference is hardware cost — see
/// [`Circuit::stats`].
///
/// # Panics
///
/// Same contract as [`build_nlse_naive`].
pub fn build_nlse_shared(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    terms: &[TermPair],
    k: f64,
) -> BlockOutput {
    assert!(!terms.is_empty(), "nLSE block needs at least one max-term");
    assert!(
        k >= required_shift(terms),
        "shift k={k} below required {}",
        required_shift(terms)
    );
    let (lo, hi) = build_comparator(b, x, y);

    // Absolute tap delays needed on each chain.
    let hi_taps: Vec<f64> = terms.iter().map(|&(c, _)| c + k).collect();
    let mut lo_taps: Vec<f64> = terms.iter().map(|&(_, d)| d + k).collect();
    lo_taps.push(k); // the min path

    let hi_nodes = build_tapped_chain(b, hi, &hi_taps);
    let lo_nodes = build_tapped_chain(b, lo, &lo_taps);

    let mut fan_in = vec![lo_nodes[terms.len()]]; // the `lo + k` tap
    for i in 0..terms.len() {
        fan_in.push(b.last_arrival(&[hi_nodes[i], lo_nodes[i]]));
    }
    BlockOutput {
        node: b.first_arrival(&fan_in),
        shift: k,
    }
}

/// Builds one delay chain with taps at the given absolute delays (any
/// order); returns one node per requested tap, in request order. Duplicate
/// delays share a tap.
fn build_tapped_chain(b: &mut CircuitBuilder, input: NodeId, taps: &[f64]) -> Vec<NodeId> {
    let mut order: Vec<usize> = (0..taps.len()).collect();
    order.sort_by(|&i, &j| taps[i].total_cmp(&taps[j]));
    let mut nodes = vec![input; taps.len()];
    let mut cur = input;
    let mut cur_delay = 0.0;
    for &idx in &order {
        let seg = taps[idx] - cur_delay;
        if seg > 1e-12 {
            cur = b.delay(cur, seg);
            cur_delay = taps[idx];
        }
        nodes[idx] = cur;
    }
    nodes
}

/// Builds the nLDE (delay-space subtraction) approximation: a first-arrival
/// over inhibit-terms (Eq. 7). The minuend `x` must arrive earlier than the
/// subtrahend `y` for a meaningful result; otherwise all terms inhibit and
/// the output never fires — which correctly decodes to importance-space 0
/// or "needs rail swap" in the split representation.
///
/// The result edge is `nLDẼ(x, y) + k`.
///
/// # Panics
///
/// Panics if `terms` is empty or `k < required_shift(terms)`.
pub fn build_nlde(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    terms: &[TermPair],
    k: f64,
) -> BlockOutput {
    assert!(
        !terms.is_empty(),
        "nLDE block needs at least one inhibit-term"
    );
    assert!(
        k >= required_shift(terms),
        "shift k={k} below required {}",
        required_shift(terms)
    );
    // Shared chains, as for nLSE: each input is delayed once per distinct tap.
    let x_taps: Vec<f64> = terms.iter().map(|&(e, _)| e + k).collect();
    let y_taps: Vec<f64> = terms.iter().map(|&(_, f)| f + k).collect();
    let x_nodes = build_tapped_chain(b, x, &x_taps);
    let y_nodes = build_tapped_chain(b, y, &y_taps);
    let mut fan_in = Vec::with_capacity(terms.len());
    for i in 0..terms.len() {
        fan_in.push(b.inhibit(x_nodes[i], y_nodes[i]));
    }
    BlockOutput {
        node: b.first_arrival(&fan_in),
        shift: k,
    }
}

/// Builds a balanced accumulation tree of two-input nLSE blocks (§4.3).
///
/// Whenever the tree is not fully symmetric, shallower paths are balanced
/// with delays equal to the inherent shift of one nLSE block, inserted as
/// deep in the tree as possible, so every input experiences the same total
/// reference-frame shift. Returns the root and the tree's uniform shift
/// (`levels × k`).
///
/// # Panics
///
/// Panics if `inputs` is empty or `terms` is empty.
pub fn build_nlse_tree(
    b: &mut CircuitBuilder,
    inputs: &[NodeId],
    terms: &[TermPair],
    k: f64,
) -> BlockOutput {
    assert!(!inputs.is_empty(), "tree needs at least one input");
    let (node, levels) = build_tree_rec(b, inputs, terms, k);
    BlockOutput {
        node,
        shift: levels as f64 * k,
    }
}

fn build_tree_rec(
    b: &mut CircuitBuilder,
    inputs: &[NodeId],
    terms: &[TermPair],
    k: f64,
) -> (NodeId, u32) {
    if inputs.len() == 1 {
        return (inputs[0], 0);
    }
    let mid = inputs.len().div_ceil(2);
    let (mut left, l_lv) = build_tree_rec(b, &inputs[..mid], terms, k);
    let (mut right, r_lv) = build_tree_rec(b, &inputs[mid..], terms, k);
    // Path-balance the shallower subtree (as deep as possible — right here,
    // at the point where depths first diverge).
    let levels = l_lv.max(r_lv);
    if l_lv < levels {
        left = b.delay(left, (levels - l_lv) as f64 * k);
    }
    if r_lv < levels {
        right = b.delay(right, (levels - r_lv) as f64 * k);
    }
    let out = build_nlse_shared(b, left, right, terms, k);
    (out.node, levels + 1)
}

/// Convenience: wraps a two-input nLSE block as a standalone [`Circuit`]
/// with inputs `x`, `y` and output `nlse`.
///
/// # Errors
///
/// Returns any [`CircuitError`] raised during construction (e.g. a negative
/// effective delay if `k` is too small).
pub fn nlse_circuit(terms: &[TermPair], k: f64, shared: bool) -> Result<Circuit, CircuitError> {
    let mut b = CircuitBuilder::new();
    let x = b.input("x");
    let y = b.input("y");
    let out = if shared {
        build_nlse_shared(&mut b, x, y, terms, k)
    } else {
        build_nlse_naive(&mut b, x, y, terms, k, OperandOrdering::Comparator)
    };
    b.output("nlse", out.node);
    b.build()
}

/// Convenience: wraps an nLDE block as a standalone [`Circuit`] with inputs
/// `x` (minuend), `y` (subtrahend) and output `nlde`.
///
/// # Errors
///
/// Returns any [`CircuitError`] raised during construction.
pub fn nlde_circuit(terms: &[TermPair], k: f64) -> Result<Circuit, CircuitError> {
    let mut b = CircuitBuilder::new();
    let x = b.input("x");
    let y = b.input("y");
    let out = build_nlde(&mut b, x, y, terms, k);
    b.output("nlde", out.node);
    b.build()
}

/// Reference (software) evaluation of the min-of-max nLSE approximation
/// with ordered operands, used to cross-check netlists and by the
/// functional simulator.
pub fn nlse_min_of_max(x: DelayValue, y: DelayValue, terms: &[TermPair]) -> DelayValue {
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    let mut best = lo;
    for &(c, d) in terms {
        let t = hi.delayed(c).max(lo.delayed(d));
        best = best.min(t);
    }
    best
}

/// Reference (software) evaluation of the min-of-inhibit nLDE
/// approximation, used to cross-check netlists and by the functional
/// simulator.
pub fn nlde_min_of_inhibit(x: DelayValue, y: DelayValue, terms: &[TermPair]) -> DelayValue {
    let mut best = DelayValue::ZERO;
    for &(e, f) in terms {
        let t = x.delayed(e).inhibited_by(y.delayed(f));
        best = best.min(t);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const TERMS: &[TermPair] = &[(-0.25, -0.25), (-1.0, -0.05)];

    fn dv(t: f64) -> DelayValue {
        DelayValue::from_delay(t)
    }

    #[test]
    fn required_shift_covers_most_negative() {
        assert!((required_shift(TERMS) - 1.0).abs() < 1e-12);
        assert_eq!(required_shift(&[(0.5, 0.2)]), 0.0);
    }

    #[test]
    fn naive_matches_reference() {
        let k = required_shift(TERMS);
        let c = nlse_circuit(TERMS, k, false).unwrap();
        for &(tx, ty) in &[(0.0, 0.0), (0.3, 1.7), (2.0, -1.0), (5.0, 0.1)] {
            let out = c.evaluate(&[dv(tx), dv(ty)]).unwrap()[0];
            let expected = nlse_min_of_max(dv(tx), dv(ty), TERMS).delayed(k);
            assert!(
                (out.delay() - expected.delay()).abs() < 1e-9,
                "({tx},{ty}): {} vs {}",
                out.delay(),
                expected.delay()
            );
        }
    }

    #[test]
    fn shared_matches_naive_functionally() {
        let k = required_shift(TERMS) + 0.5;
        let naive = nlse_circuit(TERMS, k, false).unwrap();
        let shared = nlse_circuit(TERMS, k, true).unwrap();
        for i in 0..50 {
            let tx = (i as f64) * 0.13 - 3.0;
            let ty = ((i * 7) % 50) as f64 * 0.11 - 2.0;
            let a = naive.evaluate(&[dv(tx), dv(ty)]).unwrap()[0];
            let b = shared.evaluate(&[dv(tx), dv(ty)]).unwrap()[0];
            assert!((a.delay() - b.delay()).abs() < 1e-9, "({tx},{ty})");
        }
    }

    #[test]
    fn shared_uses_less_delay() {
        let k = required_shift(TERMS);
        let naive = nlse_circuit(TERMS, k, false).unwrap().stats();
        let shared = nlse_circuit(TERMS, k, true).unwrap().stats();
        assert!(shared.total_delay_units < naive.total_delay_units);
        assert!(shared.delay_elements <= naive.delay_elements);
    }

    #[test]
    fn mirrored_handles_both_orders_without_comparator() {
        let k = required_shift(TERMS);
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let out = build_nlse_naive(&mut b, x, y, TERMS, k, OperandOrdering::Mirrored);
        b.output("o", out.node);
        let c = b.build().unwrap();
        let a = c.evaluate(&[dv(0.5), dv(2.0)]).unwrap()[0];
        let bb = c.evaluate(&[dv(2.0), dv(0.5)]).unwrap()[0];
        assert_eq!(a, bb);
        let expected = nlse_min_of_max(dv(0.5), dv(2.0), TERMS).delayed(k);
        assert!((a.delay() - expected.delay()).abs() < 1e-9);
    }

    #[test]
    fn nlde_circuit_matches_reference() {
        let terms: &[TermPair] = &[(0.1, -0.4), (0.7, 0.2), (1.6, 1.5)];
        let k = required_shift(terms);
        let c = nlde_circuit(terms, k).unwrap();
        for &(tx, ty) in &[(0.0, 0.5), (0.0, 3.0), (1.0, 1.1), (2.0, 1.0)] {
            let out = c.evaluate(&[dv(tx), dv(ty)]).unwrap()[0];
            let expected = nlde_min_of_inhibit(dv(tx), dv(ty), terms).delayed(k);
            if expected.is_never() {
                assert!(out.is_never(), "({tx},{ty})");
            } else {
                assert!((out.delay() - expected.delay()).abs() < 1e-9, "({tx},{ty})");
            }
        }
    }

    #[test]
    fn nlde_never_fires_when_subtrahend_dominates() {
        let terms: &[TermPair] = &[(0.0, 0.0)];
        let c = nlde_circuit(terms, 0.0).unwrap();
        // y earlier than x: all inhibit terms kill the data edge.
        let out = c.evaluate(&[dv(2.0), dv(1.0)]).unwrap()[0];
        assert!(out.is_never());
    }

    #[test]
    fn tree_is_balanced_and_shifts_uniformly() {
        let k = required_shift(TERMS);
        let mut b = CircuitBuilder::new();
        let inputs: Vec<NodeId> = (0..5).map(|i| b.input(format!("i{i}"))).collect();
        let out = build_nlse_tree(&mut b, &inputs, TERMS, k);
        b.output("sum", out.node);
        let c = b.build().unwrap();
        // 5 inputs → ceil(log2(5)) = 3 levels.
        assert!((out.shift - 3.0 * k).abs() < 1e-12);

        // Feeding all-equal edges: result should be below min (it's a sum).
        let t = 2.0;
        let got = c.evaluate(&[dv(t); 5]).unwrap()[0];
        // Exact sum of 5 equal values: t - ln 5 (+shift); approximation is
        // close but we only check it lies in the plausible band.
        assert!(got.delay() < t + out.shift);
        assert!(got.delay() > t - (5.0_f64).ln() - 0.5 + out.shift);
    }

    #[test]
    fn tree_single_input_is_identity() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let out = build_nlse_tree(&mut b, &[x], TERMS, 1.0);
        b.output("o", out.node);
        let c = b.build().unwrap();
        assert_eq!(out.shift, 0.0);
        assert_eq!(c.evaluate(&[dv(3.0)]).unwrap()[0], dv(3.0));
    }

    #[test]
    fn reference_nlse_improves_on_plain_min() {
        // Even hand-picked terms must beat the bare-min approximation
        // (whose worst error is ln 2) and stay within that bound.
        use ta_delay_space::ops;
        let mut worst_terms = 0.0_f64;
        let mut worst_min = 0.0_f64;
        for i in 0..100 {
            let tx = i as f64 * 0.05;
            let ty = 2.0 - i as f64 * 0.03;
            let approx = nlse_min_of_max(dv(tx), dv(ty), TERMS);
            let exact = ops::nlse(dv(tx), dv(ty));
            worst_terms = worst_terms.max((approx.delay() - exact.delay()).abs());
            worst_min = worst_min.max((tx.min(ty) - exact.delay()).abs());
        }
        assert!(worst_terms < worst_min, "{worst_terms} !< {worst_min}");
        assert!(worst_terms <= 2.0_f64.ln() + 1e-12);
    }
}
