//! The temporal netlist: construction, validation and simulation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ta_delay_space::DelayValue;

use crate::fault::{FaultObservation, FaultPlan};
use crate::gate::Gate;
use crate::noise::{DelayPerturb, NoNoise};

/// Identifier of a node (input or gate output) inside one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The dense index of this node, usable for side tables.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Input { name: String },
    Gate(Gate),
}

/// Errors raised while building or evaluating a [`Circuit`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a node id that does not exist.
    DanglingNode(usize),
    /// The netlist contains a combinational cycle. Recurrence must be
    /// scheduled across evaluation cycles (paper §3), not wired as a loop.
    Cycle,
    /// A delay element was given a negative nominal delay.
    NegativeDelay(f64),
    /// `evaluate` was called with the wrong number of input edges.
    InputArity {
        /// Inputs the circuit declares.
        expected: usize,
        /// Inputs supplied by the caller.
        got: usize,
    },
    /// A gate with empty fan-in was constructed.
    EmptyFanIn,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DanglingNode(id) => write!(f, "gate references unknown node {id}"),
            CircuitError::Cycle => write!(
                f,
                "combinational cycle: recurrence must be scheduled across cycles, not wired"
            ),
            CircuitError::NegativeDelay(d) => {
                write!(f, "delay elements cannot advance edges (got {d})")
            }
            CircuitError::InputArity { expected, got } => {
                write!(f, "expected {expected} input edges, got {got}")
            }
            CircuitError::EmptyFanIn => write!(f, "gate must have at least one fan-in"),
        }
    }
}

impl Error for CircuitError {}

/// Incrementally builds a [`Circuit`].
///
/// Nodes are appended in construction order, which is also a valid
/// topological order because gates may only reference already-created
/// nodes — the builder rejects anything else, so cycles cannot form.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
    inputs: Vec<NodeId>,
    error: Option<CircuitError>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    fn check_ref(&mut self, id: NodeId) {
        if id.0 >= self.nodes.len() && self.error.is_none() {
            self.error = Some(CircuitError::DanglingNode(id.0));
        }
    }

    /// Declares a primary input edge.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds a first-arrival (OR / temporal min) gate.
    pub fn first_arrival(&mut self, fan_in: &[NodeId]) -> NodeId {
        if fan_in.is_empty() && self.error.is_none() {
            self.error = Some(CircuitError::EmptyFanIn);
        }
        for &n in fan_in {
            self.check_ref(n);
        }
        self.push(Node::Gate(Gate::FirstArrival(fan_in.to_vec())))
    }

    /// Adds a last-arrival (AND / temporal max) gate.
    pub fn last_arrival(&mut self, fan_in: &[NodeId]) -> NodeId {
        if fan_in.is_empty() && self.error.is_none() {
            self.error = Some(CircuitError::EmptyFanIn);
        }
        for &n in fan_in {
            self.check_ref(n);
        }
        self.push(Node::Gate(Gate::LastArrival(fan_in.to_vec())))
    }

    /// Adds an inhibit cell: passes `data` only if it beats `inhibitor`.
    pub fn inhibit(&mut self, data: NodeId, inhibitor: NodeId) -> NodeId {
        self.check_ref(data);
        self.check_ref(inhibitor);
        self.push(Node::Gate(Gate::Inhibit { data, inhibitor }))
    }

    /// Adds a fixed delay element of `delta ≥ 0` units.
    pub fn delay(&mut self, input: NodeId, delta: f64) -> NodeId {
        self.check_ref(input);
        if (delta < 0.0 || delta.is_nan()) && self.error.is_none() {
            self.error = Some(CircuitError::NegativeDelay(delta));
        }
        self.push(Node::Gate(Gate::Delay { input, delta }))
    }

    /// Adds a chain of delay elements and returns the tap after each
    /// segment, in order. Used by the shared-chain nLSE block (Fig 6b).
    pub fn delay_chain(&mut self, input: NodeId, segments: &[f64]) -> Vec<NodeId> {
        let mut taps = Vec::with_capacity(segments.len());
        let mut cur = input;
        for &seg in segments {
            cur = self.delay(cur, seg);
            taps.push(cur);
        }
        taps
    }

    /// Marks a node as a named primary output.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) {
        self.check_ref(node);
        self.outputs.push((name.into(), node));
    }

    /// Finalises the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first construction error recorded by the builder
    /// (dangling reference, negative delay, empty fan-in).
    pub fn build(self) -> Result<Circuit, CircuitError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        // Trace labels are interned once here so the traced evaluation
        // path clones an `Arc` per node instead of formatting and
        // allocating a fresh `String` on every call.
        let labels = self
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, node)| -> Arc<str> {
                match node {
                    Node::Input { name } => name.as_str().into(),
                    Node::Gate(Gate::FirstArrival(_)) => format!("fa#{idx}").into(),
                    Node::Gate(Gate::LastArrival(_)) => format!("la#{idx}").into(),
                    Node::Gate(Gate::Inhibit { .. }) => format!("inh#{idx}").into(),
                    Node::Gate(Gate::Delay { delta, .. }) => {
                        format!("dly#{idx}(+{delta:.2})").into()
                    }
                }
            })
            .collect();
        Ok(Circuit {
            nodes: self.nodes,
            outputs: self.outputs,
            inputs: self.inputs,
            labels,
        })
    }
}

/// Per-circuit static statistics used by the energy/area models and the
/// Fig 6a-vs-6b ablation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of fa (OR) gates.
    pub fa_gates: usize,
    /// Number of la (AND) gates.
    pub la_gates: usize,
    /// Number of inhibit cells.
    pub inhibit_cells: usize,
    /// Number of discrete delay elements.
    pub delay_elements: usize,
    /// Sum of nominal delays over all delay elements, in abstract units.
    /// Energy of a delay line is proportional to this (paper §2.3).
    pub total_delay_units: f64,
}

/// An immutable, validated temporal netlist.
#[derive(Debug, Clone)]
pub struct Circuit {
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
    inputs: Vec<NodeId>,
    /// Interned per-node trace labels, built once at construction.
    labels: Vec<Arc<str>>,
}

impl Circuit {
    /// The node array in topological order (construction order).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The named outputs in declaration order.
    pub(crate) fn outputs_raw(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// The primary-input node ids in declaration order.
    pub(crate) fn inputs_raw(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Number of primary inputs, in declaration order.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Names of the primary inputs, in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .map(|id| match &self.nodes[id.0] {
                Node::Input { name } => name.as_str(),
                Node::Gate(_) => unreachable!("inputs list only holds input nodes"),
            })
            .collect()
    }

    /// Names of the primary outputs, in declaration order.
    pub fn output_names(&self) -> Vec<&str> {
        self.outputs.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Static gate/delay statistics of the netlist.
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats {
            inputs: self.inputs.len(),
            ..CircuitStats::default()
        };
        for node in &self.nodes {
            match node {
                Node::Input { .. } => {}
                Node::Gate(Gate::FirstArrival(_)) => s.fa_gates += 1,
                Node::Gate(Gate::LastArrival(_)) => s.la_gates += 1,
                Node::Gate(Gate::Inhibit { .. }) => s.inhibit_cells += 1,
                Node::Gate(Gate::Delay { delta, .. }) => {
                    s.delay_elements += 1;
                    s.total_delay_units += delta;
                }
            }
        }
        s
    }

    /// Evaluates the circuit with ideal (noiseless) delay elements.
    ///
    /// `inputs` are the arrival times of the primary inputs in declaration
    /// order; the result holds the output edges in output-declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    pub fn evaluate(&self, inputs: &[DelayValue]) -> Result<Vec<DelayValue>, CircuitError> {
        self.evaluate_noisy(inputs, &mut NoNoise)
    }

    /// Evaluates the circuit, perturbing every delay element through
    /// `noise` — the hook the RJ/PSIJ jitter models plug into.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    pub fn evaluate_noisy(
        &self,
        inputs: &[DelayValue],
        noise: &mut dyn DelayPerturb,
    ) -> Result<Vec<DelayValue>, CircuitError> {
        if inputs.len() != self.inputs.len() {
            return Err(CircuitError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let mut times: Vec<DelayValue> = vec![DelayValue::ZERO; self.nodes.len()];
        let mut next_input = 0;
        for (idx, node) in self.nodes.iter().enumerate() {
            times[idx] = match node {
                Node::Input { .. } => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Gate(Gate::FirstArrival(ins)) => ins
                    .iter()
                    .map(|n| times[n.0])
                    .min()
                    .unwrap_or(DelayValue::ZERO),
                Node::Gate(Gate::LastArrival(ins)) => ins
                    .iter()
                    .map(|n| times[n.0])
                    .max()
                    .unwrap_or(DelayValue::ZERO),
                Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                    times[data.0].inhibited_by(times[inhibitor.0])
                }
                Node::Gate(Gate::Delay { input, delta }) => {
                    let in_t = times[input.0];
                    if in_t.is_never() {
                        in_t
                    } else {
                        in_t.delayed(noise.perturb(*delta).max(0.0))
                    }
                }
            };
        }
        Ok(self.outputs.iter().map(|(_, n)| times[n.0]).collect())
    }

    /// Evaluates the circuit under a [`FaultPlan`], perturbing delay
    /// elements through `noise` as in [`Circuit::evaluate_noisy`].
    ///
    /// Node-addressed edge faults replace the computed edge of the
    /// targeted node after its gate function runs; drift fractions scale
    /// the nominal delay of targeted delay elements before the noise
    /// perturbation. With an empty plan the arithmetic is identical to
    /// `evaluate_noisy` expression-for-expression, so fault-rate-zero
    /// campaigns stay bit-identical to fault-free runs.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    pub fn evaluate_faulty(
        &self,
        inputs: &[DelayValue],
        noise: &mut dyn DelayPerturb,
        plan: &FaultPlan,
    ) -> Result<(Vec<DelayValue>, FaultObservation), CircuitError> {
        if inputs.len() != self.inputs.len() {
            return Err(CircuitError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let mut obs = FaultObservation::default();
        let mut times: Vec<DelayValue> = vec![DelayValue::ZERO; self.nodes.len()];
        let mut next_input = 0;
        for (idx, node) in self.nodes.iter().enumerate() {
            let computed = match node {
                Node::Input { .. } => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Gate(Gate::FirstArrival(ins)) => ins
                    .iter()
                    .map(|n| times[n.0])
                    .min()
                    .unwrap_or(DelayValue::ZERO),
                Node::Gate(Gate::LastArrival(ins)) => ins
                    .iter()
                    .map(|n| times[n.0])
                    .max()
                    .unwrap_or(DelayValue::ZERO),
                Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                    times[data.0].inhibited_by(times[inhibitor.0])
                }
                Node::Gate(Gate::Delay { input, delta }) => {
                    let in_t = times[input.0];
                    if in_t.is_never() {
                        in_t
                    } else {
                        let nominal = match plan.delay_drift(idx) {
                            None => *delta,
                            Some(fraction) => {
                                let factor = 1.0 + fraction;
                                if factor < 0.0 {
                                    // Drift below -100% would advance the
                                    // edge; a delay line cannot, so it
                                    // saturates at zero delay.
                                    obs.saturations += 1;
                                    0.0
                                } else {
                                    delta * factor
                                }
                            }
                        };
                        in_t.delayed(noise.perturb(nominal).max(0.0))
                    }
                }
            };
            times[idx] = match plan.edge_fault(idx) {
                None => computed,
                Some(fault) => fault.apply(computed, &mut obs),
            };
        }
        let outs = self.outputs.iter().map(|(_, n)| times[n.0]).collect();
        Ok((outs, obs))
    }

    /// The delay elements of the netlist as `(node_index, nominal_delta)`
    /// pairs in topological order — the side table higher layers use to
    /// lower architectural fault sites onto concrete nodes.
    pub fn delay_elements(&self) -> Vec<(usize, f64)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(idx, node)| match node {
                Node::Gate(Gate::Delay { delta, .. }) => Some((idx, *delta)),
                _ => None,
            })
            .collect()
    }

    /// Total number of nodes (inputs and gates); node indices addressable
    /// by a [`FaultPlan`] are `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Exports the netlist in Graphviz DOT format for visual inspection
    /// (`dot -Tsvg`). Inputs are boxes, outputs double circles; delay
    /// elements carry their nominal delay as the edge-adjacent label.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph race_logic {\n  rankdir=LR;\n");
        for (idx, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Input { name } => {
                    s.push_str(&format!("  n{idx} [shape=box, label=\"{name}\"];\n"));
                }
                Node::Gate(Gate::FirstArrival(ins)) => {
                    s.push_str(&format!("  n{idx} [label=\"fa\"];\n"));
                    for i in ins {
                        s.push_str(&format!("  n{} -> n{idx};\n", i.0));
                    }
                }
                Node::Gate(Gate::LastArrival(ins)) => {
                    s.push_str(&format!("  n{idx} [label=\"la\"];\n"));
                    for i in ins {
                        s.push_str(&format!("  n{} -> n{idx};\n", i.0));
                    }
                }
                Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                    s.push_str(&format!("  n{idx} [label=\"inh\"];\n"));
                    s.push_str(&format!("  n{} -> n{idx} [label=\"d\"];\n", data.0));
                    s.push_str(&format!(
                        "  n{} -> n{idx} [label=\"i\", style=dashed];\n",
                        inhibitor.0
                    ));
                }
                Node::Gate(Gate::Delay { input, delta }) => {
                    s.push_str(&format!("  n{idx} [shape=cds, label=\"+{delta:.2}u\"];\n"));
                    s.push_str(&format!("  n{} -> n{idx};\n", input.0));
                }
            }
        }
        for (name, node) in &self.outputs {
            s.push_str(&format!(
                "  out_{name} [shape=doublecircle, label=\"{name}\"];\n  n{} -> out_{name};\n",
                node.0
            ));
        }
        s.push_str("}\n");
        s
    }

    /// Evaluates the circuit and additionally records every node's edge
    /// time as a [`crate::Trace`], renderable as a text waveform.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    pub fn evaluate_traced(
        &self,
        inputs: &[DelayValue],
    ) -> Result<(Vec<DelayValue>, crate::Trace), CircuitError> {
        if inputs.len() != self.inputs.len() {
            return Err(CircuitError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let mut times: Vec<DelayValue> = vec![DelayValue::ZERO; self.nodes.len()];
        let mut entries = Vec::with_capacity(self.nodes.len());
        let mut next_input = 0;
        for (idx, node) in self.nodes.iter().enumerate() {
            let time = match node {
                Node::Input { .. } => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::Gate(Gate::FirstArrival(ins)) => ins
                    .iter()
                    .map(|n| times[n.0])
                    .min()
                    .unwrap_or(DelayValue::ZERO),
                Node::Gate(Gate::LastArrival(ins)) => ins
                    .iter()
                    .map(|n| times[n.0])
                    .max()
                    .unwrap_or(DelayValue::ZERO),
                Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                    times[data.0].inhibited_by(times[inhibitor.0])
                }
                Node::Gate(Gate::Delay { input, delta }) => {
                    let in_t = times[input.0];
                    if in_t.is_never() {
                        in_t
                    } else {
                        in_t.delayed(*delta)
                    }
                }
            };
            times[idx] = time;
            entries.push(crate::trace::TraceEntry {
                label: Arc::clone(&self.labels[idx]),
                time,
            });
        }
        let outs = self.outputs.iter().map(|(_, n)| times[n.0]).collect();
        Ok((outs, crate::Trace::new(entries)))
    }

    /// Evaluates and returns outputs keyed by name. Keys borrow from the
    /// circuit's own output table, so no per-call `String` allocation
    /// happens — lookups like `map["out"]` behave exactly as before.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::evaluate`].
    pub fn evaluate_named(
        &self,
        inputs: &[DelayValue],
    ) -> Result<HashMap<&str, DelayValue>, CircuitError> {
        let vals = self.evaluate(inputs)?;
        Ok(self
            .outputs
            .iter()
            .map(|(n, _)| n.as_str())
            .zip(vals)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(t: f64) -> DelayValue {
        DelayValue::from_delay(t)
    }

    #[test]
    fn fa_la_delay_semantics() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let mn = b.first_arrival(&[x, y]);
        let mx = b.last_arrival(&[x, y]);
        let d = b.delay(mn, 1.5);
        b.output("min", mn);
        b.output("max", mx);
        b.output("min+1.5", d);
        let c = b.build().unwrap();
        let out = c.evaluate(&[dv(2.0), dv(5.0)]).unwrap();
        assert_eq!(out, vec![dv(2.0), dv(5.0), dv(3.5)]);
    }

    #[test]
    fn inhibit_in_circuit() {
        let mut b = CircuitBuilder::new();
        let d = b.input("data");
        let i = b.input("inh");
        let g = b.inhibit(d, i);
        b.output("g", g);
        let c = b.build().unwrap();
        assert_eq!(c.evaluate(&[dv(1.0), dv(2.0)]).unwrap()[0], dv(1.0));
        assert!(c.evaluate(&[dv(2.0), dv(1.0)]).unwrap()[0].is_never());
    }

    #[test]
    fn never_propagates_through_delay() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let d = b.delay(x, 10.0);
        b.output("d", d);
        let c = b.build().unwrap();
        assert!(c.evaluate(&[DelayValue::ZERO]).unwrap()[0].is_never());
    }

    #[test]
    fn negative_delay_rejected() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        b.delay(x, -1.0);
        assert_eq!(b.build().unwrap_err(), CircuitError::NegativeDelay(-1.0));
    }

    #[test]
    fn empty_fan_in_rejected() {
        let mut b = CircuitBuilder::new();
        b.first_arrival(&[]);
        assert_eq!(b.build().unwrap_err(), CircuitError::EmptyFanIn);
    }

    #[test]
    fn input_arity_checked() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        b.output("x", x);
        let c = b.build().unwrap();
        assert_eq!(
            c.evaluate(&[]).unwrap_err(),
            CircuitError::InputArity {
                expected: 1,
                got: 0
            }
        );
    }

    #[test]
    fn delay_chain_taps() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let taps = b.delay_chain(x, &[1.0, 2.0, 3.0]);
        for (i, &t) in taps.iter().enumerate() {
            b.output(format!("t{i}"), t);
        }
        let c = b.build().unwrap();
        let out = c.evaluate(&[dv(0.0)]).unwrap();
        assert_eq!(out, vec![dv(1.0), dv(3.0), dv(6.0)]);
        let stats = c.stats();
        assert_eq!(stats.delay_elements, 3);
        assert!((stats.total_delay_units - 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_counts_gates() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        let l = b.last_arrival(&[x, y]);
        let i = b.inhibit(f, l);
        b.output("o", i);
        let c = b.build().unwrap();
        let s = c.stats();
        assert_eq!(
            (s.inputs, s.fa_gates, s.la_gates, s.inhibit_cells),
            (2, 1, 1, 1)
        );
    }

    #[test]
    fn dot_export_covers_all_node_kinds() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        let l = b.last_arrival(&[x, y]);
        let d = b.delay(f, 1.5);
        let i = b.inhibit(d, l);
        b.output("res", i);
        let dot = b.build().unwrap().to_dot();
        for needle in [
            "digraph",
            "shape=box",
            "\"fa\"",
            "\"la\"",
            "+1.50u",
            "\"inh\"",
            "doublecircle",
        ] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
        // Every edge references declared nodes.
        assert_eq!(dot.matches("->").count(), 8);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        let d = b.delay(f, 0.3);
        let i = b.inhibit(d, y);
        b.output("o", i);
        b.output("d", d);
        let c = b.build().unwrap();
        let ins = [dv(1.7), dv(2.9)];
        let plain = c.evaluate(&ins).unwrap();
        let (faulty, obs) = c
            .evaluate_faulty(&ins, &mut NoNoise, &FaultPlan::new())
            .unwrap();
        for (a, b) in plain.iter().zip(&faulty) {
            assert_eq!(a.delay().to_bits(), b.delay().to_bits());
        }
        assert_eq!(obs, crate::fault::FaultObservation::default());
    }

    #[test]
    fn stuck_at_never_on_fan_in_changes_min() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        b.output("min", f);
        let c = b.build().unwrap();
        // Knock out the earlier input: the min falls through to the later.
        let mut plan = FaultPlan::new();
        plan.set_edge_fault(x.index(), crate::fault::EdgeFault::StuckAtNever);
        let (out, obs) = c
            .evaluate_faulty(&[dv(1.0), dv(4.0)], &mut NoNoise, &plan)
            .unwrap();
        assert_eq!(out[0], dv(4.0));
        assert_eq!(obs.edges_faulted, 1);
    }

    #[test]
    fn delay_drift_scales_nominal_and_saturates() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let d = b.delay(x, 2.0);
        b.output("d", d);
        let c = b.build().unwrap();
        let node = c.delay_elements()[0].0;

        let mut plan = FaultPlan::new();
        plan.set_delay_drift(node, 0.5);
        let (out, obs) = c.evaluate_faulty(&[dv(1.0)], &mut NoNoise, &plan).unwrap();
        assert_eq!(out[0], dv(4.0)); // 1 + 2·(1+0.5)
        assert_eq!(obs.saturations, 0);

        // Drift below -100% saturates the line at zero delay.
        let mut plan = FaultPlan::new();
        plan.set_delay_drift(node, -1.5);
        let (out, obs) = c.evaluate_faulty(&[dv(1.0)], &mut NoNoise, &plan).unwrap();
        assert_eq!(out[0], dv(1.0));
        assert_eq!(obs.saturations, 1);
    }

    #[test]
    fn delay_elements_table_matches_stats() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let taps = b.delay_chain(x, &[1.0, 2.0]);
        b.output("t", taps[1]);
        let c = b.build().unwrap();
        let table = c.delay_elements();
        assert_eq!(table.len(), c.stats().delay_elements);
        assert_eq!(table.iter().map(|&(_, d)| d).sum::<f64>(), 3.0);
        assert!(table.iter().all(|&(idx, _)| idx < c.node_count()));
    }

    #[test]
    fn named_outputs() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        b.output("echo", x);
        let c = b.build().unwrap();
        let m = c.evaluate_named(&[dv(4.0)]).unwrap();
        assert_eq!(m["echo"], dv(4.0));
    }

    /// Regression for the interned named-wire paths: the observable API
    /// behavior (label text, named lookup, values) is unchanged, and the
    /// traced path no longer allocates a fresh label per evaluation — two
    /// traces of one circuit share the same label allocations.
    #[test]
    fn named_wire_paths_are_interned_with_unchanged_behavior() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        let l = b.last_arrival(&[x, y]);
        let d = b.delay(f, 2.0);
        let i = b.inhibit(d, l);
        b.output("near", f);
        b.output("far", i);
        let c = b.build().unwrap();
        let ins = [dv(1.0), dv(5.0)];

        // Named lookup behaves exactly as before the interning change.
        let m = c.evaluate_named(&ins).unwrap();
        assert_eq!(m["near"], dv(1.0));
        assert_eq!(m["far"], dv(3.0));
        assert_eq!(m.len(), 2);

        // Trace labels carry the documented text...
        let (outs, t1) = c.evaluate_traced(&ins).unwrap();
        assert_eq!(outs, c.evaluate(&ins).unwrap());
        let labels: Vec<&str> = t1.entries().iter().map(|e| e.label.as_ref()).collect();
        assert_eq!(labels, ["x", "y", "fa#2", "la#3", "dly#4(+2.00)", "inh#5"]);

        // ...and are interned: a second traced evaluation hands back the
        // very same allocations instead of re-formatting them.
        let (_, t2) = c.evaluate_traced(&ins).unwrap();
        for (a, b) in t1.entries().iter().zip(t2.entries()) {
            assert!(std::sync::Arc::ptr_eq(&a.label, &b.label));
        }
    }
}
