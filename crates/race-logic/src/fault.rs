//! Discrete fault injection at the netlist level.
//!
//! Analog timing noise (RJ/PSIJ, [`crate::noise`]) perturbs every delay
//! element a little; *faults* are the other failure class a race-logic
//! accelerator exhibits: an edge stuck at "never" (broken wire) or stuck
//! at the reference edge (shorted line), an event dropped by a marginal
//! latch, a spurious early edge from crosstalk, and slow multiplicative
//! drift of a delay line's nominal value (aging, local IR drop).
//!
//! A [`FaultPlan`] addresses faults by *node index* inside one
//! [`crate::Circuit`], so higher layers that know the architectural
//! meaning of each node (weight line, tree stage, …) can lower their
//! site-level fault maps onto the netlist and the engine applies them
//! during evaluation. Fault application never produces NaN and never
//! panics: out-of-range results saturate to representable delay-space
//! values and the clamp is counted in [`FaultObservation`].

use std::collections::HashMap;

use ta_delay_space::DelayValue;

/// A discrete fault on one netlist node's output edge.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EdgeFault {
    /// The edge never fires (stuck-at-∞ in delay space).
    StuckAtNever,
    /// The edge fires with the reference edge (stuck-at-0 delay).
    StuckAtZero,
    /// The event is swallowed this evaluation — observably the same edge
    /// value as [`EdgeFault::StuckAtNever`] but tallied separately, the
    /// way a transient drop differs from a hard open in a campaign report.
    DropEvent,
    /// A spurious edge fires `advance` units earlier than computed. If
    /// nothing would have fired, the spurious edge fires at `advance`
    /// after the reference edge; results before the reference edge
    /// saturate to it.
    SpuriousEarly(f64),
}

impl EdgeFault {
    /// Applies the fault to a computed edge, tallying into `obs`.
    pub fn apply(self, computed: DelayValue, obs: &mut FaultObservation) -> DelayValue {
        obs.edges_faulted += 1;
        match self {
            EdgeFault::StuckAtNever => DelayValue::ZERO,
            EdgeFault::StuckAtZero => DelayValue::from_delay(0.0),
            EdgeFault::DropEvent => {
                obs.events_dropped += 1;
                DelayValue::ZERO
            }
            EdgeFault::SpuriousEarly(advance) => {
                if computed.is_never() {
                    return DelayValue::from_delay(advance.max(0.0));
                }
                let t = computed.delay() - advance;
                if t < 0.0 {
                    obs.saturations += 1;
                    DelayValue::from_delay(0.0)
                } else {
                    DelayValue::from_delay(t)
                }
            }
        }
    }
}

/// Node-indexed fault assignment for one netlist.
///
/// Built by layers that know what each node means architecturally; the
/// plan itself is purely structural. An empty plan makes
/// [`crate::Circuit::evaluate_faulty`] equivalent to
/// [`crate::Circuit::evaluate_noisy`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    edge_faults: HashMap<usize, EdgeFault>,
    delay_drift: HashMap<usize, f64>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.edge_faults.is_empty() && self.delay_drift.is_empty()
    }

    /// Sets an edge fault on the node at `node_index` (replacing any
    /// previous fault there).
    pub fn set_edge_fault(&mut self, node_index: usize, fault: EdgeFault) {
        self.edge_faults.insert(node_index, fault);
    }

    /// Sets a multiplicative drift *fraction* on the delay element at
    /// `node_index`: its nominal delay becomes `delta × (1 + fraction)`.
    /// Fractions below `-1` would make the line advance edges; evaluation
    /// clamps the realised delay at zero and counts a saturation.
    pub fn set_delay_drift(&mut self, node_index: usize, fraction: f64) {
        self.delay_drift.insert(node_index, fraction);
    }

    /// The edge fault on `node_index`, if any.
    pub fn edge_fault(&self, node_index: usize) -> Option<EdgeFault> {
        self.edge_faults.get(&node_index).copied()
    }

    /// The drift fraction on `node_index`, if any.
    pub fn delay_drift(&self, node_index: usize) -> Option<f64> {
        self.delay_drift.get(&node_index).copied()
    }

    /// Number of faulted nodes (edge faults plus drifted delay elements).
    pub fn len(&self) -> usize {
        self.edge_faults.len() + self.delay_drift.len()
    }

    /// Iterates all edge faults as `(node_index, fault)` pairs, in
    /// unspecified order — used by the optimizer's sharing map to re-key
    /// plans onto optimized netlists.
    pub fn edge_faults(&self) -> impl Iterator<Item = (usize, EdgeFault)> + '_ {
        self.edge_faults.iter().map(|(&n, &f)| (n, f))
    }

    /// Iterates all delay drifts as `(node_index, fraction)` pairs, in
    /// unspecified order.
    pub fn delay_drifts(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.delay_drift.iter().map(|(&n, &f)| (n, f))
    }
}

/// Counters of fault effects observed during one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultObservation {
    /// Node edges replaced by an [`EdgeFault`].
    pub edges_faulted: usize,
    /// Events swallowed by [`EdgeFault::DropEvent`].
    pub events_dropped: usize,
    /// Results clamped back into representable delay space (early edges
    /// that would precede the reference edge, drifted delays that would
    /// have gone negative).
    pub saturations: usize,
}

impl FaultObservation {
    /// Accumulates another observation into this one.
    pub fn absorb(&mut self, other: FaultObservation) {
        self.edges_faulted += other.edges_faulted;
        self.events_dropped += other.events_dropped;
        self.saturations += other.saturations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(t: f64) -> DelayValue {
        DelayValue::from_delay(t)
    }

    #[test]
    fn edge_fault_semantics() {
        let mut obs = FaultObservation::default();
        assert!(EdgeFault::StuckAtNever.apply(dv(1.0), &mut obs).is_never());
        assert_eq!(EdgeFault::StuckAtZero.apply(dv(1.0), &mut obs), dv(0.0));
        assert!(EdgeFault::DropEvent.apply(dv(1.0), &mut obs).is_never());
        assert_eq!(obs.edges_faulted, 3);
        assert_eq!(obs.events_dropped, 1);
        assert_eq!(obs.saturations, 0);
    }

    #[test]
    fn spurious_early_advances_and_saturates() {
        let mut obs = FaultObservation::default();
        // Plain advance.
        assert_eq!(
            EdgeFault::SpuriousEarly(0.5).apply(dv(2.0), &mut obs),
            dv(1.5)
        );
        assert_eq!(obs.saturations, 0);
        // Would precede the reference edge: saturates to it.
        assert_eq!(
            EdgeFault::SpuriousEarly(5.0).apply(dv(2.0), &mut obs),
            dv(0.0)
        );
        assert_eq!(obs.saturations, 1);
        // Phantom edge where nothing would have fired.
        assert_eq!(
            EdgeFault::SpuriousEarly(0.7).apply(DelayValue::ZERO, &mut obs),
            dv(0.7)
        );
        // Never produces NaN even for pathological advances.
        let v = EdgeFault::SpuriousEarly(f64::INFINITY).apply(dv(1.0), &mut obs);
        assert!(!v.delay().is_nan());
    }

    #[test]
    fn plan_bookkeeping() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.set_edge_fault(3, EdgeFault::StuckAtNever);
        plan.set_delay_drift(5, 0.25);
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.edge_fault(3), Some(EdgeFault::StuckAtNever));
        assert_eq!(plan.edge_fault(4), None);
        assert_eq!(plan.delay_drift(5), Some(0.25));
        // Replacement, not accumulation.
        plan.set_edge_fault(3, EdgeFault::StuckAtZero);
        assert_eq!(plan.edge_fault(3), Some(EdgeFault::StuckAtZero));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn observations_absorb() {
        let mut a = FaultObservation {
            edges_faulted: 1,
            events_dropped: 0,
            saturations: 2,
        };
        a.absorb(FaultObservation {
            edges_faulted: 3,
            events_dropped: 1,
            saturations: 0,
        });
        assert_eq!(
            a,
            FaultObservation {
                edges_faulted: 4,
                events_dropped: 1,
                saturations: 2
            }
        );
    }
}
