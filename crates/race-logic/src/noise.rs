//! Delay-element noise injection hooks.

pub use normal::NormalSampler;

/// A perturbation applied to each delay element's nominal delay during
/// simulation.
///
/// Implementations receive the nominal delay in abstract units and return
/// the *actual* delay of that element for this evaluation. The circuit
/// simulator clamps results at zero (an inverter chain cannot advance an
/// edge).
pub trait DelayPerturb {
    /// Returns the realised delay for an element with the given nominal
    /// delay.
    fn perturb(&mut self, nominal: f64) -> f64;
}

/// Ideal delay elements: no jitter.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNoise;

impl DelayPerturb for NoNoise {
    fn perturb(&mut self, nominal: f64) -> f64 {
        nominal
    }
}

/// Gaussian jitter with standard deviation `sigma(nominal)`.
///
/// This is the generic hook used by the circuit-level RJ/PSIJ models in
/// `ta-circuits`; the closure decides how jitter scales with the element's
/// nominal delay.
pub struct GaussianJitter<F, R> {
    sigma_of: F,
    rng: R,
    sampler: NormalSampler,
}

impl<F, R> std::fmt::Debug for GaussianJitter<F, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaussianJitter").finish_non_exhaustive()
    }
}

impl<F, R> GaussianJitter<F, R>
where
    F: FnMut(f64) -> f64,
    R: rand::Rng,
{
    /// Creates a jitter source; `sigma_of(nominal)` gives the standard
    /// deviation for an element with that nominal delay.
    pub fn new(sigma_of: F, rng: R) -> Self {
        GaussianJitter {
            sigma_of,
            rng,
            sampler: NormalSampler::new(),
        }
    }
}

impl<F, R> DelayPerturb for GaussianJitter<F, R>
where
    F: FnMut(f64) -> f64,
    R: rand::Rng,
{
    fn perturb(&mut self, nominal: f64) -> f64 {
        let sigma = (self.sigma_of)(nominal);
        nominal + sigma * self.sampler.sample(&mut self.rng)
    }
}

/// Minimal standard-normal sampling (Marsaglia polar method) so that the
/// workspace does not need `rand_distr`.
pub mod normal {
    /// Samples standard-normal deviates; caches the spare value of each
    /// polar-method round.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct NormalSampler {
        spare: Option<f64>,
    }

    impl NormalSampler {
        /// Creates a sampler with an empty cache.
        pub fn new() -> Self {
            NormalSampler { spare: None }
        }

        /// Discards the cached spare value, returning the sampler to its
        /// freshly-constructed state.
        ///
        /// Hot paths hoist one sampler out of a per-pixel loop instead of
        /// constructing one per pixel; calling `reset` at each pixel
        /// boundary reproduces the fresh-sampler RNG draw order exactly
        /// (a carried spare would consume one fewer `rng` draw and shift
        /// every subsequent sample).
        pub fn reset(&mut self) {
            self.spare = None;
        }

        /// Draws one standard-normal sample using `rng`.
        pub fn sample<R: rand::Rng>(&mut self, rng: &mut R) -> f64 {
            if let Some(s) = self.spare.take() {
                return s;
            }
            loop {
                let u: f64 = rng.gen_range(-1.0..1.0);
                let v: f64 = rng.gen_range(-1.0..1.0);
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    let factor = (-2.0 * s.ln() / s).sqrt();
                    self.spare = Some(v * factor);
                    return u * factor;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn no_noise_is_identity() {
        let mut n = NoNoise;
        assert_eq!(n.perturb(3.25), 3.25);
    }

    #[test]
    fn gaussian_jitter_statistics() {
        let rng = SmallRng::seed_from_u64(7);
        let mut j = GaussianJitter::new(|_| 0.1, rng);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| j.perturb(5.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n as f64 - 1.0);
        assert!((mean - 5.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn sigma_scales_with_nominal() {
        let rng = SmallRng::seed_from_u64(9);
        // sigma = 10% of nominal.
        let mut j = GaussianJitter::new(|d| 0.1 * d, rng);
        let n = 20_000;
        let small: f64 = (0..n).map(|_| (j.perturb(1.0) - 1.0).powi(2)).sum::<f64>() / n as f64;
        let large: f64 = (0..n)
            .map(|_| (j.perturb(10.0) - 10.0).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((large.sqrt() / small.sqrt() - 10.0).abs() < 0.5);
    }
}
