//! Race-logic substrate: temporal primitives and a netlist-level simulator.
//!
//! Race logic encodes information in the *arrival time* of voltage edges and
//! computes with four primitives (paper §2): **first arrival** (`fa`, an OR
//! gate on rising edges — a temporal `min`), **last arrival** (`la`, an AND
//! gate — a temporal `max`), **delay**, and **inhibit**. This crate provides
//!
//! * an edge-level [`Circuit`] representation with a topological simulator
//!   ([`CircuitBuilder`]), including per-delay-element noise injection and
//!   delay/area accounting,
//! * the temporal comparator (edge sorter) of Smith's space-time algebra,
//! * ready-made circuit blocks ([`blocks`]) for the paper's nLSE and nLDE
//!   approximations in both the naive (Fig 6a) and the optimized
//!   shared-delay-chain (Fig 6b) forms,
//! * the classic pre-arithmetic race-logic applications ([`apps`]):
//!   temporal sorting networks and grid shortest-path dynamic programming.
//!
//! Edges are represented by [`ta_delay_space::DelayValue`]: the wrapped
//! number is the edge's arrival time relative to the reference frame, and
//! `+∞` is an edge that never fires.
//!
//! ```
//! use ta_race_logic::CircuitBuilder;
//! use ta_delay_space::DelayValue;
//!
//! let mut b = CircuitBuilder::new();
//! let x = b.input("x");
//! let y = b.input("y");
//! let first = b.first_arrival(&[x, y]);
//! let shifted = b.delay(first, 2.0);
//! b.output("out", shifted);
//! let circuit = b.build()?;
//!
//! let out = circuit.evaluate(&[DelayValue::from_delay(3.0), DelayValue::from_delay(1.0)])?;
//! assert_eq!(out[0], DelayValue::from_delay(3.0)); // min(3,1) + 2
//! # Ok::<(), ta_race_logic::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod blocks;
mod circuit;
mod comparator;
mod fault;
mod gate;
mod noise;
pub mod opt;
mod trace;

pub use circuit::{Circuit, CircuitBuilder, CircuitError, CircuitStats, NodeId};
pub use comparator::sort_edges;
pub use fault::{EdgeFault, FaultObservation, FaultPlan};
pub use gate::Gate;
pub use noise::{DelayPerturb, GaussianJitter, NoNoise, NormalSampler};
pub use opt::{optimize, EventSim, OptError, OptStats, Optimized, Resolution, SharingMap};
pub use trace::{Trace, TraceEntry};
