//! Netlist optimizer and event-driven evaluator (DESIGN.md §5.16).
//!
//! Temporal netlists built structurally from the Fig 6a/6b blocks carry a
//! lot of dead weight: rails whose kernel row has absent (zero-weight)
//! columns feed `never` leaves into full comparator trees, and per-row
//! trees repeat identical sub-DAGs. This module simplifies a built
//! [`Circuit`] with three fused passes and then evaluates the result
//! incrementally:
//!
//! 1. **Constant delay folding** — caller-declared constant inputs (the
//!    always-`never` feed, the frame-boundary reference edge) propagate
//!    through `fa`/`la`/`inhibit`/`delay` gates. Every rule is bit-exact:
//!    [`DelayValue`] orders by `total_cmp`, so value-equality implies
//!    bit-equality, and the only non-finite constant (`never`, `+∞`) has a
//!    single canonical bit pattern. Delay chains are *never* re-associated
//!    (floating-point addition order is part of the contract), and
//!    zero-delta delay elements are kept (eliding them would map a `-0.0`
//!    input to `-0.0` where the element yields `+0.0`).
//! 2. **Common-subcircuit sharing** — structural hash-consing: gates with
//!    the same kind, fan-in (order-normalised for the commutative
//!    `fa`/`la`) and bit-exact delta merge into one physical gate. The
//!    [`SharingMap`] records every logical site's physical home so fault
//!    injection still lands on real hardware.
//! 3. **Dead-gate elimination** — gates unreachable from any declared
//!    output are dropped.
//!
//! Primary inputs are always preserved, in declaration order, so the
//! optimized circuit keeps the original evaluation arity. Outputs that
//! fold to compile-time constants are carried out-of-band (see
//! [`Optimized::const_output`]) because a [`Circuit`] node cannot encode
//! a constant edge.
//!
//! [`EventSim`] is the compiled incremental evaluator: it keeps per-node
//! edge times across evaluations and re-computes only gates whose fan-in
//! changed bit-wise since the previous evaluation — the event-queue
//! discipline `GateEngine` uses per pixel/cycle. It is valid for clean
//! and deterministic-fault evaluation; *noisy* evaluation consumes one
//! RNG draw per delay element per sweep, so skipping work would change
//! the stream — noisy paths must keep the full-sweep evaluator.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ta_delay_space::DelayValue;

use crate::circuit::{Circuit, CircuitBuilder, CircuitError, Node, NodeId};
use crate::fault::{EdgeFault, FaultObservation, FaultPlan};
use crate::gate::Gate;

/// Where a logical (pre-optimization) node ended up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resolution {
    /// Materialised at this node index of the optimized circuit —
    /// possibly shared with other logical sites (see
    /// [`SharingMap::siblings`]).
    Gate(usize),
    /// Folded into a compile-time constant edge; consumers baked the
    /// value in, so the site no longer exists as hardware.
    Const(DelayValue),
    /// Unreachable from every declared output; dropped.
    Dead,
}

/// Maps every node of the original circuit to its fate in the optimized
/// one, and lowers node-addressed [`FaultPlan`]s accordingly.
#[derive(Debug, Clone)]
pub struct SharingMap {
    resolutions: Vec<Resolution>,
}

/// Errors raised while lowering fault plans through a [`SharingMap`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// The plan addressed a logical site that constant-folding removed;
    /// its value was baked into consumers, so no physical gate exists to
    /// fault.
    FaultOnFolded(usize),
    /// Two logical sites sharing one physical gate were given different
    /// faults — one gate cannot exhibit both.
    FaultConflict(usize),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::FaultOnFolded(n) => {
                write!(f, "fault addresses node {n}, which folded to a constant")
            }
            OptError::FaultConflict(n) => {
                write!(f, "conflicting faults merge onto physical gate {n}")
            }
        }
    }
}

impl Error for OptError {}

impl SharingMap {
    /// The fate of original node `old`.
    pub fn resolve(&self, old: usize) -> Resolution {
        self.resolutions
            .get(old)
            .copied()
            .unwrap_or(Resolution::Dead)
    }

    /// The optimized-circuit node index hosting original node `old`, if
    /// it survived as hardware.
    pub fn gate(&self, old: usize) -> Option<usize> {
        match self.resolve(old) {
            Resolution::Gate(n) => Some(n),
            _ => None,
        }
    }

    /// All original nodes that share `old`'s physical gate (including
    /// `old` itself). Sites merged by hash-consing — or collapsed onto a
    /// surviving wire by folding — resolve to one gate; a fault on that
    /// gate is a fault on every one of them.
    pub fn siblings(&self, old: usize) -> Vec<usize> {
        match self.resolve(old) {
            Resolution::Gate(target) => self
                .resolutions
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, Resolution::Gate(t) if *t == target))
                .map(|(i, _)| i)
                .collect(),
            _ => vec![old],
        }
    }

    /// Re-keys a plan addressed at the *original* circuit onto the
    /// optimized circuit's node indices.
    ///
    /// Faults on [`Resolution::Dead`] sites are dropped (they could never
    /// reach an output). Drift on a site folded to `never` is dropped too
    /// (a delay line feeding or carrying a never edge cannot move it).
    ///
    /// # Errors
    ///
    /// [`OptError::FaultOnFolded`] if an edge fault (or a drift on a
    /// finite-constant site) addresses folded-away hardware, and
    /// [`OptError::FaultConflict`] if two merged sites carry different
    /// faults.
    pub fn lower_plan(&self, plan: &FaultPlan) -> Result<FaultPlan, OptError> {
        let mut lowered = FaultPlan::new();
        for (old, fault) in plan.edge_faults() {
            match self.resolve(old) {
                Resolution::Gate(n) => {
                    if let Some(existing) = lowered.edge_fault(n) {
                        if existing != fault {
                            return Err(OptError::FaultConflict(n));
                        }
                    }
                    lowered.set_edge_fault(n, fault);
                }
                Resolution::Const(_) => return Err(OptError::FaultOnFolded(old)),
                Resolution::Dead => {}
            }
        }
        for (old, fraction) in plan.delay_drifts() {
            match self.resolve(old) {
                Resolution::Gate(n) => {
                    if let Some(existing) = lowered.delay_drift(n) {
                        if existing.to_bits() != fraction.to_bits() {
                            return Err(OptError::FaultConflict(n));
                        }
                    }
                    lowered.set_delay_drift(n, fraction);
                }
                Resolution::Const(v) if v.is_never() => {}
                Resolution::Const(_) => return Err(OptError::FaultOnFolded(old)),
                Resolution::Dead => {}
            }
        }
        Ok(lowered)
    }

    /// Expands a plan into the *original* circuit's golden-reference
    /// form: a fault on a shared physical gate is mirrored onto every
    /// logical sibling, so the unoptimized evaluator models the same
    /// hardware failure the optimized one does.
    ///
    /// When one sibling feeds another through a folded wire (an alias
    /// chain rather than parallel hash-consed copies), the fault is
    /// applied only at the most-upstream sibling of each chain — the
    /// downstream identity wires then propagate the already-faulted edge,
    /// matching the single application the physical gate performs.
    pub fn mirror_plan(&self, original: &Circuit, plan: &FaultPlan) -> FaultPlan {
        let mut mirrored = FaultPlan::new();
        for (old, fault) in plan.edge_faults() {
            for site in self.mirror_sites(original, old) {
                mirrored.set_edge_fault(site, fault);
            }
        }
        for (old, fraction) in plan.delay_drifts() {
            for site in self.mirror_sites(original, old) {
                mirrored.set_delay_drift(site, fraction);
            }
        }
        mirrored
    }

    /// The sibling set of `old`, filtered so no chosen site is downstream
    /// of another chosen site in `original`.
    fn mirror_sites(&self, original: &Circuit, old: usize) -> Vec<usize> {
        let siblings = self.siblings(old);
        let mut chosen: Vec<usize> = Vec::with_capacity(siblings.len());
        for &s in &siblings {
            // Siblings come out in ascending (topological) order, so any
            // ancestor of `s` among them is already in `chosen`.
            if !chosen.iter().any(|&c| is_ancestor(original, c, s)) {
                chosen.push(s);
            }
        }
        chosen
    }
}

/// Whether node `anc` is a (strict) ancestor of node `node` in the
/// circuit's DAG.
fn is_ancestor(circuit: &Circuit, anc: usize, node: usize) -> bool {
    if anc >= node {
        return false;
    }
    let mut stack = vec![node];
    let mut seen = vec![false; node + 1];
    while let Some(n) = stack.pop() {
        for op in operand_indices(&circuit.nodes()[n]) {
            if op == anc {
                return true;
            }
            if op > anc && !seen[op] {
                seen[op] = true;
                stack.push(op);
            }
        }
    }
    false
}

fn operand_indices(node: &Node) -> Vec<usize> {
    match node {
        Node::Input { .. } => Vec::new(),
        Node::Gate(Gate::FirstArrival(ins)) | Node::Gate(Gate::LastArrival(ins)) => {
            ins.iter().map(|n| n.index()).collect()
        }
        Node::Gate(Gate::Inhibit { data, inhibitor }) => vec![data.index(), inhibitor.index()],
        Node::Gate(Gate::Delay { input, .. }) => vec![input.index()],
    }
}

/// Static counters reported by [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates (non-input nodes) in the original circuit.
    pub gates_pre: usize,
    /// Gates in the optimized circuit.
    pub gates_post: usize,
    /// Original gates folded to constants or collapsed onto a surviving
    /// wire.
    pub folded: usize,
    /// Original gates merged into an already-materialised identical gate.
    pub shared: usize,
    /// Original gates dropped as unreachable from every output.
    pub dead: usize,
}

/// The result of [`optimize`]: the simplified circuit, the sharing map
/// back to the original, constant-folded outputs, and pass statistics.
#[derive(Debug, Clone)]
pub struct Optimized {
    circuit: Circuit,
    const_outputs: Vec<Option<DelayValue>>,
    map: SharingMap,
    stats: OptStats,
}

impl Optimized {
    /// The optimized netlist. Same input arity and order as the original;
    /// outputs keep their declaration order but skip constant-folded ones
    /// (use [`Optimized::evaluate`] or [`Optimized::splice_outputs`] to
    /// recover the full output vector).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The sharing map from original node indices to optimized ones.
    pub fn map(&self) -> &SharingMap {
        &self.map
    }

    /// Pass statistics.
    pub fn stats(&self) -> OptStats {
        self.stats
    }

    /// The compile-time constant value of output `i` (declaration order),
    /// if folding reduced it to one.
    pub fn const_output(&self, i: usize) -> Option<DelayValue> {
        self.const_outputs.get(i).copied().flatten()
    }

    /// Splices constant-folded outputs back into a dynamic-output vector
    /// produced by evaluating [`Optimized::circuit`], restoring the
    /// original circuit's output arity and order.
    pub fn splice_outputs(&self, dynamic: &[DelayValue]) -> Vec<DelayValue> {
        let mut dyn_iter = dynamic.iter().copied();
        self.const_outputs
            .iter()
            .map(|c| match c {
                Some(v) => *v,
                None => dyn_iter.next().unwrap_or(DelayValue::ZERO),
            })
            .collect()
    }

    /// Evaluates the optimized circuit, returning outputs in the
    /// *original* declaration order (constants spliced in). Bit-identical
    /// to evaluating the original circuit with the declared constant
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    pub fn evaluate(&self, inputs: &[DelayValue]) -> Result<Vec<DelayValue>, CircuitError> {
        let dynamic = self.circuit.evaluate(inputs)?;
        Ok(self.splice_outputs(&dynamic))
    }

    /// Builds an incremental evaluator for the optimized circuit.
    pub fn event_sim(&self) -> EventSim {
        EventSim::new(&self.circuit)
    }

    /// Builds an incremental evaluator with `plan` (addressed at the
    /// *original* circuit) lowered through the sharing map and baked in.
    ///
    /// # Errors
    ///
    /// Propagates [`SharingMap::lower_plan`] errors.
    pub fn event_sim_with_plan(&self, plan: &FaultPlan) -> Result<EventSim, OptError> {
        let lowered = self.map.lower_plan(plan)?;
        Ok(EventSim::with_plan(&self.circuit, &lowered))
    }

    /// A structural fingerprint: equal fingerprints are a fast necessary
    /// condition for [`Optimized::structurally_equal`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for node in self.circuit.nodes() {
            match node {
                Node::Input { .. } => h.byte(0),
                Node::Gate(Gate::FirstArrival(ins)) => {
                    h.byte(1);
                    h.usize(ins.len());
                    for n in ins {
                        h.usize(n.index());
                    }
                }
                Node::Gate(Gate::LastArrival(ins)) => {
                    h.byte(2);
                    h.usize(ins.len());
                    for n in ins {
                        h.usize(n.index());
                    }
                }
                Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                    h.byte(3);
                    h.usize(data.index());
                    h.usize(inhibitor.index());
                }
                Node::Gate(Gate::Delay { input, delta }) => {
                    h.byte(4);
                    h.usize(input.index());
                    h.u64(delta.to_bits());
                }
            }
        }
        h.byte(5);
        for (_, n) in self.circuit.outputs_raw() {
            h.usize(n.index());
        }
        h.byte(6);
        for c in &self.const_outputs {
            match c {
                None => h.byte(0),
                Some(v) => {
                    h.byte(1);
                    h.u64(v.delay().to_bits());
                }
            }
        }
        h.finish()
    }

    /// Whether two optimized circuits are structurally identical —
    /// node-for-node with bit-exact deltas, the same output wiring, and
    /// the same constant outputs. Structurally identical circuits share
    /// node indices, so a plan lowered through either sharing map applies
    /// to both. Higher layers use this to count physical hardware once
    /// across repeated kernel rows.
    pub fn structurally_equal(&self, other: &Optimized) -> bool {
        let (a, b) = (&self.circuit, &other.circuit);
        if a.nodes().len() != b.nodes().len()
            || a.outputs_raw().len() != b.outputs_raw().len()
            || self.const_outputs.len() != other.const_outputs.len()
        {
            return false;
        }
        let same_node = |x: &Node, y: &Node| -> bool {
            match (x, y) {
                (Node::Input { .. }, Node::Input { .. }) => true,
                (Node::Gate(Gate::FirstArrival(i)), Node::Gate(Gate::FirstArrival(j)))
                | (Node::Gate(Gate::LastArrival(i)), Node::Gate(Gate::LastArrival(j))) => i == j,
                (
                    Node::Gate(Gate::Inhibit {
                        data: d1,
                        inhibitor: i1,
                    }),
                    Node::Gate(Gate::Inhibit {
                        data: d2,
                        inhibitor: i2,
                    }),
                ) => d1 == d2 && i1 == i2,
                (
                    Node::Gate(Gate::Delay {
                        input: p1,
                        delta: q1,
                    }),
                    Node::Gate(Gate::Delay {
                        input: p2,
                        delta: q2,
                    }),
                ) => p1 == p2 && q1.to_bits() == q2.to_bits(),
                _ => false,
            }
        };
        a.nodes()
            .iter()
            .zip(b.nodes())
            .all(|(x, y)| same_node(x, y))
            && a.outputs_raw()
                .iter()
                .zip(b.outputs_raw())
                .all(|((_, x), (_, y))| x == y)
            && self
                .const_outputs
                .iter()
                .zip(&other.const_outputs)
                .all(|(x, y)| match (x, y) {
                    (None, None) => true,
                    (Some(u), Some(v)) => u.delay().to_bits() == v.delay().to_bits(),
                    _ => false,
                })
    }
}

/// FNV-1a, enough for structural fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A node's value during folding: known at compile time, or dynamic and
/// materialised at a physical node.
#[derive(Clone, Copy)]
enum Val {
    Known(DelayValue),
    Dyn(usize),
}

/// Structural signature for hash-consing.
#[derive(PartialEq, Eq, Hash)]
enum Sig {
    Fa(Vec<usize>),
    La(Vec<usize>),
    Inh(usize, usize),
    Dly(usize, u64),
}

/// Physical nodes accumulated during folding, before dead-gate sweep.
enum PhysOp {
    Input(String),
    Fa(Vec<usize>),
    La(Vec<usize>),
    Inh(usize, usize),
    Dly(usize, f64),
}

/// Optimizes `circuit` under the declared constant inputs (one entry per
/// primary input, declaration order; `None` = dynamic). See the module
/// docs for the passes and their bit-exactness argument.
///
/// # Errors
///
/// Returns [`CircuitError::InputArity`] if `const_inputs` does not match
/// the circuit's input count.
///
/// # Panics
///
/// Panics only on internal invariant violations (the rebuilt netlist is
/// derived from an already-validated circuit).
#[allow(clippy::too_many_lines, clippy::expect_used)]
pub fn optimize(
    circuit: &Circuit,
    const_inputs: &[Option<DelayValue>],
) -> Result<Optimized, CircuitError> {
    if const_inputs.len() != circuit.inputs_raw().len() {
        return Err(CircuitError::InputArity {
            expected: circuit.inputs_raw().len(),
            got: const_inputs.len(),
        });
    }
    let nodes = circuit.nodes();
    let n = nodes.len();

    let mut phys: Vec<PhysOp> = Vec::with_capacity(n);
    let mut vals: Vec<Val> = Vec::with_capacity(n);
    let mut res: Vec<Resolution> = Vec::with_capacity(n);
    // Physical home of each old node, when one exists (inputs always;
    // gates once materialised) — also the memo for `materialize`.
    let mut homes: Vec<Option<usize>> = vec![None; n];
    let mut cons: HashMap<Sig, usize> = HashMap::new();
    let mut stats = OptStats::default();

    // Materialises the value of old node `old` as a physical node. Only
    // called for nodes whose value is `Known` but needed by a dynamic
    // consumer; rebuilds the original (constant) cone unchanged, so the
    // consumer sees bit-identical edges.
    fn materialize(
        old: usize,
        nodes: &[Node],
        phys: &mut Vec<PhysOp>,
        homes: &mut Vec<Option<usize>>,
        cons: &mut HashMap<Sig, usize>,
    ) -> usize {
        if let Some(p) = homes[old] {
            return p;
        }
        let op = match &nodes[old] {
            Node::Input { name } => PhysOp::Input(name.clone()),
            Node::Gate(Gate::FirstArrival(ins)) => PhysOp::Fa(
                ins.iter()
                    .map(|i| materialize(i.index(), nodes, phys, homes, cons))
                    .collect(),
            ),
            Node::Gate(Gate::LastArrival(ins)) => PhysOp::La(
                ins.iter()
                    .map(|i| materialize(i.index(), nodes, phys, homes, cons))
                    .collect(),
            ),
            Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                let d = materialize(data.index(), nodes, phys, homes, cons);
                let i = materialize(inhibitor.index(), nodes, phys, homes, cons);
                PhysOp::Inh(d, i)
            }
            Node::Gate(Gate::Delay { input, delta }) => {
                let p = materialize(input.index(), nodes, phys, homes, cons);
                PhysOp::Dly(p, *delta)
            }
        };
        let pid = push_consed(op, phys, cons);
        homes[old] = Some(pid);
        pid
    }

    /// Pushes a physical gate through the cons table (inputs bypass it).
    fn push_consed(op: PhysOp, phys: &mut Vec<PhysOp>, cons: &mut HashMap<Sig, usize>) -> usize {
        let sig = match &op {
            PhysOp::Input(_) => None,
            PhysOp::Fa(ins) => Some(Sig::Fa(ins.clone())),
            PhysOp::La(ins) => Some(Sig::La(ins.clone())),
            PhysOp::Inh(d, i) => Some(Sig::Inh(*d, *i)),
            PhysOp::Dly(p, d) => Some(Sig::Dly(*p, d.to_bits())),
        };
        if let Some(sig) = sig {
            if let Some(&pid) = cons.get(&sig) {
                return pid;
            }
            let pid = phys.len();
            phys.push(op);
            cons.insert(sig, pid);
            pid
        } else {
            let pid = phys.len();
            phys.push(op);
            pid
        }
    }

    let mut next_input = 0usize;
    for (idx, node) in nodes.iter().enumerate() {
        let (val, resolution) = match node {
            Node::Input { name } => {
                // Inputs are always materialised, preserving arity and
                // order, even when their value is constant.
                let pid = phys.len();
                phys.push(PhysOp::Input(name.clone()));
                homes[idx] = Some(pid);
                let c = const_inputs[next_input];
                next_input += 1;
                match c {
                    Some(v) => (Val::Known(v), Resolution::Const(v)),
                    None => (Val::Dyn(pid), Resolution::Gate(pid)),
                }
            }
            Node::Gate(gate) => {
                stats.gates_pre += 1;
                match fold_gate(gate, &vals) {
                    Folded::Known(v) => {
                        stats.folded += 1;
                        (Val::Known(v), Resolution::Const(v))
                    }
                    Folded::Alias(old_or_pid) => {
                        stats.folded += 1;
                        let pid = match old_or_pid {
                            AliasTarget::Phys(p) => p,
                            AliasTarget::KnownOperand(o) => {
                                materialize(o, nodes, &mut phys, &mut homes, &mut cons)
                            }
                        };
                        (Val::Dyn(pid), Resolution::Gate(pid))
                    }
                    Folded::Build(op) => {
                        let op = realise(op, nodes, &mut phys, &mut homes, &mut cons);
                        let before = phys.len();
                        let pid = push_consed(op, &mut phys, &mut cons);
                        if phys.len() == before {
                            stats.shared += 1;
                        }
                        homes[idx] = Some(pid);
                        (Val::Dyn(pid), Resolution::Gate(pid))
                    }
                }
            }
        };
        vals.push(val);
        res.push(resolution);
    }

    // Dead-gate sweep: keep all inputs plus everything reachable from a
    // dynamic output.
    let mut live = vec![false; phys.len()];
    for (i, op) in phys.iter().enumerate() {
        if matches!(op, PhysOp::Input(_)) {
            live[i] = true;
        }
    }
    let mut stack: Vec<usize> = Vec::new();
    for (_, out) in circuit.outputs_raw() {
        if let Resolution::Gate(pid) = res[out.index()] {
            stack.push(pid);
        }
    }
    while let Some(p) = stack.pop() {
        if live[p] {
            continue;
        }
        live[p] = true;
        match &phys[p] {
            PhysOp::Input(_) => {}
            PhysOp::Fa(ins) | PhysOp::La(ins) => stack.extend(ins.iter().copied()),
            PhysOp::Inh(d, i) => {
                stack.push(*d);
                stack.push(*i);
            }
            PhysOp::Dly(q, _) => stack.push(*q),
        }
    }

    // Rebuild the surviving physical nodes through the ordinary builder;
    // physical ids were issued in topological order, so translation is a
    // single forward pass.
    let mut b = CircuitBuilder::new();
    let mut final_ids: Vec<Option<NodeId>> = vec![None; phys.len()];
    for (p, op) in phys.iter().enumerate() {
        if !live[p] {
            continue;
        }
        let tr = |q: usize, final_ids: &[Option<NodeId>]| -> NodeId {
            final_ids[q].expect("operands of live gates are live")
        };
        let id = match op {
            PhysOp::Input(name) => b.input(name.clone()),
            PhysOp::Fa(ins) => {
                let ins: Vec<NodeId> = ins.iter().map(|&q| tr(q, &final_ids)).collect();
                b.first_arrival(&ins)
            }
            PhysOp::La(ins) => {
                let ins: Vec<NodeId> = ins.iter().map(|&q| tr(q, &final_ids)).collect();
                b.last_arrival(&ins)
            }
            PhysOp::Inh(d, i) => {
                let (d, i) = (tr(*d, &final_ids), tr(*i, &final_ids));
                b.inhibit(d, i)
            }
            PhysOp::Dly(q, delta) => {
                let q = tr(*q, &final_ids);
                b.delay(q, *delta)
            }
        };
        final_ids[p] = Some(id);
    }
    let mut const_outputs = Vec::with_capacity(circuit.outputs_raw().len());
    for (name, out) in circuit.outputs_raw() {
        match res[out.index()] {
            Resolution::Gate(pid) => {
                b.output(
                    name.clone(),
                    final_ids[pid].expect("output targets are live"),
                );
                const_outputs.push(None);
            }
            Resolution::Const(v) => const_outputs.push(Some(v)),
            Resolution::Dead => unreachable!("outputs seed liveness"),
        }
    }
    let optimized = b.build().expect("rebuilt from a validated circuit");

    // Final resolutions: translate physical ids to optimized node
    // indices; gates whose physical home died resolve Dead.
    let resolutions: Vec<Resolution> = res
        .iter()
        .map(|r| match r {
            Resolution::Gate(pid) => match final_ids[*pid] {
                Some(id) => Resolution::Gate(id.index()),
                None => Resolution::Dead,
            },
            other => *other,
        })
        .collect();
    for (i, r) in resolutions.iter().enumerate() {
        if matches!(r, Resolution::Dead) && matches!(nodes[i], Node::Gate(_)) {
            stats.dead += 1;
        }
    }
    stats.gates_post = optimized.node_count() - optimized.input_count();

    Ok(Optimized {
        circuit: optimized,
        const_outputs,
        map: SharingMap { resolutions },
        stats,
    })
}

/// Fold decision for one gate, before physical realisation.
enum Folded {
    Known(DelayValue),
    Alias(AliasTarget),
    Build(ProtoOp),
}

enum AliasTarget {
    Phys(usize),
    /// Alias to an operand whose value is known but not yet materialised
    /// (e.g. the single finite-known survivor of an `fa`).
    KnownOperand(usize),
}

/// A gate to build, with operands as either physical ids or old-node
/// indices still needing materialisation.
enum ProtoOp {
    Fa(Vec<Operand>),
    La(Vec<Operand>),
    Inh(Operand, Operand),
    Dly(Operand, f64),
}

#[derive(Clone, Copy)]
enum Operand {
    Phys(usize),
    Old(usize),
}

fn realise(
    op: ProtoOp,
    nodes: &[Node],
    phys: &mut Vec<PhysOp>,
    homes: &mut Vec<Option<usize>>,
    cons: &mut HashMap<Sig, usize>,
) -> PhysOp {
    // Re-declared here because nested fns cannot capture: resolve an
    // operand to a physical id, materialising known cones on demand.
    fn pid(
        o: Operand,
        nodes: &[Node],
        phys: &mut Vec<PhysOp>,
        homes: &mut Vec<Option<usize>>,
        cons: &mut HashMap<Sig, usize>,
    ) -> usize {
        match o {
            Operand::Phys(p) => p,
            Operand::Old(old) => mat(old, nodes, phys, homes, cons),
        }
    }
    fn mat(
        old: usize,
        nodes: &[Node],
        phys: &mut Vec<PhysOp>,
        homes: &mut Vec<Option<usize>>,
        cons: &mut HashMap<Sig, usize>,
    ) -> usize {
        if let Some(p) = homes[old] {
            return p;
        }
        let op = match &nodes[old] {
            Node::Input { name } => PhysOp::Input(name.clone()),
            Node::Gate(Gate::FirstArrival(ins)) => PhysOp::Fa(
                ins.iter()
                    .map(|i| mat(i.index(), nodes, phys, homes, cons))
                    .collect(),
            ),
            Node::Gate(Gate::LastArrival(ins)) => PhysOp::La(
                ins.iter()
                    .map(|i| mat(i.index(), nodes, phys, homes, cons))
                    .collect(),
            ),
            Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                let d = mat(data.index(), nodes, phys, homes, cons);
                let i = mat(inhibitor.index(), nodes, phys, homes, cons);
                PhysOp::Inh(d, i)
            }
            Node::Gate(Gate::Delay { input, delta }) => {
                let p = mat(input.index(), nodes, phys, homes, cons);
                PhysOp::Dly(p, *delta)
            }
        };
        let sig = match &op {
            PhysOp::Input(_) => None,
            PhysOp::Fa(ins) => Some(Sig::Fa(ins.clone())),
            PhysOp::La(ins) => Some(Sig::La(ins.clone())),
            PhysOp::Inh(d, i) => Some(Sig::Inh(*d, *i)),
            PhysOp::Dly(p, d) => Some(Sig::Dly(*p, d.to_bits())),
        };
        let id = if let Some(sig) = sig {
            if let Some(&hit) = cons.get(&sig) {
                hit
            } else {
                let id = phys.len();
                phys.push(op);
                cons.insert(sig, id);
                id
            }
        } else {
            let id = phys.len();
            phys.push(op);
            id
        };
        homes[old] = Some(id);
        id
    }

    match op {
        ProtoOp::Fa(ins) => {
            let mut ids: Vec<usize> = ins
                .into_iter()
                .map(|o| pid(o, nodes, phys, homes, cons))
                .collect();
            // `min` is order- and multiplicity-insensitive under
            // `total_cmp` (bit-equal ties), so normalising the fan-in is
            // bit-safe and maximises sharing.
            ids.sort_unstable();
            ids.dedup();
            PhysOp::Fa(ids)
        }
        ProtoOp::La(ins) => {
            let mut ids: Vec<usize> = ins
                .into_iter()
                .map(|o| pid(o, nodes, phys, homes, cons))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            PhysOp::La(ids)
        }
        ProtoOp::Inh(d, i) => {
            let d = pid(d, nodes, phys, homes, cons);
            let i = pid(i, nodes, phys, homes, cons);
            PhysOp::Inh(d, i)
        }
        ProtoOp::Dly(p, delta) => {
            let p = pid(p, nodes, phys, homes, cons);
            PhysOp::Dly(p, delta)
        }
    }
}

/// The constant-folding rules. Each is bit-exact against the reference
/// evaluator (`Circuit::evaluate`); see the module docs.
fn fold_gate(gate: &Gate, vals: &[Val]) -> Folded {
    match gate {
        Gate::FirstArrival(ins) => {
            let mut known_min: Option<(DelayValue, usize)> = None;
            let mut phys_ids: Vec<usize> = Vec::with_capacity(ins.len());
            for i in ins {
                match vals[i.index()] {
                    Val::Known(v) if v.is_never() => {}
                    Val::Known(v) => match known_min {
                        Some((m, _)) if m <= v => {}
                        _ => known_min = Some((v, i.index())),
                    },
                    Val::Dyn(p) => phys_ids.push(p),
                }
            }
            // `min` is multiplicity-insensitive (bit-equal ties under
            // `total_cmp`), so duplicate physical fan-ins collapse.
            phys_ids.sort_unstable();
            phys_ids.dedup();
            if phys_ids.is_empty() {
                return Folded::Known(known_min.map_or(DelayValue::ZERO, |(v, _)| v));
            }
            let mut dynamic: Vec<Operand> = phys_ids.into_iter().map(Operand::Phys).collect();
            if let Some((_, achiever)) = known_min {
                dynamic.push(Operand::Old(achiever));
            }
            if dynamic.len() == 1 {
                return Folded::Alias(match dynamic[0] {
                    Operand::Phys(p) => AliasTarget::Phys(p),
                    Operand::Old(o) => AliasTarget::KnownOperand(o),
                });
            }
            Folded::Build(ProtoOp::Fa(dynamic))
        }
        Gate::LastArrival(ins) => {
            let mut known_max: Option<(DelayValue, usize)> = None;
            let mut phys_ids: Vec<usize> = Vec::with_capacity(ins.len());
            for i in ins {
                match vals[i.index()] {
                    Val::Known(v) if v.is_never() => {
                        // One never fan-in pins the max at never — the
                        // canonical `+∞` bits the reference would return.
                        return Folded::Known(DelayValue::ZERO);
                    }
                    Val::Known(v) => match known_max {
                        Some((m, _)) if m >= v => {}
                        _ => known_max = Some((v, i.index())),
                    },
                    Val::Dyn(p) => phys_ids.push(p),
                }
            }
            phys_ids.sort_unstable();
            phys_ids.dedup();
            if phys_ids.is_empty() {
                // Non-empty fan-in with no dynamics and no nevers means
                // known_max is set.
                return Folded::Known(known_max.map_or(DelayValue::ZERO, |(v, _)| v));
            }
            let mut dynamic: Vec<Operand> = phys_ids.into_iter().map(Operand::Phys).collect();
            if let Some((_, achiever)) = known_max {
                dynamic.push(Operand::Old(achiever));
            }
            if dynamic.len() == 1 {
                return Folded::Alias(match dynamic[0] {
                    Operand::Phys(p) => AliasTarget::Phys(p),
                    Operand::Old(o) => AliasTarget::KnownOperand(o),
                });
            }
            Folded::Build(ProtoOp::La(dynamic))
        }
        Gate::Inhibit { data, inhibitor } => {
            let d = vals[data.index()];
            let i = vals[inhibitor.index()];
            match (d, i) {
                (Val::Known(dv), Val::Known(iv)) => Folded::Known(dv.inhibited_by(iv)),
                (Val::Known(dv), _) if dv.is_never() => Folded::Known(DelayValue::ZERO),
                (Val::Dyn(p), Val::Known(iv)) if iv.is_never() => {
                    // A never inhibitor can never win the race: the data
                    // edge always passes (a never data edge passes as its
                    // own canonical bits).
                    Folded::Alias(AliasTarget::Phys(p))
                }
                (Val::Dyn(p), Val::Known(_)) => Folded::Build(ProtoOp::Inh(
                    Operand::Phys(p),
                    Operand::Old(inhibitor.index()),
                )),
                (Val::Known(_), Val::Dyn(q)) => {
                    Folded::Build(ProtoOp::Inh(Operand::Old(data.index()), Operand::Phys(q)))
                }
                (Val::Dyn(p), Val::Dyn(q)) => {
                    Folded::Build(ProtoOp::Inh(Operand::Phys(p), Operand::Phys(q)))
                }
            }
        }
        Gate::Delay { input, delta } => match vals[input.index()] {
            Val::Known(v) if v.is_never() => Folded::Known(v),
            // Matches the evaluator's `perturb(delta).max(0.0)` exactly
            // (NoNoise returns the nominal unchanged).
            Val::Known(v) => Folded::Known(v.delayed(delta.max(0.0))),
            Val::Dyn(p) => Folded::Build(ProtoOp::Dly(Operand::Phys(p), *delta)),
        },
    }
}

/// Compiled incremental evaluator over one [`Circuit`].
///
/// State persists across [`EventSim::eval`] calls: the first call sweeps
/// the whole netlist; later calls seed a dirty set with the inputs whose
/// bits changed and re-compute only gates with a dirty fan-in, cutting
/// propagation where a recomputed edge is bit-identical to the stored
/// one. Every recomputation counts as one *event*
/// ([`EventSim::events`]).
///
/// Fault-free, non-output delay elements are *fused* at compile time:
/// instead of holding an evaluator node of their own, their (drift-
/// adjusted) deltas ride along the fan-in reference of each consumer,
/// which applies them as a chain of additions when it reads the operand.
/// Bit-exactness: a delay element computes `t.delayed(d)` for a finite
/// `t` and passes a never edge unchanged, and IEEE-754 addition absorbs
/// `+inf` (the never encoding), so applying the chain left-to-right on
/// the source edge reproduces every intermediate node's output exactly —
/// including mid-chain saturation to never. Delay gates that carry an
/// edge fault or a saturating drift (both observable per evaluation) and
/// delay gates that drive a circuit output keep their own node.
///
/// Invariants (DESIGN.md §5.16): nodes are processed in topological
/// (index) order; a gate is re-evaluated iff at least one fan-in changed
/// bit-wise; gate functions and baked fault applications are
/// deterministic pure functions, so skipped gates hold exactly the value
/// a full sweep would produce. Deterministic [`FaultPlan`]s may be baked
/// in ([`EventSim::with_plan`]); noisy evaluation must not use this
/// evaluator (RNG draws are per-element per-sweep).
#[derive(Debug, Clone)]
pub struct EventSim {
    kind: Vec<u8>,
    input_pos: Vec<u32>,
    fan_start: Vec<u32>,
    fan_src: Vec<u32>,
    fan_chain_lo: Vec<u32>,
    fan_chain_len: Vec<u32>,
    chain_deltas: Vec<f64>,
    fanout_start: Vec<u32>,
    fanout: Vec<u32>,
    eff_delta: Vec<f64>,
    saturating: Vec<bool>,
    fault: Vec<Option<EdgeFault>>,
    input_nodes: Vec<u32>,
    identity_seed: bool,
    out_nodes: Vec<u32>,
    sweep: Vec<u32>,
    times: Vec<DelayValue>,
    pend: Vec<u64>,
    epoch: u64,
    primed: bool,
    events: u64,
    obs: FaultObservation,
    out_buf: Vec<DelayValue>,
}

const K_INPUT: u8 = 0;
const K_FA: u8 = 1;
const K_LA: u8 = 2;
const K_INH: u8 = 3;
const K_DLY: u8 = 4;
const K_FUSED: u8 = 5;

impl EventSim {
    /// Compiles a clean (fault-free) evaluator.
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_plan(circuit, &FaultPlan::new())
    }

    /// Compiles an evaluator with `plan` (addressed at `circuit`'s own
    /// node indices) baked in: drifted delay elements get their effective
    /// delta precomputed, edge faults apply after each affected node
    /// computes — exactly as `Circuit::evaluate_faulty` does.
    #[allow(clippy::too_many_lines)]
    pub fn with_plan(circuit: &Circuit, plan: &FaultPlan) -> Self {
        let nodes = circuit.nodes();
        let n = nodes.len();
        let mut kind = vec![K_INPUT; n];
        let mut input_pos = vec![0u32; n];
        let mut orig_fans: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut eff_delta = vec![0.0f64; n];
        let mut saturating = vec![false; n];
        let mut fault = vec![None; n];
        let mut input_nodes = Vec::new();

        let out_nodes: Vec<u32> = circuit
            .outputs_raw()
            .iter()
            .map(|(_, id)| id.index() as u32)
            .collect();
        let mut is_output = vec![false; n];
        for &o in &out_nodes {
            is_output[o as usize] = true;
        }

        let mut next_input = 0u32;
        for (idx, node) in nodes.iter().enumerate() {
            fault[idx] = plan.edge_fault(idx);
            match node {
                Node::Input { .. } => {
                    kind[idx] = K_INPUT;
                    input_pos[idx] = next_input;
                    next_input += 1;
                    input_nodes.push(idx as u32);
                }
                Node::Gate(Gate::FirstArrival(ins)) => {
                    kind[idx] = K_FA;
                    orig_fans[idx].extend(ins.iter().map(|i| i.index() as u32));
                }
                Node::Gate(Gate::LastArrival(ins)) => {
                    kind[idx] = K_LA;
                    orig_fans[idx].extend(ins.iter().map(|i| i.index() as u32));
                }
                Node::Gate(Gate::Inhibit { data, inhibitor }) => {
                    kind[idx] = K_INH;
                    orig_fans[idx].push(data.index() as u32);
                    orig_fans[idx].push(inhibitor.index() as u32);
                }
                Node::Gate(Gate::Delay { input, delta }) => {
                    kind[idx] = K_DLY;
                    orig_fans[idx].push(input.index() as u32);
                    match plan.delay_drift(idx) {
                        None => eff_delta[idx] = delta.max(0.0),
                        Some(fraction) => {
                            let factor = 1.0 + fraction;
                            if factor < 0.0 {
                                eff_delta[idx] = 0.0;
                                saturating[idx] = true;
                            } else {
                                eff_delta[idx] = (delta * factor).max(0.0);
                            }
                        }
                    }
                }
            }
        }

        // Delay-chain fusion (topological resolution): each fused delay
        // resolves to (ultimate kept source, ordered delta chain); every
        // kept node's fan-in reference resolves through fused delays.
        let fused: Vec<bool> = (0..n)
            .map(|idx| {
                kind[idx] == K_DLY && fault[idx].is_none() && !saturating[idx] && !is_output[idx]
            })
            .collect();
        let mut res_src = vec![0u32; n];
        let mut res_chain: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut fan_start = Vec::with_capacity(n + 1);
        let mut fan_src: Vec<u32> = Vec::new();
        let mut fan_chain_lo: Vec<u32> = Vec::new();
        let mut fan_chain_len: Vec<u32> = Vec::new();
        let mut chain_deltas: Vec<f64> = Vec::new();
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for idx in 0..n {
            fan_start.push(fan_src.len() as u32);
            if fused[idx] {
                let f = orig_fans[idx][0] as usize;
                if fused[f] {
                    res_src[idx] = res_src[f];
                    let mut chain = res_chain[f].clone();
                    chain.push(eff_delta[idx]);
                    res_chain[idx] = chain;
                } else {
                    res_src[idx] = f as u32;
                    res_chain[idx] = vec![eff_delta[idx]];
                }
                continue;
            }
            for &f in &orig_fans[idx] {
                let f = f as usize;
                let (src, chain): (u32, &[f64]) = if fused[f] {
                    (res_src[f], &res_chain[f])
                } else {
                    (f as u32, &[])
                };
                fan_src.push(src);
                fan_chain_lo.push(chain_deltas.len() as u32);
                fan_chain_len.push(chain.len() as u32);
                chain_deltas.extend_from_slice(chain);
                fanouts[src as usize].push(idx as u32);
            }
        }
        fan_start.push(fan_src.len() as u32);
        let kind: Vec<u8> = kind
            .into_iter()
            .enumerate()
            .map(|(idx, k)| if fused[idx] { K_FUSED } else { k })
            .collect();

        let mut fanout_start = Vec::with_capacity(n + 1);
        let mut fanout: Vec<u32> = Vec::new();
        for f in &mut fanouts {
            fanout_start.push(fanout.len() as u32);
            f.dedup();
            fanout.append(f);
        }
        fanout_start.push(fanout.len() as u32);

        // Builder circuits declare inputs first and in order, so seeding
        // usually reduces to comparing the input slice against the times
        // prefix; the general path handles interleaved or faulted inputs.
        let identity_seed = input_nodes
            .iter()
            .enumerate()
            .all(|(i, &idx)| idx as usize == i && fault[i].is_none());

        // Topological order over the nodes the evaluator computes — the
        // incremental pass walks this instead of every original node.
        let sweep: Vec<u32> = kind
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k != K_INPUT && k != K_FUSED)
            .map(|(idx, _)| idx as u32)
            .collect();

        EventSim {
            kind,
            input_pos,
            fan_start,
            fan_src,
            fan_chain_lo,
            fan_chain_len,
            chain_deltas,
            fanout_start,
            fanout,
            eff_delta,
            saturating,
            fault,
            input_nodes,
            identity_seed,
            out_nodes,
            sweep,
            times: vec![DelayValue::ZERO; n],
            pend: vec![0; n],
            epoch: 0,
            primed: false,
            events: 0,
            obs: FaultObservation::default(),
            out_buf: Vec::new(),
        }
    }

    /// Gates the evaluator actually computes: non-input nodes minus the
    /// fused delay elements riding along their consumers' fan-ins.
    pub fn gate_count(&self) -> usize {
        self.kind
            .iter()
            .filter(|&&k| k != K_INPUT && k != K_FUSED)
            .count()
    }

    /// Cumulative gate evaluations performed so far — the event count.
    /// Fused delay elements never count: their additions are absorbed
    /// into the consuming gate's single evaluation.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Drains the accumulated fault observation. Event-driven evaluation
    /// applies baked faults only when the affected node re-computes, so
    /// these counters tally *applications performed*, not the per-sweep
    /// totals a full-netlist evaluator reports; the output edges are
    /// bit-identical either way, and an empty plan observes nothing.
    pub fn take_observation(&mut self) -> FaultObservation {
        std::mem::take(&mut self.obs)
    }

    /// Clears persistent state: the next [`EventSim::eval`] performs a
    /// full sweep again.
    pub fn reset(&mut self) {
        self.primed = false;
        self.epoch = 0;
        self.events = 0;
        self.pend.iter_mut().for_each(|p| *p = 0);
        self.times.iter_mut().for_each(|t| *t = DelayValue::ZERO);
    }

    /// Reads fan-in slot `f`: the kept source edge with the fused delay
    /// chain applied in element order. A never source passes unchanged
    /// (and `+inf + d = +inf` keeps any further additions exact).
    #[inline]
    fn operand(&self, f: usize) -> DelayValue {
        let t = self.times[self.fan_src[f] as usize];
        let len = self.fan_chain_len[f] as usize;
        if len == 0 || t.is_never() {
            return t;
        }
        let lo = self.fan_chain_lo[f] as usize;
        let mut t = t;
        for &d in &self.chain_deltas[lo..lo + len] {
            t = t.delayed(d);
        }
        t
    }

    #[inline]
    fn compute(&mut self, idx: usize) -> DelayValue {
        let lo = self.fan_start[idx] as usize;
        let hi = self.fan_start[idx + 1] as usize;
        let v = match self.kind[idx] {
            K_FA => {
                let mut m = DelayValue::ZERO;
                for f in lo..hi {
                    let t = self.operand(f);
                    if t < m {
                        m = t;
                    }
                }
                m
            }
            K_LA => {
                let mut m = DelayValue::ZERO;
                let mut first = true;
                for f in lo..hi {
                    let t = self.operand(f);
                    if first || t > m {
                        m = t;
                        first = false;
                    }
                }
                m
            }
            K_INH => {
                let d = self.operand(lo);
                let i = self.operand(lo + 1);
                d.inhibited_by(i)
            }
            K_DLY => {
                let in_t = self.operand(lo);
                if in_t.is_never() {
                    in_t
                } else {
                    if self.saturating[idx] {
                        self.obs.saturations += 1;
                    }
                    in_t.delayed(self.eff_delta[idx])
                }
            }
            _ => unreachable!("inputs and fused delays are not computed"),
        };
        match self.fault[idx] {
            None => v,
            Some(f) => f.apply(v, &mut self.obs),
        }
    }

    fn eval_inner(&mut self, inputs: &[DelayValue]) -> Result<(), CircuitError> {
        if inputs.len() != self.input_nodes.len() {
            return Err(CircuitError::InputArity {
                expected: self.input_nodes.len(),
                got: inputs.len(),
            });
        }
        if !self.primed {
            for idx in 0..self.kind.len() {
                let v = match self.kind[idx] {
                    K_INPUT => {
                        let raw = inputs[self.input_pos[idx] as usize];
                        match self.fault[idx] {
                            None => raw,
                            Some(f) => f.apply(raw, &mut self.obs),
                        }
                    }
                    K_FUSED => continue,
                    _ => {
                        self.events += 1;
                        self.compute(idx)
                    }
                };
                self.times[idx] = v;
            }
            self.primed = true;
        } else {
            self.epoch += 1;
            let epoch = self.epoch;
            let mut dirty = false;
            if self.identity_seed {
                for (i, &raw) in inputs.iter().enumerate() {
                    if raw.delay().to_bits() != self.times[i].delay().to_bits() {
                        self.times[i] = raw;
                        dirty = true;
                        let lo = self.fanout_start[i] as usize;
                        let hi = self.fanout_start[i + 1] as usize;
                        for f in lo..hi {
                            self.pend[self.fanout[f] as usize] = epoch;
                        }
                    }
                }
            } else {
                for i in 0..self.input_nodes.len() {
                    let idx = self.input_nodes[i] as usize;
                    let raw = inputs[self.input_pos[idx] as usize];
                    let v = match self.fault[idx] {
                        None => raw,
                        Some(f) => f.apply(raw, &mut self.obs),
                    };
                    if v.delay().to_bits() != self.times[idx].delay().to_bits() {
                        self.times[idx] = v;
                        dirty = true;
                        let lo = self.fanout_start[idx] as usize;
                        let hi = self.fanout_start[idx + 1] as usize;
                        for f in lo..hi {
                            self.pend[self.fanout[f] as usize] = epoch;
                        }
                    }
                }
            }
            if !dirty {
                return Ok(());
            }
            for s in 0..self.sweep.len() {
                let idx = self.sweep[s] as usize;
                if self.pend[idx] != epoch {
                    continue;
                }
                self.events += 1;
                let v = self.compute(idx);
                if v.delay().to_bits() != self.times[idx].delay().to_bits() {
                    self.times[idx] = v;
                    let lo = self.fanout_start[idx] as usize;
                    let hi = self.fanout_start[idx + 1] as usize;
                    for f in lo..hi {
                        self.pend[self.fanout[f] as usize] = epoch;
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates the circuit with the given primary inputs (declaration
    /// order). Returns the output edges, declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    pub fn eval(&mut self, inputs: &[DelayValue]) -> Result<&[DelayValue], CircuitError> {
        self.eval_inner(inputs)?;
        self.out_buf.clear();
        self.out_buf
            .extend(self.out_nodes.iter().map(|&o| self.times[o as usize]));
        Ok(&self.out_buf)
    }

    /// Like [`EventSim::eval`] but returns only the first declared output
    /// edge — the allocation- and indirection-free path for the
    /// single-output cycle netlists the gate engine compiles.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputArity`] on input-count mismatch.
    #[inline]
    pub fn eval_one(&mut self, inputs: &[DelayValue]) -> Result<DelayValue, CircuitError> {
        self.eval_inner(inputs)?;
        Ok(self.times[self.out_nodes[0] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks;
    use crate::{CircuitBuilder, NodeId};

    fn dv(t: f64) -> DelayValue {
        DelayValue::from_delay(t)
    }

    /// Exact bit comparison of two edge vectors.
    fn assert_bits(a: &[DelayValue], b: &[DelayValue]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.delay().to_bits(),
                y.delay().to_bits(),
                "output {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    /// A small nLSE-tree-shaped circuit with a never leaf and a shared
    /// sub-DAG, mirroring what `GateEngine` compiles per rail-row.
    fn tree_with_never() -> (Circuit, Vec<Option<DelayValue>>) {
        let mut b = CircuitBuilder::new();
        let px0 = b.input("px0");
        let px1 = b.input("px1");
        let never = b.input("never");
        let w0 = b.delay(px0, 1.5);
        let w1 = b.delay(px1, 0.75);
        // Absent weight column: comparator stage against a never leaf.
        let stage0 = b.first_arrival(&[w0, never]);
        let cap0 = b.last_arrival(&[stage0, never]);
        let stage1 = b.first_arrival(&[w1, cap0]);
        let out = b.delay(stage1, 0.25);
        b.output("out", out);
        let c = b.build().unwrap();
        let consts = vec![None, None, Some(DelayValue::ZERO)];
        (c, consts)
    }

    #[test]
    fn never_feeds_fold_through_the_tree() {
        let (c, consts) = tree_with_never();
        let opt = optimize(&c, &consts).unwrap();
        // cap0 = la(stage0, never) = never; stage0 dies with it; stage1 =
        // fa(w1, never) = w1 (alias). Survivors: w1 and the final delay —
        // w0 becomes dead.
        assert!(opt.stats().gates_post < opt.stats().gates_pre);
        assert!(opt.stats().folded > 0, "{:?}", opt.stats());
        for trial in [[0.3, 0.9], [2.0, 0.0], [5.5, 5.5]] {
            let ins = [dv(trial[0]), dv(trial[1]), DelayValue::ZERO];
            let golden = c.evaluate(&ins).unwrap();
            let got = opt.evaluate(&ins).unwrap();
            assert_bits(&golden, &got);
        }
    }

    #[test]
    fn optimize_rejects_wrong_const_arity() {
        let (c, _) = tree_with_never();
        let err = optimize(&c, &[None, None]).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InputArity {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn hash_consing_merges_identical_subcircuits() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        // Two structurally identical cones feeding different outputs.
        let d1 = b.delay(x, 2.0);
        let f1 = b.first_arrival(&[d1, y]);
        let d2 = b.delay(x, 2.0);
        let f2 = b.first_arrival(&[d2, y]);
        let o1 = b.delay(f1, 0.5);
        let o2 = b.delay(f2, 1.5);
        b.output("a", o1);
        b.output("b", o2);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None, None]).unwrap();
        assert!(opt.stats().shared >= 2, "{:?}", opt.stats());
        // d1/d2 and f1/f2 each share one physical gate.
        assert_eq!(opt.map().gate(d1.index()), opt.map().gate(d2.index()));
        assert_eq!(opt.map().gate(f1.index()), opt.map().gate(f2.index()));
        let sibs = opt.map().siblings(f1.index());
        assert!(sibs.contains(&f1.index()) && sibs.contains(&f2.index()));
        let ins = [dv(1.0), dv(2.25)];
        assert_bits(&c.evaluate(&ins).unwrap(), &opt.evaluate(&ins).unwrap());
    }

    #[test]
    fn commutative_fanin_order_still_merges() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f1 = b.first_arrival(&[x, y]);
        let f2 = b.first_arrival(&[y, x]);
        let o = b.last_arrival(&[f1, f2]);
        b.output("o", o);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None, None]).unwrap();
        assert_eq!(opt.map().gate(f1.index()), opt.map().gate(f2.index()));
        // la over one merged gate collapses to an alias of it.
        assert_eq!(opt.map().gate(o.index()), opt.map().gate(f1.index()));
        let ins = [dv(0.25), dv(3.0)];
        assert_bits(&c.evaluate(&ins).unwrap(), &opt.evaluate(&ins).unwrap());
    }

    #[test]
    fn dead_gates_are_eliminated() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let used = b.delay(x, 1.0);
        let dead = b.delay(x, 9.0);
        let _deader = b.first_arrival(&[dead, x]);
        b.output("o", used);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None]).unwrap();
        assert_eq!(opt.stats().dead, 2, "{:?}", opt.stats());
        assert_eq!(opt.stats().gates_post, 1);
        assert!(matches!(opt.map().resolve(dead.index()), Resolution::Dead));
    }

    #[test]
    fn const_outputs_are_spliced_in_order() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let k = b.input("k");
        let kd = b.delay(k, 1.0);
        let xd = b.delay(x, 0.5);
        b.output("konst", kd);
        b.output("dyn", xd);
        b.output("konst2", kd);
        let c = b.build().unwrap();
        let consts = vec![None, Some(dv(2.0))];
        let opt = optimize(&c, &consts).unwrap();
        assert_eq!(opt.const_output(0), Some(dv(3.0)));
        assert_eq!(opt.const_output(1), None);
        assert_eq!(opt.const_output(2), Some(dv(3.0)));
        let ins = [dv(4.0), dv(2.0)];
        assert_bits(&c.evaluate(&ins).unwrap(), &opt.evaluate(&ins).unwrap());
    }

    #[test]
    fn known_finite_operand_is_materialized_for_dynamic_consumer() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let boundary = b.input("boundary");
        let bd = b.delay(boundary, 0.5);
        // inhibit(dyn, known-finite): the known cone must survive as
        // hardware so the consumer sees the same edge.
        let g = b.inhibit(x, bd);
        b.output("o", g);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None, Some(dv(3.0))]).unwrap();
        for t in [1.0, 3.4999, 3.5, 6.0] {
            let ins = [dv(t), dv(3.0)];
            assert_bits(&c.evaluate(&ins).unwrap(), &opt.evaluate(&ins).unwrap());
        }
    }

    #[test]
    fn zero_delta_delay_is_preserved_for_negative_zero() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let d = b.delay(x, 0.0);
        b.output("o", d);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None]).unwrap();
        // -0.0 + 0.0 = +0.0: the element is not an identity wire under
        // total_cmp, so it must survive.
        assert_eq!(opt.stats().gates_post, 1);
        let ins = [dv(-0.0)];
        assert_bits(&c.evaluate(&ins).unwrap(), &opt.evaluate(&ins).unwrap());
    }

    #[test]
    fn lower_plan_rekeys_faults_onto_shared_gates() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let d1 = b.delay(x, 2.0);
        let d2 = b.delay(x, 2.0);
        let f = b.first_arrival(&[d1, y]);
        let g = b.last_arrival(&[d2, y]);
        b.output("f", f);
        b.output("g", g);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None, None]).unwrap();
        let shared = opt.map().gate(d1.index()).unwrap();
        assert_eq!(opt.map().gate(d2.index()), Some(shared));

        let mut plan = FaultPlan::new();
        plan.set_edge_fault(d1.index(), EdgeFault::StuckAtZero);
        let lowered = opt.map().lower_plan(&plan).unwrap();
        assert_eq!(lowered.edge_fault(shared), Some(EdgeFault::StuckAtZero));

        // Same fault via the other sibling: idempotent.
        plan.set_edge_fault(d2.index(), EdgeFault::StuckAtZero);
        assert!(opt.map().lower_plan(&plan).is_ok());

        // Conflicting fault on the shared gate: rejected.
        plan.set_edge_fault(d2.index(), EdgeFault::StuckAtNever);
        assert_eq!(
            opt.map().lower_plan(&plan).unwrap_err(),
            OptError::FaultConflict(shared)
        );
    }

    #[test]
    fn lower_plan_rejects_faults_on_folded_gates_and_drops_dead_ones() {
        let (c, consts) = tree_with_never();
        let opt = optimize(&c, &consts).unwrap();
        // Find a node that folded to a constant (cap0 = la(..never) at
        // index 6 in construction order) and one that died.
        let folded = (0..c.node_count())
            .find(|&i| matches!(opt.map().resolve(i), Resolution::Const(_)))
            .unwrap();
        let dead = (0..c.node_count())
            .find(|&i| matches!(opt.map().resolve(i), Resolution::Dead))
            .unwrap();

        let mut plan = FaultPlan::new();
        plan.set_edge_fault(folded, EdgeFault::StuckAtZero);
        assert_eq!(
            opt.map().lower_plan(&plan).unwrap_err(),
            OptError::FaultOnFolded(folded)
        );

        let mut plan = FaultPlan::new();
        plan.set_edge_fault(dead, EdgeFault::StuckAtNever);
        let lowered = opt.map().lower_plan(&plan).unwrap();
        assert!(lowered.is_empty());

        // Drift on a never-folded site is physically meaningless: safe
        // drop rather than error.
        let mut plan = FaultPlan::new();
        plan.set_delay_drift(folded, 0.5);
        if let Resolution::Const(v) = opt.map().resolve(folded) {
            if v.is_never() {
                assert!(opt.map().lower_plan(&plan).unwrap().is_empty());
            }
        }
    }

    #[test]
    fn shared_gate_fault_matches_mirrored_golden_reference() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let d1 = b.delay(x, 2.0);
        let d2 = b.delay(x, 2.0);
        let f = b.first_arrival(&[d1, y]);
        let g = b.last_arrival(&[d2, y]);
        let o1 = b.delay(f, 0.25);
        let o2 = b.delay(g, 0.75);
        b.output("f", o1);
        b.output("g", o2);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None, None]).unwrap();

        for fault in [
            EdgeFault::StuckAtNever,
            EdgeFault::StuckAtZero,
            EdgeFault::DropEvent,
            EdgeFault::SpuriousEarly(0.5),
        ] {
            let mut plan = FaultPlan::new();
            plan.set_edge_fault(d1.index(), fault);
            plan.set_delay_drift(o1.index(), 0.25);
            // The physical gate is shared: the golden reference must
            // fault every logical copy.
            let mirrored = opt.map().mirror_plan(&c, &plan);
            assert!(mirrored.edge_fault(d2.index()).is_some());
            let lowered = opt.map().lower_plan(&plan).unwrap();
            for trial in [[0.5, 1.0], [3.0, 0.1], [2.0, 2.0]] {
                let ins = [dv(trial[0]), dv(trial[1])];
                let (golden, _) = c
                    .evaluate_faulty(&ins, &mut crate::NoNoise, &mirrored)
                    .unwrap();
                let (got, _) = opt
                    .circuit()
                    .evaluate_faulty(&ins, &mut crate::NoNoise, &lowered)
                    .unwrap();
                assert_bits(&golden, &opt.splice_outputs(&got));
            }
        }
    }

    #[test]
    fn mirror_plan_applies_once_along_alias_chains() {
        // fa(x, never) aliases x's delay; faulting the aliased site must
        // not double-apply a non-idempotent fault through the chain.
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let never = b.input("never");
        let d = b.delay(x, 1.0);
        let alias = b.first_arrival(&[d, never]);
        let out = b.delay(alias, 0.5);
        b.output("o", out);
        let c = b.build().unwrap();
        let opt = optimize(&c, &[None, Some(DelayValue::ZERO)]).unwrap();
        // d and alias share one physical gate.
        assert_eq!(opt.map().gate(d.index()), opt.map().gate(alias.index()));

        let mut plan = FaultPlan::new();
        plan.set_edge_fault(alias.index(), EdgeFault::SpuriousEarly(0.4));
        let mirrored = opt.map().mirror_plan(&c, &plan);
        // Only the upstream sibling carries the fault.
        assert_eq!(
            mirrored.edge_fault(d.index()),
            Some(EdgeFault::SpuriousEarly(0.4))
        );
        assert_eq!(mirrored.edge_fault(alias.index()), None);

        let lowered = opt.map().lower_plan(&plan).unwrap();
        let ins = [dv(2.0), DelayValue::ZERO];
        let (golden, _) = c
            .evaluate_faulty(&ins, &mut crate::NoNoise, &mirrored)
            .unwrap();
        let (got, _) = opt
            .circuit()
            .evaluate_faulty(&ins, &mut crate::NoNoise, &lowered)
            .unwrap();
        assert_bits(&golden, &opt.splice_outputs(&got));
    }

    #[test]
    fn event_sim_matches_full_sweep_bit_for_bit() {
        let (c, consts) = tree_with_never();
        let opt = optimize(&c, &consts).unwrap();
        let mut sim = opt.event_sim();
        // A pixel stream with heavy locality (repeated values) and a few
        // jumps, as a rolling shutter produces.
        let stream = [
            [0.5, 0.5],
            [0.5, 0.5],
            [0.5, 0.9],
            [0.5, 0.9],
            [3.0, 0.9],
            [3.0, 0.9],
            [3.0, 0.9],
        ];
        for px in stream {
            let ins = [dv(px[0]), dv(px[1]), DelayValue::ZERO];
            let golden = c.evaluate(&ins).unwrap();
            let got = opt.splice_outputs(sim.eval(&ins).unwrap());
            assert_bits(&golden, &got);
        }
        // Locality means far fewer events than gates × evaluations.
        let full_sweep = (sim.gate_count() as u64) * (stream.len() as u64);
        assert!(
            sim.events() < full_sweep,
            "events {} vs full sweep {}",
            sim.events(),
            full_sweep
        );
    }

    #[test]
    fn event_sim_with_plan_matches_faulty_sweep() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let d = b.delay(x, 2.0);
        let f = b.first_arrival(&[d, y]);
        let i = b.inhibit(f, y);
        let o = b.delay(i, 0.5);
        b.output("o", o);
        let c = b.build().unwrap();

        let mut plan = FaultPlan::new();
        plan.set_edge_fault(d.index(), EdgeFault::SpuriousEarly(0.3));
        plan.set_edge_fault(x.index(), EdgeFault::StuckAtZero);
        plan.set_delay_drift(o.index(), -2.0); // saturating drift

        let mut sim = EventSim::with_plan(&c, &plan);
        for trial in [[1.0, 4.0], [1.0, 4.0], [0.2, 0.1], [5.0, 5.0]] {
            let ins = [dv(trial[0]), dv(trial[1])];
            let (golden, _) = c.evaluate_faulty(&ins, &mut crate::NoNoise, &plan).unwrap();
            let got = sim.eval(&ins).unwrap().to_vec();
            assert_bits(&golden, &got);
        }
        // Faults were applied at least once.
        let obs = sim.take_observation();
        assert!(obs.edges_faulted > 0);
        assert!(obs.saturations > 0);
        // Drained.
        assert_eq!(sim.take_observation(), FaultObservation::default());
    }

    #[test]
    fn event_sim_reset_reprimes() {
        let (c, consts) = tree_with_never();
        let opt = optimize(&c, &consts).unwrap();
        let mut sim = opt.event_sim();
        let ins = [dv(1.0), dv(2.0), DelayValue::ZERO];
        let first = opt.splice_outputs(sim.eval(&ins).unwrap());
        sim.reset();
        assert_eq!(sim.events(), 0);
        let again = opt.splice_outputs(sim.eval(&ins).unwrap());
        assert_bits(&first, &again);
    }

    #[test]
    fn event_sim_rejects_wrong_arity() {
        let (c, consts) = tree_with_never();
        let opt = optimize(&c, &consts).unwrap();
        let mut sim = opt.event_sim();
        assert!(matches!(
            sim.eval(&[dv(1.0)]),
            Err(CircuitError::InputArity {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn nlse_tree_block_optimizes_and_stays_exact() {
        // The real Fig 6a building block, as GateEngine compiles it.
        let mut b = CircuitBuilder::new();
        let leaves: Vec<NodeId> = (0..4).map(|i| b.input(format!("in{i}"))).collect();
        let never = b.input("never");
        let terms: &[blocks::TermPair] = &[(0.0, 0.0), (1.0, 1.0)];
        let k = blocks::required_shift(terms);
        let tree =
            blocks::build_nlse_tree(&mut b, &[leaves[0], never, leaves[1], leaves[2]], terms, k);
        b.output("out", tree.node);
        let c = b.build().unwrap();
        let mut consts = vec![None; 5];
        consts[4] = Some(DelayValue::ZERO);
        let opt = optimize(&c, &consts).unwrap();
        assert!(
            opt.stats().gates_post < opt.stats().gates_pre,
            "{:?}",
            opt.stats()
        );
        for trial in [
            [0.1, 0.2, 0.3, 0.4],
            [2.0, 2.0, 2.0, 2.0],
            [0.0, 5.0, 1.0, 0.5],
        ] {
            let ins: Vec<DelayValue> = trial
                .iter()
                .map(|&t| dv(t))
                .chain([DelayValue::ZERO])
                .collect();
            let golden = c.evaluate(&ins).unwrap();
            let got = opt.evaluate(&ins).unwrap();
            assert_bits(&golden, &got);
        }
    }

    #[test]
    fn structural_equality_and_fingerprints_dedup_identical_rows() {
        let (c1, k1) = tree_with_never();
        let (c2, k2) = tree_with_never();
        let o1 = optimize(&c1, &k1).unwrap();
        let o2 = optimize(&c2, &k2).unwrap();
        assert_eq!(o1.fingerprint(), o2.fingerprint());
        assert!(o1.structurally_equal(&o2));

        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let d = b.delay(x, 7.0);
        b.output("o", d);
        let c3 = b.build().unwrap();
        let o3 = optimize(&c3, &[None]).unwrap();
        assert!(!o1.structurally_equal(&o3));
    }
}
