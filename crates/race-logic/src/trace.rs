//! Edge-time tracing: capture when every node of a circuit fires and
//! render the result as a text waveform — the temporal equivalent of a
//! logic-analyzer view, for debugging netlists.

use std::sync::Arc;

use ta_delay_space::DelayValue;

/// The firing record of one evaluation: one entry per node, in
/// topological (construction) order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

/// One node's firing record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Node label: input name, or `fa#k`/`la#k`/`inh#k`/`dly#k(+Δ)`.
    /// Interned per circuit — repeated traced evaluations share one
    /// allocation per node instead of reformatting every label.
    pub label: Arc<str>,
    /// The node's edge time ([`DelayValue::ZERO`] = never fired).
    pub time: DelayValue,
}

impl Trace {
    pub(crate) fn new(entries: Vec<TraceEntry>) -> Self {
        Trace { entries }
    }

    /// All entries in topological order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The latest finite edge time in the trace (0 if nothing fired).
    pub fn horizon(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| !e.time.is_never())
            .map(|e| e.time.delay())
            .fold(0.0_f64, f64::max)
    }

    /// Exports the trace as a Value Change Dump, viewable in GTKWave or
    /// any other waveform viewer: one single-bit wire per node, rising at
    /// the node's edge time. `ns_per_unit` converts delay units to real
    /// time (the architecture's unit scale); edge times are rounded to
    /// the nearest picosecond, and edges the reference-frame algebra
    /// placed before t=0 clamp to 0. Nodes that never fired stay low for
    /// the whole dump.
    pub fn to_vcd(&self, ns_per_unit: f64) -> String {
        let mut vcd = ta_telemetry::VcdBuilder::new("race_logic");
        for e in &self.entries {
            let rise_ps = (!e.time.is_never()).then(|| {
                let ps = e.time.delay() * ns_per_unit * 1000.0;
                ps.max(0.0).round() as u64
            });
            vcd.wire(&e.label, rise_ps);
        }
        vcd.render()
    }

    /// Renders an ASCII waveform: one row per node, `_` before the edge,
    /// `|` at the edge, `▔` after it, and `never` for silent nodes.
    /// `columns` sets the time-axis resolution.
    ///
    /// # Panics
    ///
    /// Panics if `columns == 0`.
    pub fn render(&self, columns: usize) -> String {
        assert!(columns > 0, "need at least one column");
        let horizon = self.horizon().max(1e-12);
        let label_w = self
            .entries
            .iter()
            .map(|e| e.label.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "{:label_w$}  0{}{:.3}u\n",
            "",
            " ".repeat(columns.saturating_sub(6)),
            horizon
        ));
        for e in &self.entries {
            out.push_str(&format!("{:label_w$}  ", e.label));
            if e.time.is_never() {
                out.push_str(&"_".repeat(columns));
                out.push_str("  (never)");
            } else {
                // Edges at negative times (values > 1) clamp to column 0.
                let pos = ((e.time.delay() / horizon) * (columns - 1) as f64)
                    .round()
                    .clamp(0.0, (columns - 1) as f64) as usize;
                out.push_str(&"_".repeat(pos));
                out.push('|');
                out.push_str(&"▔".repeat(columns - 1 - pos));
                out.push_str(&format!("  ({:.3}u)", e.time.delay()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    #[test]
    fn traced_evaluation_records_every_node() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        let d = b.delay(f, 2.0);
        let g = b.inhibit(d, y);
        b.output("out", g);
        let c = b.build().unwrap();
        let (outs, trace) = c
            .evaluate_traced(&[DelayValue::from_delay(1.0), DelayValue::from_delay(5.0)])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(trace.entries().len(), 5);
        assert_eq!(trace.entries()[0].label.as_ref(), "x");
        assert_eq!(trace.entries()[2].time, DelayValue::from_delay(1.0)); // fa
        assert_eq!(trace.entries()[3].time, DelayValue::from_delay(3.0)); // delay
                                                                          // The horizon is the latest finite edge anywhere — here the `y`
                                                                          // input at 5.0, which outlives the output path.
        assert_eq!(trace.horizon(), 5.0);
    }

    #[test]
    fn waveform_marks_edges_and_silence() {
        let mut b = CircuitBuilder::new();
        let x = b.input("sig");
        let i = b.input("gate");
        let blocked = b.inhibit(i, x); // gate arrives after sig ⇒ never
        b.output("o", blocked);
        let c = b.build().unwrap();
        let (_, trace) = c
            .evaluate_traced(&[DelayValue::from_delay(0.5), DelayValue::from_delay(4.0)])
            .unwrap();
        let w = trace.render(20);
        assert!(w.contains('|'), "waveform must mark firing edges:\n{w}");
        assert!(w.contains("(never)"), "silent nodes must be flagged:\n{w}");
        assert!(w.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_panics() {
        Trace::new(vec![]).render(0);
    }

    #[test]
    fn vcd_export_parses_back_with_ordered_timestamps() {
        let mut b = CircuitBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let f = b.first_arrival(&[x, y]);
        let d = b.delay(f, 2.0);
        let g = b.inhibit(y, d); // d (3.0) arrives after y (5.0)? no: gate=d
        b.output("out", g);
        let c = b.build().unwrap();
        let (_, trace) = c
            .evaluate_traced(&[DelayValue::from_delay(1.0), DelayValue::from_delay(5.0)])
            .unwrap();
        let vcd = trace.to_vcd(1.0); // 1 ns per unit → 1000 ps per unit

        // Header structure a VCD consumer requires.
        assert!(vcd.contains("$timescale 1ps $end"), "{vcd}");
        assert!(vcd.contains("$scope module race_logic $end"), "{vcd}");
        assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
        assert!(vcd.contains("$dumpvars"), "{vcd}");
        // One wire declaration per traced node.
        let vars = vcd
            .lines()
            .filter(|l| l.starts_with("$var wire 1 "))
            .count();
        assert_eq!(vars, trace.entries().len());
        // Every declared id is used by exactly the change blocks, and the
        // timestamps come out strictly ascending.
        let stamps: Vec<u64> = vcd
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().unwrap())
            .collect();
        assert!(!stamps.is_empty());
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
        // x fires at 1.0 units = 1000 ps.
        assert!(stamps.contains(&1000), "{stamps:?}");
    }

    #[test]
    fn vcd_clamps_negative_edges_and_skips_silent_nodes() {
        let entries = vec![
            TraceEntry {
                label: "early".into(),
                time: DelayValue::from_delay(-0.5),
            },
            TraceEntry {
                label: "silent".into(),
                time: DelayValue::ZERO,
            },
        ];
        let vcd = Trace::new(entries).to_vcd(1.0);
        // The negative edge clamps to t=0, which lands in $dumpvars as an
        // initial high; the silent node stays low and contributes no
        // change block.
        assert!(vcd.contains("$dumpvars"), "{vcd}");
        let stamps: Vec<u64> = vcd
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().unwrap())
            .collect();
        assert!(stamps.is_empty(), "{vcd}");
    }
}
