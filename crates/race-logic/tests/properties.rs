//! Property-based tests of temporal-circuit invariants.
//!
//! The key algebraic facts race logic computes with:
//!
//! * circuits built from `fa`/`la`/`delay` are **monotone** (delaying an
//!   input can never advance an output) and **time-invariant** (shifting
//!   all inputs by δ shifts all outputs by δ — the reference-frame
//!   property the recurrence architecture exploits);
//! * `inhibit` breaks global monotonicity (a later inhibitor lets data
//!   through) but stays monotone in its *data* input.

use proptest::prelude::*;
use ta_delay_space::DelayValue;
use ta_race_logic::{blocks, CircuitBuilder, NodeId};

/// A recipe for a random 3-input fa/la/delay circuit.
#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, usize, usize, f64)>, // (kind, src_a, src_b, delay)
}

fn recipe() -> impl Strategy<Value = Recipe> {
    prop::collection::vec((0u8..3, 0usize..64, 0usize..64, 0.0..3.0f64), 1..12)
        .prop_map(|ops| Recipe { ops })
}

/// Builds the circuit described by a recipe on top of 3 inputs; node
/// indices in the recipe wrap over currently available nodes.
fn build(recipe: &Recipe) -> (ta_race_logic::Circuit, usize) {
    let mut b = CircuitBuilder::new();
    let mut nodes: Vec<NodeId> = (0..3).map(|i| b.input(format!("i{i}"))).collect();
    for &(kind, a, bb, d) in &recipe.ops {
        let na = nodes[a % nodes.len()];
        let nb = nodes[bb % nodes.len()];
        let out = match kind {
            0 => b.first_arrival(&[na, nb]),
            1 => b.last_arrival(&[na, nb]),
            _ => b.delay(na, d),
        };
        nodes.push(out);
    }
    let last = *nodes.last().expect("at least the inputs exist");
    b.output("out", last);
    (b.build().expect("recipe circuits are valid"), 3)
}

fn times(ts: [f64; 3]) -> Vec<DelayValue> {
    ts.iter().map(|&t| DelayValue::from_delay(t)).collect()
}

proptest! {
    #[test]
    fn monotone_circuits_never_advance_outputs(
        r in recipe(),
        t in [0.0..5.0f64, 0.0..5.0f64, 0.0..5.0f64],
        which in 0usize..3,
        bump in 0.0..4.0f64,
    ) {
        let (c, _) = build(&r);
        let base = c.evaluate(&times(t)).unwrap()[0];
        let mut later = t;
        later[which] += bump;
        let bumped = c.evaluate(&times(later)).unwrap()[0];
        prop_assert!(bumped >= base, "{bumped:?} earlier than {base:?}");
    }

    #[test]
    fn fa_la_delay_circuits_are_time_invariant(
        r in recipe(),
        t in [0.0..5.0f64, 0.0..5.0f64, 0.0..5.0f64],
        shift in 0.0..10.0f64,
    ) {
        let (c, _) = build(&r);
        let base = c.evaluate(&times(t)).unwrap()[0];
        let shifted = c
            .evaluate(&times([t[0] + shift, t[1] + shift, t[2] + shift]))
            .unwrap()[0];
        prop_assert!(
            (shifted.delay() - base.delay() - shift).abs() < 1e-9,
            "shift leaked: {} vs {} + {shift}",
            shifted.delay(),
            base.delay()
        );
    }

    #[test]
    fn inhibit_is_monotone_in_data(
        data in 0.0..5.0f64,
        inhibitor in 0.0..5.0f64,
        bump in 0.0..4.0f64,
    ) {
        let d = DelayValue::from_delay(data);
        let i = DelayValue::from_delay(inhibitor);
        let base = d.inhibited_by(i);
        let later = DelayValue::from_delay(data + bump).inhibited_by(i);
        prop_assert!(later >= base);
    }

    #[test]
    fn nlse_block_is_shift_equivariant_and_symmetric(
        x in 0.0..6.0f64,
        y in 0.0..6.0f64,
        shift in 0.0..5.0f64,
        terms in 1usize..6,
    ) {
        let approx = ta_approx::NlseApprox::fit(terms);
        let k = approx.required_shift();
        let c = blocks::nlse_circuit(approx.terms(), k, true).unwrap();
        let ev = |a: f64, b: f64| {
            c.evaluate(&[DelayValue::from_delay(a), DelayValue::from_delay(b)])
                .unwrap()[0]
                .delay()
        };
        // Symmetric (the comparator sorts).
        prop_assert!((ev(x, y) - ev(y, x)).abs() < 1e-12);
        // Shift-equivariant: the reference-frame identity in gates.
        prop_assert!((ev(x + shift, y + shift) - ev(x, y) - shift).abs() < 1e-9);
    }

    #[test]
    fn nlse_block_bounded_by_min_plus_shift(
        x in 0.0..6.0f64,
        y in 0.0..6.0f64,
        terms in 1usize..6,
    ) {
        let approx = ta_approx::NlseApprox::fit(terms);
        let k = approx.required_shift();
        let c = blocks::nlse_circuit(approx.terms(), k, true).unwrap();
        let out = c
            .evaluate(&[DelayValue::from_delay(x), DelayValue::from_delay(y)])
            .unwrap()[0]
            .delay();
        prop_assert!(out <= x.min(y) + k + 1e-12);
        prop_assert!(out >= x.min(y) + k - 2.0_f64.ln() - 1e-12);
    }
}
