//! The min-of-max nLSE approximation (Eq. 6) and its curve fit.

use std::fmt;

use ta_delay_space::DelayValue;

use crate::{nlse_slice_exact, tables, TermPair};

/// Slice domain used for fitting and error reporting. Beyond `t = 4` the
/// exact curve is within `e^-8 ≈ 3·10^-4` of the plain-min bound, which the
/// approximation reproduces exactly, so a wider domain adds nothing.
const FIT_DOMAIN: f64 = 4.0;
/// Grid resolution for fitting objectives.
const FIT_GRID: usize = 321;

/// A fitted min-of-max approximation of delay-space addition.
///
/// `eval` computes `min(x', y', max(x'+C_i, y'+D_i), …)` with the operands
/// pre-ordered by a (modelled) temporal comparator, so each term is stored
/// once: the `C_i` apply to the *later* edge and the `D_i` to the
/// *earlier* edge, matching the paper's "first operand always greater"
/// convention (§2.1).
///
/// ```
/// use ta_approx::NlseApprox;
/// let a = NlseApprox::fit(4);
/// assert_eq!(a.num_terms(), 4);
/// // Worst-case slice error shrinks as terms are added (Fig 11a).
/// assert!(NlseApprox::fit(8).max_slice_error() < a.max_slice_error());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NlseApprox {
    terms: Vec<TermPair>,
}

impl NlseApprox {
    /// Fits `n ≥ 1` max-terms to the representative slice and returns the
    /// approximation. Results are deterministic and cached process-wide, so
    /// repeated calls are cheap.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fit(n: usize) -> Self {
        assert!(n >= 1, "at least one max-term is required");
        tables::cached_nlse(n, || NlseApprox {
            terms: fit_terms(n),
        })
    }

    /// Builds an approximation from explicit constants (e.g. for testing
    /// hand-derived term sets such as Fig 3's `C_0 = D_0 = -1`).
    pub fn from_terms(terms: Vec<TermPair>) -> Self {
        assert!(!terms.is_empty(), "at least one max-term is required");
        NlseApprox { terms }
    }

    /// The fitted `(C_i, D_i)` constants.
    pub fn terms(&self) -> &[TermPair] {
        &self.terms
    }

    /// Number of max-terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The minimum time shift `K` that makes every constant realisable as a
    /// physical delay (§2.3).
    pub fn required_shift(&self) -> f64 {
        self.terms
            .iter()
            .flat_map(|&(c, d)| [c, d])
            .fold(0.0_f64, |k, v| k.max(-v))
    }

    /// Evaluates the approximation on two delay-space operands.
    ///
    /// Operand order does not matter: the (ideal) comparator sorts the
    /// edges first.
    pub fn eval(&self, x: DelayValue, y: DelayValue) -> DelayValue {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        if lo.is_never() {
            return DelayValue::ZERO; // both operands are zero
        }
        let mut best = lo;
        for &(c, d) in &self.terms {
            let term = hi.delayed(c).max(lo.delayed(d));
            best = best.min(term);
        }
        best
    }

    /// Batch [`eval`] over rows of raw delays, dispatched through the
    /// SIMD tiers of `ta-simd`.
    ///
    /// Computes `out[i] = eval(a[i] ⊕ au, b[i] ⊕ bu) + k`, where `⊕` is
    /// the tree balance add (skipped when the unit count is exactly
    /// `0.0`, preserving `-0.0`) and `k` is an unconditional latency add
    /// (the `NlseUnit::eval_ideal` completion-detect shift; pass `0.0`
    /// for plain `eval`). Bit-for-bit identical to the scalar
    /// composition on every tier — including the inherent
    /// `first_arrival`/`last_arrival` tie semantics and the never
    /// pass-through, which need no special casing because `+∞`
    /// propagates identically through the selects.
    ///
    /// [`eval`]: NlseApprox::eval
    ///
    /// # Panics
    ///
    /// If `a`, `b` and `out` differ in length.
    pub fn eval_rows(&self, a: &[f64], au: f64, b: &[f64], bu: f64, k: f64, out: &mut [f64]) {
        ta_simd::nlse_approx_rows(a, au, b, bu, &self.terms, k, out);
    }

    /// In-place accumulate form of [`eval_rows`]: `acc[i] =
    /// eval(x[i] ⊕ xu, acc[i] ⊕ acc_units) + k` — the planned executor's
    /// spine combine step.
    ///
    /// [`eval_rows`]: NlseApprox::eval_rows
    ///
    /// # Panics
    ///
    /// If `x` and `acc` differ in length.
    pub fn eval_rows_inplace(&self, x: &[f64], xu: f64, acc: &mut [f64], acc_units: f64, k: f64) {
        ta_simd::nlse_approx_rows_inplace(x, xu, acc, acc_units, &self.terms, k);
    }

    /// Evaluates the one-input representative slice `Ã(t) ≈ nLSE(t, -t)`
    /// (symmetric in `t`).
    pub fn eval_slice(&self, t: f64) -> f64 {
        let t = t.abs();
        let mut best = -t;
        for &(c, d) in &self.terms {
            best = best.min((t + c).max(-t + d));
        }
        best
    }

    /// Maximum absolute slice error over the fitting domain `[0, 4]`,
    /// in delay units.
    pub fn max_slice_error(&self) -> f64 {
        slice_errors(self).0
    }

    /// Root-mean-square slice error over the fitting domain, in delay
    /// units.
    pub fn rms_slice_error(&self) -> f64 {
        slice_errors(self).1
    }
}

impl fmt::Display for NlseApprox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nLSE~[{} max-terms, K={:.3}]",
            self.terms.len(),
            self.required_shift()
        )
    }
}

fn slice_errors(a: &NlseApprox) -> (f64, f64) {
    let mut max_err = 0.0_f64;
    let mut sq = 0.0_f64;
    for i in 0..FIT_GRID {
        let t = FIT_DOMAIN * i as f64 / (FIT_GRID - 1) as f64;
        let e = a.eval_slice(t) - nlse_slice_exact(t);
        max_err = max_err.max(e.abs());
        sq += e * e;
    }
    (max_err, (sq / FIT_GRID as f64).sqrt())
}

/// Deterministic Chebyshev curve fit of `n` max-terms on the slice (the
/// Pyomo+KNITRO substitute).
///
/// The min-of-max envelope on the slice is a zigzag of slope-`±1`
/// segments: each term's `-t + D_i` arm descends into a valley at the
/// term's vertex and its `t + C_i` arm ascends out of it, until the plain
/// `min(x', y')` baseline takes over. For the exact curve
/// `g(t) = -ln(2 cosh t)` both arm-error functions are analytically
/// invertible:
///
/// * descending arm `-t + D`: error `D + ln(1 + e^{-2t})` (decreasing),
/// * ascending arm `t + C`:  error `C + ln(1 + e^{+2t})` (increasing),
///
/// so for a given error budget `ε` the equioscillating zigzag
/// (+ε at peaks, −ε at valleys) can be constructed left-to-right in closed
/// form. The minimal feasible `ε` for `n` valleys is found by bisection,
/// yielding the minimax-optimal constants directly — no local search, no
/// local minima.
fn fit_terms(n: usize) -> Vec<TermPair> {
    // Feasibility: does an equioscillating zigzag with error ε terminate
    // onto the baseline within at most n valleys?
    let construct = |eps: f64| -> Option<Vec<TermPair>> {
        let mut terms = Vec::with_capacity(n);
        // First descending arm starts at the boundary peak (0, g(0)+ε).
        let mut d = nlse_slice_exact(0.0) + eps; // D_1 = -ln2 + ε
        for _ in 0..n {
            // Valley: descending error D + ln(1+e^{-2t}) hits -ε.
            let arg = (-d - eps).exp() - 1.0;
            if arg <= 0.0 {
                // The descending arm never dips to -ε: its error stays in
                // (D, +ε] ⊆ (-ε, +ε] forever, so the curve is covered by a
                // final term whose vertex sits far out on the tail. Any
                // C with ln(1 + e^C) ≤ ε keeps the baseline handoff inside
                // the band.
                let c_far = ((eps).exp() - 1.0).ln() - 1e-9;
                terms.push((c_far, d));
                return Some(terms);
            }
            let t_v = -0.5 * arg.ln();
            let c = d - 2.0 * t_v; // ascending arm through the valley
            terms.push((c, d));
            // Terminate if the ascending arm hands off to the baseline
            // within the band: residual ln(1 + e^{C}) ≤ ε.
            if c.exp().ln_1p() <= eps {
                return Some(terms);
            }
            // Peak: ascending error C + ln(1+e^{2t}) hits +ε.
            let parg = (eps - c).exp() - 1.0;
            debug_assert!(parg > 0.0);
            let t_p = 0.5 * parg.ln();
            d = c + 2.0 * t_p; // next descending arm through the peak
        }
        // Ran out of terms (or broke early without handoff): check whether
        // what we built already covers the curve.
        match terms.last() {
            Some(&(c, _)) if c.exp().ln_1p() <= eps => Some(terms),
            _ => None,
        }
    };

    // Bisection on ε: feasibility is monotone on (0, ln2/2). The upper
    // bound is just below ln2/2, where the very first descending arm only
    // exits the ±ε band far out on the tail — always feasible with one
    // valley.
    let mut lo = 1e-9;
    let mut hi = 0.5 * 2.0_f64.ln() - 1e-9;
    debug_assert!(construct(hi).is_some(), "upper bound must be feasible");
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if construct(mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut terms = construct(hi).expect("bisection kept hi feasible");
    // If termination happened with fewer valleys than requested (possible
    // only at degenerate ε), pad by splitting the last term — keeps the
    // requested hardware shape without changing the function materially.
    while terms.len() < n {
        let &(c, d) = terms.last().expect("at least one term");
        terms.push((c - 1e-3, d + 1e-3));
    }
    // Sort by C ascending: the canonical order used by the shared-chain
    // hardware construction (largest C pairs with smallest D, Fig 6b).
    terms.sort_by(|a, b| a.0.total_cmp(&b.0));
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_delay_space::ops;

    #[test]
    fn single_term_beats_plain_min() {
        let one = NlseApprox::fit(1);
        // Plain min has worst-case error ln 2 at t = 0.
        assert!(one.max_slice_error() < 2.0_f64.ln());
        // And the fitted term should cut that error at least in half.
        assert!(one.max_slice_error() < 0.5 * 2.0_f64.ln());
    }

    #[test]
    fn error_decreases_with_terms() {
        let errs: Vec<f64> = [1, 2, 4, 7]
            .iter()
            .map(|&n| NlseApprox::fit(n).max_slice_error())
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] < w[0], "errors not decreasing: {errs:?}");
        }
        // Seven terms: below 0.04 delay units (the minimax optimum for
        // slope-±1 zigzags scales as ~ln2/(2n+1), so ≈ 0.046 is the
        // theoretical ballpark and the fit must beat naive spacing).
        assert!(errs[3] < 0.04, "7-term error {}", errs[3]);
    }

    #[test]
    fn figure3_hand_constants() {
        // Fig 3's illustrative single term C0 = D0 = -1 improves on min.
        let approx = NlseApprox::from_terms(vec![(-1.0, -1.0)]);
        let plain_min_err = 2.0_f64.ln();
        assert!(approx.max_slice_error() < plain_min_err);
    }

    #[test]
    fn eval_is_symmetric_and_bounded() {
        let a = NlseApprox::fit(5);
        let x = DelayValue::from_delay(0.7);
        let y = DelayValue::from_delay(-0.9);
        assert_eq!(a.eval(x, y), a.eval(y, x));
        // Bounded above by min, below by exact nLSE minus fit error.
        let v = a.eval(x, y);
        assert!(v <= x.min(y));
        let exact = ops::nlse(x, y);
        assert!(v.delay() >= exact.delay() - a.max_slice_error() - 1e-9);
    }

    #[test]
    fn eval_handles_never() {
        let a = NlseApprox::fit(3);
        let x = DelayValue::from_delay(1.0);
        assert_eq!(a.eval(x, DelayValue::ZERO), x);
        assert!(a.eval(DelayValue::ZERO, DelayValue::ZERO).is_never());
    }

    #[test]
    fn eval_matches_slice_reduction() {
        // Shift-invariance: eval(c+t, c-t) == c + eval_slice(t).
        let a = NlseApprox::fit(6);
        for &(c, t) in &[(0.0, 0.5), (3.0, 1.2), (-2.0, 0.01), (10.0, 2.5)] {
            let full = a
                .eval(DelayValue::from_delay(c + t), DelayValue::from_delay(c - t))
                .delay();
            let slice = c + a.eval_slice(t);
            assert!((full - slice).abs() < 1e-12, "c={c}, t={t}");
        }
    }

    #[test]
    fn required_shift_nonnegative_and_covers_terms() {
        let a = NlseApprox::fit(7);
        let k = a.required_shift();
        assert!(k >= 0.0);
        for &(c, d) in a.terms() {
            assert!(c + k >= -1e-12);
            assert!(d + k >= -1e-12);
        }
    }

    #[test]
    fn fit_is_cached_and_deterministic() {
        let a = NlseApprox::fit(5);
        let b = NlseApprox::fit(5);
        assert_eq!(a, b);
    }

    #[test]
    fn terms_sorted_by_c() {
        let a = NlseApprox::fit(6);
        for w in a.terms().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn importance_space_addition_error_small() {
        // The headline behaviour: delay-space addition of values in [0,1]
        // is accurate to ~1% with 7 terms.
        let a = NlseApprox::fit(7);
        let mut worst = 0.0_f64;
        for i in 0..50 {
            for j in 0..50 {
                let u = (i as f64 + 0.5) / 50.0;
                let v = (j as f64 + 0.5) / 50.0;
                let du = DelayValue::encode(u).unwrap();
                let dv = DelayValue::encode(v).unwrap();
                let got = a.eval(du, dv).decode();
                worst = worst.max((got - (u + v)).abs());
            }
        }
        // Max slice error at 7 terms is ~0.034 delay units ⇒ ~3.5%
        // relative, so the worst absolute error on sums up to 2 is ~0.07.
        assert!(worst < 0.08, "worst importance error {worst}");
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", NlseApprox::fit(2)).is_empty());
    }

    #[test]
    fn eval_rows_bitwise_matches_scalar_composition() {
        // The batch path must be bit-for-bit the scalar engine composition
        // balance → eval → delayed(k), including signed-zero delays (an
        // importance of exactly 1 encodes to -0.0) and never operands.
        let a = NlseApprox::fit(5);
        let delays = [
            0.7,
            -0.9,
            0.0,
            -0.0,
            f64::INFINITY,
            3.25,
            -0.0,
            f64::INFINITY,
            1e-300,
            42.0,
        ];
        let partners = [
            -0.9,
            0.7,
            -0.0,
            0.0,
            f64::INFINITY,
            -3.25,
            1.0,
            0.5,
            2e-300,
            f64::INFINITY,
        ];
        for &(au, bu, k) in &[(0.0, 0.0, 0.0), (0.5, 0.0, 0.25), (1.5, 2.5, 0.0)] {
            let balance = |v: DelayValue, units: f64| {
                if units == 0.0 || v.is_never() {
                    v
                } else {
                    v.delayed(units)
                }
            };
            let want: Vec<f64> = delays
                .iter()
                .zip(&partners)
                .map(|(&x, &y)| {
                    let x = balance(DelayValue::from_delay(x), au);
                    let y = balance(DelayValue::from_delay(y), bu);
                    a.eval(x, y).delayed(k).delay()
                })
                .collect();
            let mut got = vec![0.0; delays.len()];
            a.eval_rows(&delays, au, &partners, bu, k, &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "au={au} bu={bu} k={k} idx {i}: {g} vs {w}"
                );
            }
            let mut acc = partners.to_vec();
            a.eval_rows_inplace(&delays, au, &mut acc, bu, k);
            for (i, (g, w)) in acc.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "inplace idx {i}");
            }
        }
    }
}
