//! Deterministic derivative-free optimisation used to fit approximation
//! constants — the workspace's substitute for the paper's Pyomo + KNITRO
//! pipeline.
//!
//! The fitting objectives are low-dimensional (2 constants per term),
//! piecewise-smooth and cheap, so a robust pattern search is entirely
//! adequate: [`compass_search`] performs cyclic coordinate descent with
//! per-coordinate adaptive step sizes, and [`nelder_mead`] is provided for
//! final polishing and for reuse by downstream crates.

/// Cyclic coordinate pattern search ("compass search").
///
/// Minimises `f` starting from `x0`, probing `±step` along each coordinate,
/// expanding steps on success and contracting on failure, until every
/// coordinate's step falls below `tol` or `max_sweeps` is reached. Fully
/// deterministic.
///
/// Returns `(best_x, best_f)`.
pub fn compass_search<F>(
    f: F,
    x0: &[f64],
    initial_step: f64,
    tol: f64,
    max_sweeps: usize,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64]) -> f64,
{
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut fx = f(&x);
    let mut steps = vec![initial_step; n];
    for _ in 0..max_sweeps {
        let mut any_above_tol = false;
        for i in 0..n {
            if steps[i] < tol {
                continue;
            }
            any_above_tol = true;
            let orig = x[i];
            let mut improved = false;
            for dir in [1.0, -1.0] {
                x[i] = orig + dir * steps[i];
                let cand = f(&x);
                if cand < fx {
                    fx = cand;
                    improved = true;
                    // Greedily continue in the successful direction.
                    loop {
                        let further = x[i] + dir * steps[i];
                        let prev = x[i];
                        x[i] = further;
                        let c2 = f(&x);
                        if c2 < fx {
                            fx = c2;
                        } else {
                            x[i] = prev;
                            break;
                        }
                    }
                    break;
                }
            }
            if improved {
                steps[i] *= 1.6;
            } else {
                x[i] = orig;
                steps[i] *= 0.5;
            }
        }
        if !any_above_tol {
            break;
        }
    }
    (x, fx)
}

/// Classic Nelder–Mead simplex minimisation.
///
/// Uses the standard (α=1, γ=2, ρ=0.5, σ=0.5) coefficients and a simplex
/// seeded at `x0` with per-coordinate offsets `scale`. Terminates when the
/// simplex's function spread falls below `tol` or after `max_iter`
/// iterations. Deterministic.
///
/// Returns `(best_x, best_f)`.
pub fn nelder_mead<F>(f: F, x0: &[f64], scale: f64, tol: f64, max_iter: usize) -> (Vec<f64>, f64)
where
    F: Fn(&[f64]) -> f64,
{
    let n = x0.len();
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += scale;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex.iter().map(|p| f(p)).collect();

    for _ in 0..max_iter {
        // Order the simplex by value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];
        if (values[worst] - values[best]).abs() < tol {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for &idx in order.iter().take(n) {
            for (c, &pi) in centroid.iter_mut().zip(&simplex[idx]) {
                *c += pi / n as f64;
            }
        }
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&simplex[worst])
            .map(|(c, w)| c + (c - w))
            .collect();
        let f_reflect = f(&reflect);
        if f_reflect < values[best] {
            // Try expanding.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + 2.0 * (c - w))
                .collect();
            let f_expand = f(&expand);
            if f_expand < f_reflect {
                simplex[worst] = expand;
                values[worst] = f_expand;
            } else {
                simplex[worst] = reflect;
                values[worst] = f_reflect;
            }
        } else if f_reflect < values[second_worst] {
            simplex[worst] = reflect;
            values[worst] = f_reflect;
        } else {
            // Contract.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + 0.5 * (w - c))
                .collect();
            let f_contract = f(&contract);
            if f_contract < values[worst] {
                simplex[worst] = contract;
                values[worst] = f_contract;
            } else {
                // Shrink toward the best point.
                let best_p = simplex[best].clone();
                for idx in 0..=n {
                    if idx == best {
                        continue;
                    }
                    for (pi, bi) in simplex[idx].iter_mut().zip(&best_p) {
                        *pi = bi + 0.5 * (*pi - bi);
                    }
                    values[idx] = f(&simplex[idx]);
                }
            }
        }
    }
    let mut best_i = 0;
    for i in 1..=n {
        if values[i] < values[best_i] {
            best_i = i;
        }
    }
    (simplex[best_i].clone(), values[best_i])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    #[test]
    fn compass_minimises_sphere() {
        let (x, fx) = compass_search(sphere, &[3.0, -2.0, 1.5], 1.0, 1e-10, 500);
        assert!(fx < 1e-12, "fx={fx}, x={x:?}");
    }

    #[test]
    fn compass_handles_nonsmooth_objectives() {
        // |x| + |y - 1| has a kink at the optimum — gradient methods choke,
        // pattern search should not.
        let f = |x: &[f64]| x[0].abs() + (x[1] - 1.0).abs();
        let (x, fx) = compass_search(f, &[5.0, -5.0], 1.0, 1e-10, 500);
        assert!(fx < 1e-8, "fx={fx}, x={x:?}");
    }

    #[test]
    fn nelder_mead_minimises_rosenbrock() {
        let (x, fx) = nelder_mead(rosenbrock, &[-1.2, 1.0], 0.5, 1e-14, 5000);
        assert!(fx < 1e-8, "fx={fx}, x={x:?}");
        assert!((x[0] - 1.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_minimises_sphere_high_dim() {
        let x0 = vec![1.0; 6];
        let (_, fx) = nelder_mead(sphere, &x0, 0.5, 1e-14, 20_000);
        assert!(fx < 1e-6, "fx={fx}");
    }

    #[test]
    fn deterministic() {
        let a = compass_search(rosenbrock, &[0.0, 0.0], 0.5, 1e-9, 300);
        let b = compass_search(rosenbrock, &[0.0, 0.0], 0.5, 1e-9, 300);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
