//! Hardware-friendly approximations of delay-space addition and
//! subtraction (paper §2.1–§2.2, Figs 3–5).
//!
//! The exact delay-space operations `nLSE` and `nLDE` cannot be realised
//! directly with race-logic gates, but they can be approximated arbitrarily
//! well with only `min`, `max`, `delay` and `inhibit`:
//!
//! * **nLSE** (addition): `min(x', y', max(x'+C_0, y'+D_0), …,
//!   max(x'+C_{n-1}, y'+D_{n-1}))` — Eq. 6. Each `max`-term adds a "valley"
//!   that pulls the plain-`min` bound down toward the true soft-min curve.
//! * **nLDE** (subtraction): `min(inhibit(x'+E_0, y'+F_0), …)` — Eq. 7. Each
//!   inhibit-term contributes one step of a staircase that tracks the
//!   curve's blow-up near equal operands.
//!
//! The paper fits the constants with Pyomo + KNITRO; this crate substitutes
//! a deterministic pure-Rust fitting stack (see [`optimizer`]) that exploits
//! the same structural reduction the paper uses: by shift-invariance every
//! two-input instance reduces to the one-dimensional representative slice
//! `x' + y' = 0` (Fig 2), so constants are fitted on that slice and apply
//! everywhere.
//!
//! ```
//! use ta_approx::NlseApprox;
//! use ta_delay_space::{DelayValue, ops};
//!
//! let approx = NlseApprox::fit(7); // 7 max-terms, cached
//! let a = DelayValue::encode(0.3)?;
//! let b = DelayValue::encode(0.4)?;
//! let got = approx.eval(a, b).decode();
//! let exact = ops::nlse(a, b).decode();
//! assert!((got - exact).abs() < 0.02);
//! # Ok::<(), ta_delay_space::EncodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
mod nlde;
mod nlse;
pub mod optimizer;
mod tables;

pub use nlde::NldeApprox;
pub use nlse::NlseApprox;

/// One `(C_i, D_i)` max-term or `(E_i, F_i)` inhibit-term constant pair.
pub type TermPair = (f64, f64);

/// Exact representative slice of nLSE: `g(t) = nLSE(t, -t) = -ln(2·cosh t)`
/// (the dashed curve of Fig 2 / Fig 3).
pub fn nlse_slice_exact(t: f64) -> f64 {
    // -ln(2 cosh t) = -|t| - ln(1 + e^(-2|t|)), stable for all t.
    let a = t.abs();
    -a - (-2.0 * a).exp().ln_1p()
}

/// Exact representative slice of nLDE: `h(t) = nLDE(-t, t) = -ln(2·sinh t)`
/// for `t > 0` (the curve of Fig 5). Returns `+∞` at `t <= 0`.
pub fn nlde_slice_exact(t: f64) -> f64 {
    if t <= 0.0 {
        return f64::INFINITY;
    }
    // 2 sinh t = e^t (1 - e^{-2t}), so -ln(2 sinh t) = -t - ln(1 - e^{-2t}).
    -t - (-(-2.0 * t).exp()).ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_exact_values() {
        assert!((nlse_slice_exact(0.0) + 2.0_f64.ln()).abs() < 1e-12);
        // Large t: converges to -t.
        assert!((nlse_slice_exact(20.0) + 20.0).abs() < 1e-12);
        // Symmetric.
        assert_eq!(nlse_slice_exact(1.3), nlse_slice_exact(-1.3));
    }

    #[test]
    fn nlde_slice_values() {
        assert!(nlde_slice_exact(0.0).is_infinite());
        assert!(nlde_slice_exact(-1.0).is_infinite());
        // -ln(2 sinh 1).
        assert!((nlde_slice_exact(1.0) + (2.0 * 1.0_f64.sinh()).ln()).abs() < 1e-12);
        // Large t: converges to -t.
        assert!((nlde_slice_exact(20.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    fn slice_matches_exact_ops() {
        use ta_delay_space::{ops, DelayValue};
        for i in 1..40 {
            let t = i as f64 * 0.1;
            let s = ops::nlse(DelayValue::from_delay(t), DelayValue::from_delay(-t));
            assert!((s.delay() - nlse_slice_exact(t)).abs() < 1e-12);
            let d = ops::nlde(DelayValue::from_delay(-t), DelayValue::from_delay(t)).unwrap();
            assert!((d.delay() - nlde_slice_exact(t)).abs() < 1e-9);
        }
    }
}
