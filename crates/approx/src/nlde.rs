//! The min-of-inhibit nLDE approximation (Eq. 7) and its curve fit.

use std::fmt;

use ta_delay_space::DelayValue;

use crate::{nlde_slice_exact, tables, TermPair};

/// Upper end of the fitted slice domain; beyond it the exact curve is
/// within `e^-8` of the plain `-t` asymptote.
const FIT_DOMAIN: f64 = 4.0;
/// Grid resolution for the fitting objective.
const FIT_GRID: usize = 400;

/// A fitted min-of-inhibit approximation of delay-space subtraction.
///
/// `eval(x, y)` computes `min_i inhibit(x + E_i, y + F_i)`: each term
/// passes the (delayed) minuend only if it beats the (delayed) subtrahend,
/// producing a staircase of slope `-1` segments that tracks nLDE's blow-up
/// near equal operands (Fig 5). When the subtrahend dominates, every term
/// inhibits and the output never fires — decoding to importance-space `0`,
/// which is exactly what the split-value renormalisation of §2.2 needs.
///
/// ```
/// use ta_approx::NldeApprox;
/// use ta_delay_space::DelayValue;
///
/// let approx = NldeApprox::fit(8);
/// let x = DelayValue::encode(0.9)?;
/// let y = DelayValue::encode(0.4)?;
/// let diff = approx.eval(x, y).decode();
/// assert!((diff - 0.5).abs() < 0.05);
/// # Ok::<(), ta_delay_space::EncodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NldeApprox {
    /// `(E_i, F_i)` pairs sorted by activation threshold `(E_i - F_i)/2`
    /// ascending (blow-up steps first).
    terms: Vec<TermPair>,
}

impl NldeApprox {
    /// Fits `n ≥ 1` inhibit-terms to the representative slice. Results are
    /// deterministic and cached process-wide.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fit(n: usize) -> Self {
        assert!(n >= 1, "at least one inhibit-term is required");
        tables::cached_nlde(n, || NldeApprox {
            terms: fit_terms(n),
        })
    }

    /// Builds an approximation from explicit `(E_i, F_i)` constants.
    pub fn from_terms(terms: Vec<TermPair>) -> Self {
        assert!(!terms.is_empty(), "at least one inhibit-term is required");
        let mut terms = terms;
        terms.sort_by(|a, b| (a.0 - a.1).total_cmp(&(b.0 - b.1)));
        NldeApprox { terms }
    }

    /// The fitted `(E_i, F_i)` constants.
    pub fn terms(&self) -> &[TermPair] {
        &self.terms
    }

    /// Number of inhibit-terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The minimum time shift `K` that makes every constant realisable as a
    /// physical delay (§2.3).
    pub fn required_shift(&self) -> f64 {
        self.terms
            .iter()
            .flat_map(|&(e, f)| [e, f])
            .fold(0.0_f64, |k, v| k.max(-v))
    }

    /// Evaluates `x - y` in delay space (`x` is the minuend).
    ///
    /// Returns [`DelayValue::ZERO`] (never fires) when the subtrahend is
    /// too close to — or larger than — the minuend for any term to pass.
    pub fn eval(&self, x: DelayValue, y: DelayValue) -> DelayValue {
        let mut best = DelayValue::ZERO;
        for &(e, f) in &self.terms {
            let term = x.delayed(e).inhibited_by(y.delayed(f));
            best = best.min(term);
        }
        best
    }

    /// Evaluates the one-input representative slice `Ã(t) ≈ nLDE(-t, t)`
    /// for `t > 0`. Returns `+∞` in the uncovered dead zone below the
    /// smallest activation threshold.
    pub fn eval_slice(&self, t: f64) -> f64 {
        let mut best = f64::INFINITY;
        for &(e, f) in &self.terms {
            // data = -t + e, inhibitor = t + f; passes iff -t+e < t+f.
            if -t + e < t + f {
                best = best.min(-t + e);
            }
        }
        best
    }

    /// The activation threshold of the most sensitive term: for operand
    /// separations below this the output never fires (the staircase's dead
    /// zone, visible in Fig 5 as the approximation topping out).
    pub fn coverage_threshold(&self) -> f64 {
        self.terms
            .iter()
            .map(|&(e, f)| (e - f) / 2.0)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum absolute slice error over the covered domain
    /// `[threshold, 4]`, in delay units.
    pub fn max_slice_error(&self) -> f64 {
        let lo = self.coverage_threshold().max(1e-6);
        let mut max_err = 0.0_f64;
        for i in 0..FIT_GRID {
            let t = lo + (FIT_DOMAIN - lo) * i as f64 / (FIT_GRID - 1) as f64;
            let a = self.eval_slice(t);
            if a.is_finite() {
                max_err = max_err.max((a - nlde_slice_exact(t)).abs());
            }
        }
        max_err
    }

    /// Importance-space RMS error under the paper's accuracy protocol
    /// (uniform `[0,1]²` operands, larger minus smaller), computed by
    /// deterministic quadrature — the fit's own model-selection objective.
    pub fn importance_rms_error(&self) -> f64 {
        protocol_rms(&self.terms)
    }
}

impl fmt::Display for NldeApprox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nLDE~[{} inhibit-terms, K={:.3}]",
            self.terms.len(),
            self.required_shift()
        )
    }
}

/// Inverse of `φ(t) = -ln(1 - e^{-2t})`, the (positive, decreasing) gap
/// between the exact slice and its `-t` asymptote.
fn phi_inv(p: f64) -> f64 {
    // p = -ln(1 - e^{-2t})  ⇒  t = -ln(1 - e^{-p}) / 2.
    -(-(-p).exp()).ln_1p() / 2.0
}

/// Deterministic quadrature of the paper's accuracy protocol (§5.2):
/// operands uniform on `[0, 1]²`, larger minus smaller, error measured in
/// importance space. Used as the fit's model-selection objective.
fn protocol_rms(terms: &[TermPair]) -> f64 {
    const GRID: usize = 120;
    let mut sq = 0.0_f64;
    let mut count = 0usize;
    for i in 0..GRID {
        for j in 0..=i {
            let a = (i as f64 + 0.5) / GRID as f64; // larger operand
            let b = (j as f64 + 0.5) / GRID as f64;
            let x = -a.ln(); // earlier edge (minuend)
            let y = -b.ln();
            let mut out = f64::INFINITY;
            for &(e, f) in terms {
                if x + e < y + f {
                    out = out.min(x + e);
                }
            }
            let approx_importance = if out.is_finite() { (-out).exp() } else { 0.0 };
            let err = approx_importance - (a - b);
            sq += err * err;
            count += 1;
        }
    }
    (sq / count as f64).sqrt()
}

/// Deterministic staircase fit. The Chebyshev-optimal staircase with a
/// per-step delay-error budget `ε` is available in closed form: step
/// boundaries sit where `φ(θ_i) = 2(n-i+1)·ε` and each step's offset is the
/// Chebyshev centre of `φ` over its interval. That leaves a single free
/// parameter — `ε`, which trades per-step error against the dead zone near
/// equal operands — chosen by a deterministic sweep minimising the paper's
/// own accuracy protocol ([`protocol_rms`]).
fn fit_terms(n: usize) -> Vec<TermPair> {
    let build = |eps: f64| -> Vec<TermPair> {
        // φ(θ_i) = 2(n - i + 1)·ε  for i = 1..n (θ ascending).
        let mut terms = Vec::with_capacity(n);
        for i in 1..=n {
            let phi_lo = 2.0 * (n - i + 1) as f64 * eps; // at θ_i
            let phi_hi = 2.0 * (n - i) as f64 * eps; // at θ_{i+1} (0 at tail)
            let theta_i = phi_inv(phi_lo);
            let e_i = (phi_lo + phi_hi) / 2.0; // Chebyshev-centred offset
            let f_i = e_i - 2.0 * theta_i;
            terms.push((e_i, f_i));
        }
        terms
    };

    // 1-D deterministic sweep over the per-step error budget.
    let mut best = build(0.05);
    let mut best_obj = protocol_rms(&best);
    let mut eps = 2e-4;
    while eps < 0.7 {
        let cand = build(eps);
        let obj = protocol_rms(&cand);
        if obj < best_obj {
            best_obj = obj;
            best = cand;
        }
        eps *= 1.07;
    }
    best.sort_by(|a, b| (a.0 - a.1).total_cmp(&(b.0 - b.1)));
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_delay_space::ops;

    #[test]
    fn error_decreases_with_terms() {
        let errs: Vec<f64> = [2, 4, 8, 16]
            .iter()
            .map(|&n| NldeApprox::fit(n).importance_rms_error())
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] < w[0], "errors not decreasing: {errs:?}");
        }
    }

    #[test]
    fn coverage_improves_with_terms() {
        // More terms push the dead zone closer to zero separation.
        let a = NldeApprox::fit(4).coverage_threshold();
        let b = NldeApprox::fit(16).coverage_threshold();
        assert!(b < a, "{b} !< {a}");
        assert!(b > 0.0);
    }

    #[test]
    fn eval_matches_exact_subtraction() {
        let approx = NldeApprox::fit(10);
        for &(a, b) in &[(0.9, 0.1), (0.7, 0.4), (1.0, 0.05), (0.5, 0.25)] {
            let x = DelayValue::encode(a).unwrap();
            let y = DelayValue::encode(b).unwrap();
            let got = approx.eval(x, y).decode();
            assert!((got - (a - b)).abs() < 0.1, "{a}-{b}: got {got}");
        }
    }

    #[test]
    fn eval_never_when_subtrahend_dominates() {
        let approx = NldeApprox::fit(6);
        let x = DelayValue::encode(0.2).unwrap();
        let y = DelayValue::encode(0.8).unwrap();
        assert!(approx.eval(x, y).is_never());
    }

    #[test]
    fn eval_equal_operands_is_zero() {
        let approx = NldeApprox::fit(6);
        let x = DelayValue::encode(0.5).unwrap();
        assert!(approx.eval(x, x).is_never()); // decodes to 0
    }

    #[test]
    fn subtracting_zero_is_cheap() {
        let approx = NldeApprox::fit(8);
        let x = DelayValue::encode(0.5).unwrap();
        let got = approx.eval(x, DelayValue::ZERO).decode();
        // A never-firing subtrahend passes every term; the residual offset
        // is the tail term's Chebyshev-centred E_n ≈ ε.
        assert!((got - 0.5).abs() < 0.1, "got {got}");
    }

    #[test]
    fn slice_reduction_matches_eval() {
        let approx = NldeApprox::fit(8);
        for &(c, t) in &[(0.0, 0.5), (2.0, 1.0), (-1.0, 0.3)] {
            let full = approx.eval(DelayValue::from_delay(c - t), DelayValue::from_delay(c + t));
            let slice = approx.eval_slice(t);
            if slice.is_finite() {
                assert!((full.delay() - (c + slice)).abs() < 1e-12, "c={c}, t={t}");
            } else {
                assert!(full.is_never());
            }
        }
    }

    #[test]
    fn slice_error_within_exact_band() {
        // Over the covered domain, 10 terms should track the exact curve
        // to a fraction of a delay unit.
        let approx = NldeApprox::fit(10);
        assert!(
            approx.max_slice_error() < 0.5,
            "{}",
            approx.max_slice_error()
        );
    }

    #[test]
    fn nlde_inverts_nlse_approximately() {
        let add = crate::NlseApprox::fit(10);
        let sub = NldeApprox::fit(10);
        let a = DelayValue::encode(0.6).unwrap();
        let b = DelayValue::encode(0.3).unwrap();
        let sum = add.eval(a, b);
        let back = sub.eval(sum, b).decode();
        assert!((back - 0.6).abs() < 0.15, "got {back}");
        // And against the exact chain for reference.
        let exact_back = sub.eval(ops::nlse(a, b), b).decode();
        assert!((exact_back - 0.6).abs() < 0.1, "got {exact_back}");
    }

    #[test]
    fn terms_sorted_by_threshold() {
        let approx = NldeApprox::fit(7);
        let th: Vec<f64> = approx.terms().iter().map(|&(e, f)| (e - f) / 2.0).collect();
        for w in th.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn fit_is_cached_and_deterministic() {
        assert_eq!(NldeApprox::fit(5), NldeApprox::fit(5));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", NldeApprox::fit(2)).is_empty());
    }
}
