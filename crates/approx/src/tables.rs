//! Process-wide cache of fitted approximation constants.
//!
//! Fitting is deterministic but not free (a few milliseconds per term
//! count), and experiment sweeps request the same term counts thousands of
//! times, so fits are memoised per process.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::{NldeApprox, NlseApprox};

fn nlse_cache() -> &'static Mutex<HashMap<usize, NlseApprox>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, NlseApprox>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn nlde_cache() -> &'static Mutex<HashMap<usize, NldeApprox>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, NldeApprox>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

pub(crate) fn cached_nlse(n: usize, fit: impl FnOnce() -> NlseApprox) -> NlseApprox {
    if let Some(hit) = nlse_cache().lock().expect("cache poisoned").get(&n) {
        return hit.clone();
    }
    // Fit outside the lock: fits can take milliseconds and callers may be
    // concurrent test threads. A duplicated fit is deterministic, so the
    // last writer wins with an identical value.
    let fitted = fit();
    nlse_cache()
        .lock()
        .expect("cache poisoned")
        .insert(n, fitted.clone());
    fitted
}

pub(crate) fn cached_nlde(n: usize, fit: impl FnOnce() -> NldeApprox) -> NldeApprox {
    if let Some(hit) = nlde_cache().lock().expect("cache poisoned").get(&n) {
        return hit.clone();
    }
    let fitted = fit();
    nlde_cache()
        .lock()
        .expect("cache poisoned")
        .insert(n, fitted.clone());
    fitted
}

#[cfg(test)]
mod tests {
    use crate::{NldeApprox, NlseApprox};

    #[test]
    fn caches_are_consistent_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (NlseApprox::fit(3), NldeApprox::fit(3))))
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
