//! Monte-Carlo accuracy evaluation of the approximations, following the
//! paper's protocol (§5.2): draw uniform random operands in `[0, 1]`,
//! convert to delay space, apply the approximation, convert back, and
//! report the range-normalised RMS error against the exact importance-space
//! operation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ta_delay_space::DelayValue;

use crate::{NldeApprox, NlseApprox};

/// Result of a Monte-Carlo accuracy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// RMS error normalised by the range of exact results.
    pub rmse: f64,
    /// Worst absolute importance-space error observed.
    pub max_abs_error: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Measures nLSE approximation accuracy on `samples` uniform pairs from
/// `[0, 1]²` (the paper uses one million).
///
/// The error is computed in importance space against exact addition and
/// normalised by the exact results' range, matching Fig 11's metric.
pub fn nlse_accuracy(approx: &NlseApprox, samples: usize, seed: u64) -> AccuracyReport {
    accuracy_with(samples, seed, |a, b| {
        let x = DelayValue::encode(a).expect("uniform sample is encodable");
        let y = DelayValue::encode(b).expect("uniform sample is encodable");
        (approx.eval(x, y).decode(), a + b)
    })
}

/// Measures nLDE approximation accuracy on `samples` uniform pairs,
/// subtracting the smaller value from the larger (the ordering the
/// split-value renormalisation guarantees in hardware).
pub fn nlde_accuracy(approx: &NldeApprox, samples: usize, seed: u64) -> AccuracyReport {
    accuracy_with(samples, seed, |a, b| {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let x = DelayValue::encode(hi).expect("uniform sample is encodable");
        let y = DelayValue::encode(lo).expect("uniform sample is encodable");
        (approx.eval(x, y).decode(), hi - lo)
    })
}

/// Measures accuracy of an arbitrary binary operation under the same
/// protocol; `op(a, b)` returns `(approximate, exact)` in importance space.
/// Exposed so the circuit-level noisy evaluations in `ta-circuits` can
/// reuse the identical sampling and normalisation.
pub fn accuracy_with(
    samples: usize,
    seed: u64,
    mut op: impl FnMut(f64, f64) -> (f64, f64),
) -> AccuracyReport {
    assert!(samples > 0, "need at least one sample");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sq = 0.0_f64;
    let mut max_abs = 0.0_f64;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for _ in 0..samples {
        let a: f64 = rng.gen_range(0.0..1.0);
        let b: f64 = rng.gen_range(0.0..1.0);
        let (got, exact) = op(a, b);
        let err = got - exact;
        sq += err * err;
        max_abs = max_abs.max(err.abs());
        lo = lo.min(exact);
        hi = hi.max(exact);
    }
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    AccuracyReport {
        rmse: (sq / samples as f64).sqrt() / range,
        max_abs_error: max_abs,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nlse_rmse_decreases_with_terms() {
        let r3 = nlse_accuracy(&NlseApprox::fit(3), 20_000, 1);
        let r8 = nlse_accuracy(&NlseApprox::fit(8), 20_000, 1);
        assert!(r8.rmse < r3.rmse, "{} !< {}", r8.rmse, r3.rmse);
        assert!(r8.rmse < 0.015, "8-term rmse {}", r8.rmse);
    }

    #[test]
    fn nlde_rmse_decreases_with_terms() {
        let r4 = nlde_accuracy(&NldeApprox::fit(4), 20_000, 2);
        let r16 = nlde_accuracy(&NldeApprox::fit(16), 20_000, 2);
        assert!(r16.rmse < r4.rmse, "{} !< {}", r16.rmse, r4.rmse);
    }

    #[test]
    fn reports_are_seed_deterministic() {
        let a = nlse_accuracy(&NlseApprox::fit(5), 5_000, 42);
        let b = nlse_accuracy(&NlseApprox::fit(5), 5_000, 42);
        assert_eq!(a, b);
        let c = nlse_accuracy(&NlseApprox::fit(5), 5_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn max_error_bounds_rmse() {
        let r = nlse_accuracy(&NlseApprox::fit(6), 10_000, 3);
        // Range of a+b on [0,1]² is ~2, so normalised rmse ≤ max/2·... just
        // sanity: rmse (normalised) must not exceed max abs error.
        assert!(r.rmse <= r.max_abs_error);
        assert_eq!(r.samples, 10_000);
    }
}
