//! Property-based tests of the fitted approximations' structural
//! guarantees, across the whole term-count range the evaluation sweeps.

use proptest::prelude::*;
use ta_approx::{nlse_slice_exact, NldeApprox, NlseApprox};
use ta_delay_space::{ops, DelayValue};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nlse_fit_error_within_reported_minimax(
        n in 1usize..=20,
        t in 0.0..4.0f64,
    ) {
        let a = NlseApprox::fit(n);
        let err = (a.eval_slice(t) - nlse_slice_exact(t)).abs();
        prop_assert!(err <= a.max_slice_error() + 1e-9);
    }

    #[test]
    fn nlse_fit_constants_realisable_under_shift(n in 1usize..=20) {
        let a = NlseApprox::fit(n);
        let k = a.required_shift();
        for &(c, d) in a.terms() {
            prop_assert!(c + k >= -1e-12, "C={c} not covered by K={k}");
            prop_assert!(d + k >= -1e-12, "D={d} not covered by K={k}");
        }
    }

    #[test]
    fn nlse_eval_agrees_with_two_input_reduction(
        n in 1usize..=12,
        c in -5.0..5.0f64,
        d in 0.0..3.0f64,
    ) {
        // eval(c+d, c-d) must equal c + eval_slice(d): the shift identity
        // that lets one fitted slice serve every operating point.
        let a = NlseApprox::fit(n);
        let full = a
            .eval(DelayValue::from_delay(c + d), DelayValue::from_delay(c - d))
            .delay();
        prop_assert!((full - (c + a.eval_slice(d))).abs() < 1e-12);
    }

    #[test]
    fn nlse_approx_error_never_exceeds_plain_min(
        n in 1usize..=20,
        x in -3.0..3.0f64,
        y in -3.0..3.0f64,
    ) {
        // Fitted approximations must dominate the zero-term baseline.
        let a = NlseApprox::fit(n);
        let exact = ops::nlse(DelayValue::from_delay(x), DelayValue::from_delay(y)).delay();
        let approx = a.eval(DelayValue::from_delay(x), DelayValue::from_delay(y)).delay();
        let min_err = (x.min(y) - exact).abs();
        prop_assert!((approx - exact).abs() <= min_err + 1e-9);
    }

    #[test]
    fn nlde_thresholds_positive_and_sorted(n in 1usize..=20) {
        let d = NldeApprox::fit(n);
        let th: Vec<f64> = d.terms().iter().map(|&(e, f)| (e - f) / 2.0).collect();
        prop_assert!(th[0] > 0.0, "first threshold must leave a dead zone");
        for w in th.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!((d.coverage_threshold() - th[0]).abs() < 1e-12);
    }

    #[test]
    fn nlde_subtraction_result_never_exceeds_minuend(
        n in 1usize..=20,
        a in 0.01..1.0f64,
        b in 0.0..1.0f64,
    ) {
        // In importance space, (a - b)~ ≤ a·e^ε: the staircase sits near
        // or below the minuend, never wildly above it.
        let d = NldeApprox::fit(n);
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let out = d
            .eval(
                DelayValue::encode(hi).unwrap(),
                DelayValue::encode(lo).unwrap(),
            )
            .decode();
        prop_assert!(out <= hi * 1.25 + 1e-9, "{hi}-{lo} gave {out}");
        prop_assert!(out >= 0.0);
    }

    #[test]
    fn fits_are_process_deterministic(n in 1usize..=20) {
        prop_assert_eq!(NlseApprox::fit(n), NlseApprox::fit(n));
        prop_assert_eq!(NldeApprox::fit(n), NldeApprox::fit(n));
    }
}
