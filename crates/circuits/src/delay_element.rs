//! Inverter-chain delay lines and the unit-scale mapping (§4.2).

use std::fmt;

/// The minimum delay of a single 65 nm inverter stage (≈ 10 ps); larger
/// per-element delays are obtained by loading the inverter output with a
/// ground transistor (Fig 8b) and are expressed as multiples of this.
pub const MIN_INVERTER_DELAY_NS: f64 = 0.01;

/// Maps abstract delay units onto physical time.
///
/// The paper's design-space exploration sweeps this across 1 ns, 5 ns and
/// 10 ns per unit (§5.3): a larger unit scale stretches every constant of
/// the approximations over more physical time, which buys noise margin at
/// the cost of energy (delay-line energy is linear in realised delay).
///
/// ```
/// use ta_circuits::UnitScale;
/// let u = UnitScale::new(5.0, 50.0);
/// assert_eq!(u.to_ns(2.0), 10.0);
/// assert_eq!(u.element_delay_ns(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitScale {
    unit_ns: f64,
    element_multiplier: f64,
}

impl UnitScale {
    /// Creates a unit scale of `unit_ns` nanoseconds per abstract unit,
    /// with delay elements of `element_multiplier ×` the minimal inverter
    /// delay (the paper's evaluation fixes this at 50× except in Fig 11c).
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite, and
    /// `element_multiplier ≥ 1`.
    pub fn new(unit_ns: f64, element_multiplier: f64) -> Self {
        assert!(
            unit_ns.is_finite() && unit_ns > 0.0,
            "unit scale must be positive"
        );
        assert!(
            element_multiplier.is_finite() && element_multiplier >= 1.0,
            "element delay cannot be below one minimal inverter"
        );
        UnitScale {
            unit_ns,
            element_multiplier,
        }
    }

    /// The paper's default evaluation configuration: 1 ns units, 50×
    /// minimal inverter delay.
    pub fn default_1ns() -> Self {
        UnitScale::new(1.0, 50.0)
    }

    /// Nanoseconds per abstract unit.
    pub fn unit_ns(&self) -> f64 {
        self.unit_ns
    }

    /// Per-element delay in nanoseconds.
    pub fn element_delay_ns(&self) -> f64 {
        MIN_INVERTER_DELAY_NS * self.element_multiplier
    }

    /// The element-delay multiplier relative to a minimal inverter.
    pub fn element_multiplier(&self) -> f64 {
        self.element_multiplier
    }

    /// Converts abstract units to nanoseconds.
    pub fn to_ns(&self, units: f64) -> f64 {
        units * self.unit_ns
    }

    /// Converts nanoseconds to abstract units.
    pub fn to_units(&self, ns: f64) -> f64 {
        ns / self.unit_ns
    }
}

impl Default for UnitScale {
    fn default() -> Self {
        UnitScale::default_1ns()
    }
}

impl fmt::Display for UnitScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ns/unit, {}× element delay",
            self.unit_ns, self.element_multiplier
        )
    }
}

/// A hard-coded delay line: a chain of identically loaded inverters
/// realising one nominal delay (Fig 8b).
///
/// ```
/// use ta_circuits::{DelayLine, UnitScale};
/// let line = DelayLine::new(2.0, UnitScale::new(1.0, 50.0));
/// assert_eq!(line.nominal_ns(), 2.0);
/// assert_eq!(line.element_count(), 4); // 2 ns / 0.5 ns per element
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayLine {
    nominal_units: f64,
    scale: UnitScale,
}

impl DelayLine {
    /// A delay line of `nominal_units` abstract units under `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_units` is negative, NaN or infinite (an infinite
    /// delay is "no wire", not a line).
    pub fn new(nominal_units: f64, scale: UnitScale) -> Self {
        assert!(
            nominal_units.is_finite() && nominal_units >= 0.0,
            "delay lines realise finite non-negative delays"
        );
        DelayLine {
            nominal_units,
            scale,
        }
    }

    /// Nominal delay in abstract units.
    pub fn nominal_units(&self) -> f64 {
        self.nominal_units
    }

    /// Nominal delay in nanoseconds.
    pub fn nominal_ns(&self) -> f64 {
        self.scale.to_ns(self.nominal_units)
    }

    /// Number of inverter elements in the chain (at least one for any
    /// non-zero delay).
    pub fn element_count(&self) -> usize {
        let ns = self.nominal_ns();
        if ns == 0.0 {
            0
        } else {
            (ns / self.scale.element_delay_ns()).ceil() as usize
        }
    }

    /// The unit scale this line is built under.
    pub fn scale(&self) -> UnitScale {
        self.scale
    }

    /// The line after multiplicative drift of its nominal delay (aging,
    /// local IR drop): `nominal × (1 + fraction)`. Drift below `-100 %`
    /// saturates at a zero-delay line — an inverter chain cannot advance
    /// edges — so the result is always a valid [`DelayLine`].
    pub fn drifted(&self, fraction: f64) -> DelayLine {
        let factor = (1.0 + fraction).max(0.0);
        DelayLine::new(self.nominal_units * factor, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scale_conversions_roundtrip() {
        let u = UnitScale::new(5.0, 50.0);
        assert_eq!(u.to_units(u.to_ns(3.2)), 3.2);
        assert_eq!(u.element_delay_ns(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_unit_scale_rejected() {
        UnitScale::new(0.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "minimal inverter")]
    fn sub_minimal_element_rejected() {
        UnitScale::new(1.0, 0.5);
    }

    #[test]
    fn element_count_rounds_up() {
        let u = UnitScale::new(1.0, 50.0); // 0.5 ns elements
        assert_eq!(DelayLine::new(0.0, u).element_count(), 0);
        assert_eq!(DelayLine::new(0.4, u).element_count(), 1);
        assert_eq!(DelayLine::new(0.5, u).element_count(), 1);
        assert_eq!(DelayLine::new(1.2, u).element_count(), 3);
    }

    #[test]
    fn larger_elements_mean_fewer_of_them() {
        let small = DelayLine::new(5.0, UnitScale::new(1.0, 1.0));
        let large = DelayLine::new(5.0, UnitScale::new(1.0, 50.0));
        assert_eq!(small.element_count(), 500);
        assert_eq!(large.element_count(), 10);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_delay_rejected() {
        DelayLine::new(f64::INFINITY, UnitScale::default_1ns());
    }

    #[test]
    fn drift_scales_nominal_and_saturates_at_zero() {
        let line = DelayLine::new(2.0, UnitScale::default_1ns());
        assert_eq!(line.drifted(0.25).nominal_units(), 2.5);
        assert_eq!(line.drifted(-0.5).nominal_units(), 1.0);
        assert_eq!(line.drifted(0.0), line);
        // Below -100%: a chain cannot advance edges.
        assert_eq!(line.drifted(-1.5).nominal_units(), 0.0);
        assert_eq!(line.drifted(-1.5).element_count(), 0);
    }
}
