//! Functional hardware models of the shared-chain nLSE and nLDE
//! approximation units (Fig 6b), with per-chain-segment noise injection
//! and energy/area accounting.
//!
//! These are the models the full-image architectural simulator evaluates —
//! they compute exactly what the gate-level netlists of
//! `ta_race_logic::blocks` compute (a cross-check test asserts this), but
//! without building a netlist per evaluation, and they know their own
//! energy and area.
//!
//! The netlists compiled from these blocks are not evaluated as built:
//! `ta_race_logic::opt` folds constant delays, hash-conses identical
//! subcircuits and drops dead gates before evaluation (DESIGN.md §5.16),
//! so the gate counts reported next to this crate's energy/area figures
//! (Table 2's "Gates" column) are the post-optimization counts. The
//! functional models here are unaffected — they never build the netlist.

use rand::Rng;
use ta_approx::{NldeApprox, NlseApprox};
use ta_delay_space::DelayValue;

use crate::{AreaModel, EnergyModel, NoiseRealization, UnitScale};

/// Realises one delay chain's taps under noise: segments between
/// consecutive taps are independent delay lines, so tap jitters are
/// cumulative along the chain (exactly as in the shared-chain hardware).
fn noisy_taps<R: Rng>(taps: &[f64], realization: &NoiseRealization, rng: &mut R) -> Vec<f64> {
    let mut order: Vec<usize> = (0..taps.len()).collect();
    order.sort_by(|&a, &b| taps[a].total_cmp(&taps[b]));
    let mut out = vec![0.0; taps.len()];
    let mut prev_nominal = 0.0;
    let mut prev_noisy = 0.0;
    for &i in &order {
        let seg = taps[i] - prev_nominal;
        let noisy_seg = if seg > 0.0 {
            realization.perturb_units(seg, rng)
        } else {
            0.0
        };
        prev_noisy += noisy_seg;
        prev_nominal = taps[i];
        out[i] = prev_noisy;
    }
    out
}

/// The shared-chain two-input nLSE approximation unit.
///
/// Output timing is `nLSẼ(x, y) + K` where `K` is the unit's inherent
/// shift ([`NlseUnit::latency_units`]); the recurrence scheduler absorbs
/// `K` into the cycle time (§3).
#[derive(Debug, Clone)]
pub struct NlseUnit {
    approx: NlseApprox,
    scale: UnitScale,
    k_units: f64,
    hi_taps: Vec<f64>,
    lo_taps: Vec<f64>, // one per term, plus the min path at index n
}

impl NlseUnit {
    /// Builds a unit for the given fitted approximation.
    pub fn new(approx: NlseApprox, scale: UnitScale) -> Self {
        let k = approx.required_shift();
        let hi_taps: Vec<f64> = approx.terms().iter().map(|&(c, _)| c + k).collect();
        let mut lo_taps: Vec<f64> = approx.terms().iter().map(|&(_, d)| d + k).collect();
        lo_taps.push(k);
        NlseUnit {
            approx,
            scale,
            k_units: k,
            hi_taps,
            lo_taps,
        }
    }

    /// Convenience: fits `terms` max-terms and builds the unit.
    pub fn with_terms(terms: usize, scale: UnitScale) -> Self {
        NlseUnit::new(NlseApprox::fit(terms), scale)
    }

    /// The unit's inherent time shift `K` (output = function + K), in
    /// abstract units.
    pub fn latency_units(&self) -> f64 {
        self.k_units
    }

    /// The fitted approximation the unit implements.
    pub fn approx(&self) -> &NlseApprox {
        &self.approx
    }

    /// The unit scale the chains are built under.
    pub fn scale(&self) -> UnitScale {
        self.scale
    }

    /// Total nominal chain delay per fired input pair, in abstract units
    /// (both shared chains end at their largest tap).
    pub fn chain_delay_units(&self) -> f64 {
        let hi_max = self.hi_taps.iter().cloned().fold(0.0_f64, f64::max);
        let lo_max = self.lo_taps.iter().cloned().fold(0.0_f64, f64::max);
        hi_max + lo_max
    }

    /// Ideal (noiseless) evaluation: the min-of-max approximation shifted
    /// by `K`.
    pub fn eval_ideal(&self, x: DelayValue, y: DelayValue) -> DelayValue {
        self.approx.eval(x, y).delayed(self.k_units)
    }

    /// Batch [`eval_ideal`] over rows of raw delays with tree balance
    /// units, dispatched through the SIMD tiers of `ta-simd`:
    /// `out[i] = eval(x[i] ⊕ xu, y[i] ⊕ yu) + K` with `⊕` the balance add
    /// (skipped when the unit count is exactly `0.0`). Bit-for-bit
    /// identical to the scalar `TreeOps::balance` + [`eval_ideal`]
    /// composition on every tier.
    ///
    /// [`eval_ideal`]: NlseUnit::eval_ideal
    ///
    /// # Panics
    ///
    /// If `x`, `y` and `out` differ in length.
    pub fn eval_ideal_rows(&self, x: &[f64], xu: f64, y: &[f64], yu: f64, out: &mut [f64]) {
        self.approx.eval_rows(x, xu, y, yu, self.k_units, out);
    }

    /// In-place accumulate form of [`eval_ideal_rows`]:
    /// `acc[i] = eval(x[i] ⊕ xu, acc[i] ⊕ acc_units) + K` — the planned
    /// executor's spine combine step.
    ///
    /// [`eval_ideal_rows`]: NlseUnit::eval_ideal_rows
    ///
    /// # Panics
    ///
    /// If `x` and `acc` differ in length.
    pub fn eval_ideal_rows_inplace(&self, x: &[f64], xu: f64, acc: &mut [f64], acc_units: f64) {
        self.approx
            .eval_rows_inplace(x, xu, acc, acc_units, self.k_units);
    }

    /// Noisy evaluation: every chain segment's delay is perturbed through
    /// the given [`NoiseRealization`].
    pub fn eval_noisy<R: Rng>(
        &self,
        x: DelayValue,
        y: DelayValue,
        realization: &NoiseRealization,
        rng: &mut R,
    ) -> DelayValue {
        self.eval_noisy_drifted(x, y, realization, rng, 0.0)
    }

    /// Noisy evaluation on chains that have additionally drifted by the
    /// multiplicative `fraction` of [`NlseUnit::eval_drifted`] — jitter is
    /// realised on top of the drifted nominals, as in aged hardware.
    pub fn eval_noisy_drifted<R: Rng>(
        &self,
        x: DelayValue,
        y: DelayValue,
        realization: &NoiseRealization,
        rng: &mut R,
        fraction: f64,
    ) -> DelayValue {
        let factor = (1.0 + fraction).max(0.0);
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        if lo.is_never() {
            return DelayValue::ZERO;
        }
        let lo_nominal: Vec<f64> = self.lo_taps.iter().map(|t| t * factor).collect();
        let lo_taps = noisy_taps(&lo_nominal, realization, rng);
        let min_path = lo.delayed(lo_taps[self.approx.num_terms()]);
        if hi.is_never() {
            // Only the min path fires.
            return min_path;
        }
        let hi_nominal: Vec<f64> = self.hi_taps.iter().map(|t| t * factor).collect();
        let hi_taps = noisy_taps(&hi_nominal, realization, rng);
        let mut best = min_path;
        for i in 0..self.approx.num_terms() {
            let term = hi.delayed(hi_taps[i]).max(lo.delayed(lo_taps[i]));
            best = best.min(term);
        }
        best
    }

    /// Evaluation under uniform multiplicative drift of the shared chains:
    /// every tap realises `tap × (1 + fraction)`, the signature of aging or
    /// IR drop on the chain's common supply. Drift below `-100 %` saturates
    /// the chains at zero delay. `fraction = 0` reproduces the tap-exact
    /// ideal evaluation.
    pub fn eval_drifted(&self, x: DelayValue, y: DelayValue, fraction: f64) -> DelayValue {
        let factor = (1.0 + fraction).max(0.0);
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        if lo.is_never() {
            return DelayValue::ZERO;
        }
        let min_path = lo.delayed(self.lo_taps[self.approx.num_terms()] * factor);
        if hi.is_never() {
            return min_path;
        }
        let mut best = min_path;
        for i in 0..self.approx.num_terms() {
            let term = hi
                .delayed(self.hi_taps[i] * factor)
                .max(lo.delayed(self.lo_taps[i] * factor));
            best = best.min(term);
        }
        best
    }

    /// Energy of one evaluation with `fired_inputs ∈ {0, 1, 2}` edges
    /// actually arriving (a never-firing input leaves its chain silent).
    ///
    /// Race logic has a *near-minimal activity factor* (paper §1, after
    /// the gated-race designs of the race-logic literature): once the
    /// first-arrival output emits, in-flight edges beyond it are moot and
    /// their chain tails are gated. The earlier (lo) chain always runs its
    /// full length to produce the result; the later (hi) chain is
    /// typically overtaken partway, modelled as a 30 % average traversal.
    ///
    /// # Panics
    ///
    /// Panics if `fired_inputs > 2`.
    pub fn energy_pj(&self, model: &EnergyModel, fired_inputs: usize) -> f64 {
        assert!(
            fired_inputs <= 2,
            "a two-input unit fires at most two inputs"
        );
        if fired_inputs == 0 {
            return 0.0;
        }
        let lo_max = self.lo_taps.iter().cloned().fold(0.0_f64, f64::max);
        let hi_max = self.hi_taps.iter().cloned().fold(0.0_f64, f64::max);
        let switched_units = if fired_inputs == 2 {
            lo_max + 0.3 * hi_max
        } else {
            lo_max
        };
        let gate_events = 2 + self.approx.num_terms() + 1; // comparator + LAs + FA
        model.delay_units_pj(switched_units, self.scale) + gate_events as f64 * model.gate_event_pj
    }

    /// Static layout area of the unit in µm².
    pub fn area_um2(&self, model: &AreaModel) -> f64 {
        let lo_max = self.lo_taps.iter().cloned().fold(0.0_f64, f64::max);
        let hi_max = self.hi_taps.iter().cloned().fold(0.0_f64, f64::max);
        model.delay_units_um2(lo_max, self.scale)
            + model.delay_units_um2(hi_max, self.scale)
            + model.gates_um2(2 + self.approx.num_terms() + 1)
    }
}

/// The shared-chain nLDE (delay-space subtraction) unit.
#[derive(Debug, Clone)]
pub struct NldeUnit {
    approx: NldeApprox,
    scale: UnitScale,
    k_units: f64,
    x_taps: Vec<f64>,
    y_taps: Vec<f64>,
}

impl NldeUnit {
    /// Builds a unit for the given fitted approximation.
    pub fn new(approx: NldeApprox, scale: UnitScale) -> Self {
        let k = approx.required_shift();
        let x_taps: Vec<f64> = approx.terms().iter().map(|&(e, _)| e + k).collect();
        let y_taps: Vec<f64> = approx.terms().iter().map(|&(_, f)| f + k).collect();
        NldeUnit {
            approx,
            scale,
            k_units: k,
            x_taps,
            y_taps,
        }
    }

    /// Convenience: fits `terms` inhibit-terms and builds the unit.
    pub fn with_terms(terms: usize, scale: UnitScale) -> Self {
        NldeUnit::new(NldeApprox::fit(terms), scale)
    }

    /// The unit's inherent time shift `K`, in abstract units.
    pub fn latency_units(&self) -> f64 {
        self.k_units
    }

    /// The fitted approximation the unit implements.
    pub fn approx(&self) -> &NldeApprox {
        &self.approx
    }

    /// Ideal (noiseless) evaluation of `x - y`, shifted by `K`.
    pub fn eval_ideal(&self, x: DelayValue, y: DelayValue) -> DelayValue {
        self.approx.eval(x, y).delayed(self.k_units)
    }

    /// Noisy evaluation of `x - y` (minuend `x`).
    pub fn eval_noisy<R: Rng>(
        &self,
        x: DelayValue,
        y: DelayValue,
        realization: &NoiseRealization,
        rng: &mut R,
    ) -> DelayValue {
        self.eval_noisy_drifted(x, y, realization, rng, 0.0)
    }

    /// Noisy evaluation of `x - y` on chains drifted by the multiplicative
    /// `fraction` of [`NldeUnit::eval_drifted`].
    pub fn eval_noisy_drifted<R: Rng>(
        &self,
        x: DelayValue,
        y: DelayValue,
        realization: &NoiseRealization,
        rng: &mut R,
        fraction: f64,
    ) -> DelayValue {
        let factor = (1.0 + fraction).max(0.0);
        if x.is_never() {
            return DelayValue::ZERO;
        }
        let x_nominal: Vec<f64> = self.x_taps.iter().map(|t| t * factor).collect();
        let x_taps = noisy_taps(&x_nominal, realization, rng);
        if y.is_never() {
            // No inhibitor: all terms pass; min over data taps.
            let mut best = DelayValue::ZERO;
            for &t in &x_taps {
                best = best.min(x.delayed(t));
            }
            return best;
        }
        let y_nominal: Vec<f64> = self.y_taps.iter().map(|t| t * factor).collect();
        let y_taps = noisy_taps(&y_nominal, realization, rng);
        let mut best = DelayValue::ZERO;
        for i in 0..self.approx.num_terms() {
            let term = x.delayed(x_taps[i]).inhibited_by(y.delayed(y_taps[i]));
            best = best.min(term);
        }
        best
    }

    /// Evaluation of `x - y` under uniform multiplicative drift of both
    /// tap chains, as in [`NlseUnit::eval_drifted`].
    pub fn eval_drifted(&self, x: DelayValue, y: DelayValue, fraction: f64) -> DelayValue {
        let factor = (1.0 + fraction).max(0.0);
        if x.is_never() {
            return DelayValue::ZERO;
        }
        if y.is_never() {
            let mut best = DelayValue::ZERO;
            for &t in &self.x_taps {
                best = best.min(x.delayed(t * factor));
            }
            return best;
        }
        let mut best = DelayValue::ZERO;
        for i in 0..self.approx.num_terms() {
            let term = x
                .delayed(self.x_taps[i] * factor)
                .inhibited_by(y.delayed(self.y_taps[i] * factor));
            best = best.min(term);
        }
        best
    }

    /// Energy of one evaluation with `fired_inputs ∈ {0, 1, 2}` edges,
    /// with the same winner-gated switching model as
    /// [`NlseUnit::energy_pj`].
    ///
    /// # Panics
    ///
    /// Panics if `fired_inputs > 2`.
    pub fn energy_pj(&self, model: &EnergyModel, fired_inputs: usize) -> f64 {
        assert!(
            fired_inputs <= 2,
            "a two-input unit fires at most two inputs"
        );
        if fired_inputs == 0 {
            return 0.0;
        }
        let x_max = self.x_taps.iter().cloned().fold(0.0_f64, f64::max);
        let y_max = self.y_taps.iter().cloned().fold(0.0_f64, f64::max);
        let switched_units = if fired_inputs == 2 {
            x_max + 0.3 * y_max
        } else {
            x_max
        };
        let gate_events = self.approx.num_terms() + 1; // inhibits + FA
        model.delay_units_pj(switched_units, self.scale) + gate_events as f64 * model.gate_event_pj
    }

    /// Static layout area of the unit in µm².
    pub fn area_um2(&self, model: &AreaModel) -> f64 {
        let x_max = self.x_taps.iter().cloned().fold(0.0_f64, f64::max);
        let y_max = self.y_taps.iter().cloned().fold(0.0_f64, f64::max);
        model.delay_units_um2(x_max, self.scale)
            + model.delay_units_um2(y_max, self.scale)
            + model.gates_um2(1)
            + self.approx.num_terms() as f64 * model.transistors_per_inhibit * model.transistor_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ta_race_logic::blocks;

    fn scale() -> UnitScale {
        UnitScale::new(1.0, 50.0)
    }

    #[test]
    fn ideal_matches_reference_formula() {
        let unit = NlseUnit::with_terms(5, scale());
        let k = unit.latency_units();
        for &(tx, ty) in &[(0.0, 0.0), (1.0, 3.0), (4.0, 0.5)] {
            let x = DelayValue::from_delay(tx);
            let y = DelayValue::from_delay(ty);
            let got = unit.eval_ideal(x, y);
            let expect = blocks::nlse_min_of_max(x, y, unit.approx().terms()).delayed(k);
            assert!((got.delay() - expect.delay()).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_matches_gate_level_netlist() {
        // The functional model and the Fig 6b netlist must agree exactly.
        let unit = NlseUnit::with_terms(4, scale());
        let k = unit.latency_units();
        let circuit = blocks::nlse_circuit(unit.approx().terms(), k, true).unwrap();
        for i in 0..40 {
            let tx = i as f64 * 0.17;
            let ty = ((i * 13) % 40) as f64 * 0.11;
            let x = DelayValue::from_delay(tx);
            let y = DelayValue::from_delay(ty);
            let net = circuit.evaluate(&[x, y]).unwrap()[0];
            let fun = unit.eval_ideal(x, y);
            assert!((net.delay() - fun.delay()).abs() < 1e-9, "({tx},{ty})");
        }
    }

    #[test]
    fn noiseless_realization_equals_ideal() {
        let unit = NlseUnit::with_terms(6, scale());
        let r = NoiseRealization::ideal(scale());
        let mut rng = SmallRng::seed_from_u64(1);
        let x = DelayValue::from_delay(0.8);
        let y = DelayValue::from_delay(2.1);
        let a = unit.eval_noisy(x, y, &r, &mut rng);
        let b = unit.eval_ideal(x, y);
        assert!((a.delay() - b.delay()).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs_but_tracks() {
        use crate::NoiseModel;
        let unit = NlseUnit::with_terms(6, scale());
        let model = NoiseModel::asplos24(10.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let x = DelayValue::from_delay(1.0);
        let y = DelayValue::from_delay(1.5);
        let ideal = unit.eval_ideal(x, y).delay();
        let n = 5000;
        let mut sum = 0.0;
        for _ in 0..n {
            let r = model.begin_eval(scale(), &mut rng);
            sum += unit.eval_noisy(x, y, &r, &mut rng).delay();
        }
        let mean = sum / n as f64;
        // Noisy mean within a couple of sigma-ish of ideal (min-of-max is
        // biased slightly downward under noise).
        assert!((mean - ideal).abs() < 0.1, "mean {mean} vs ideal {ideal}");
    }

    #[test]
    fn never_inputs_handled() {
        let unit = NlseUnit::with_terms(3, scale());
        let r = NoiseRealization::ideal(scale());
        let mut rng = SmallRng::seed_from_u64(3);
        let x = DelayValue::from_delay(1.0);
        let k = unit.latency_units();
        let one = unit.eval_noisy(x, DelayValue::ZERO, &r, &mut rng);
        assert!((one.delay() - (1.0 + k)).abs() < 1e-12);
        assert!(unit
            .eval_noisy(DelayValue::ZERO, DelayValue::ZERO, &r, &mut rng)
            .is_never());
    }

    #[test]
    fn energy_depends_on_fired_inputs() {
        let unit = NlseUnit::with_terms(5, scale());
        let m = EnergyModel::asplos24();
        assert_eq!(unit.energy_pj(&m, 0), 0.0);
        let one = unit.energy_pj(&m, 1);
        let two = unit.energy_pj(&m, 2);
        assert!(two > one && one > 0.0);
        // Winner gating: both-fired switches well below the full static
        // chain budget but above the lone-input case.
        let full_budget = m.delay_units_pj(unit.chain_delay_units(), scale());
        assert!(two < full_budget);
        let k_only = m.delay_units_pj(unit.latency_units(), scale());
        assert!(one >= k_only && one < k_only * 1.2);
    }

    #[test]
    fn more_terms_cost_more_energy_and_area() {
        let m = EnergyModel::asplos24();
        let a = AreaModel::asplos24();
        let small = NlseUnit::with_terms(3, scale());
        let big = NlseUnit::with_terms(10, scale());
        assert!(big.energy_pj(&m, 2) > small.energy_pj(&m, 2));
        assert!(big.area_um2(&a) > small.area_um2(&a));
    }

    #[test]
    fn nlde_ideal_matches_reference() {
        let unit = NldeUnit::with_terms(8, scale());
        let k = unit.latency_units();
        for &(tx, ty) in &[(0.1, 0.5), (0.0, 3.0), (1.0, 1.05)] {
            let x = DelayValue::from_delay(tx);
            let y = DelayValue::from_delay(ty);
            let got = unit.eval_ideal(x, y);
            let expect = blocks::nlde_min_of_inhibit(x, y, unit.approx().terms()).delayed(k);
            if expect.is_never() {
                assert!(got.is_never());
            } else {
                assert!((got.delay() - expect.delay()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nlde_matches_gate_level_netlist() {
        let unit = NldeUnit::with_terms(5, scale());
        let k = unit.latency_units();
        let circuit = blocks::nlde_circuit(unit.approx().terms(), k).unwrap();
        for i in 0..40 {
            let tx = i as f64 * 0.07;
            let ty = tx + ((i * 7) % 40) as f64 * 0.05;
            let x = DelayValue::from_delay(tx);
            let y = DelayValue::from_delay(ty);
            let net = circuit.evaluate(&[x, y]).unwrap()[0];
            let fun = unit.eval_ideal(x, y);
            if net.is_never() {
                assert!(fun.is_never(), "({tx},{ty})");
            } else {
                assert!((net.delay() - fun.delay()).abs() < 1e-9, "({tx},{ty})");
            }
        }
    }

    #[test]
    fn nlde_noisy_subtrahend_dominance_still_never() {
        let unit = NldeUnit::with_terms(6, scale());
        let r = NoiseRealization::ideal(scale());
        let mut rng = SmallRng::seed_from_u64(4);
        let x = DelayValue::from_delay(5.0);
        let y = DelayValue::from_delay(1.0);
        assert!(unit.eval_noisy(x, y, &r, &mut rng).is_never());
    }

    #[test]
    fn zero_drift_matches_ideal() {
        let nlse = NlseUnit::with_terms(6, scale());
        let nlde = NldeUnit::with_terms(6, scale());
        for i in 0..20 {
            let x = DelayValue::from_delay(i as f64 * 0.23);
            let y = DelayValue::from_delay(((i * 11) % 20) as f64 * 0.19);
            let a = nlse.eval_drifted(x, y, 0.0);
            let b = nlse.eval_ideal(x, y);
            assert!((a.delay() - b.delay()).abs() < 1e-12);
            let a = nlde.eval_drifted(x, y.delayed(2.0), 0.0);
            let b = nlde.eval_ideal(x, y.delayed(2.0));
            if b.is_never() {
                assert!(a.is_never());
            } else {
                assert!((a.delay() - b.delay()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn drifted_unit_matches_drifted_netlist() {
        // Uniform drift on the functional unit's taps must equal the
        // gate-level netlist with the same drift fraction planned on every
        // delay element — the consistency the two engines rely on.
        use ta_race_logic::FaultPlan;
        let unit = NlseUnit::with_terms(4, scale());
        let k = unit.latency_units();
        let circuit = blocks::nlse_circuit(unit.approx().terms(), k, true).unwrap();
        for &fraction in &[0.0, 0.2, -0.3, -1.5] {
            let mut plan = FaultPlan::new();
            for (node, _) in circuit.delay_elements() {
                plan.set_delay_drift(node, fraction);
            }
            for i in 0..25 {
                let x = DelayValue::from_delay(i as f64 * 0.21);
                let y = DelayValue::from_delay(((i * 17) % 25) as f64 * 0.13);
                let (net, _) = circuit
                    .evaluate_faulty(&[x, y], &mut ta_race_logic::NoNoise, &plan)
                    .unwrap();
                let fun = unit.eval_drifted(x, y, fraction);
                assert!(
                    (net[0].delay() - fun.delay()).abs() < 1e-9,
                    "fraction {fraction}, inputs ({x:?},{y:?})"
                );
            }
        }
    }

    #[test]
    fn positive_drift_slows_output() {
        let unit = NlseUnit::with_terms(5, scale());
        let x = DelayValue::from_delay(1.0);
        let y = DelayValue::from_delay(2.0);
        let ideal = unit.eval_drifted(x, y, 0.0).delay();
        assert!(unit.eval_drifted(x, y, 0.3).delay() > ideal);
        assert!(unit.eval_drifted(x, y, -0.3).delay() < ideal);
    }

    #[test]
    fn chain_sharing_beats_naive_delay_budget() {
        // The shared chain's total delay (≈ 2K per unit) must be well
        // under the naive per-term budget (≈ n·K each side).
        let unit = NlseUnit::with_terms(7, scale());
        let k = unit.latency_units();
        let naive_budget = 2.0 * 7.0 * k;
        assert!(unit.chain_delay_units() < naive_budget / 3.0);
    }
}
