//! Energy and area models (paper §5.1).
//!
//! The paper distils its SPICE results into two modelling assumptions,
//! which this module encodes directly:
//!
//! 1. *"With physical delay elements, energy consumption scales linearly
//!    with the magnitude of delay"* (§2.3) — so a delay line's per-event
//!    energy is `delay_ns × delay_pj_per_ns`.
//! 2. *"We assume that the delay elements dominate both the energy and
//!    area and that the control logic is negligible"* (§5.1) — gates carry
//!    only a small per-event charge.
//!
//! The absolute constants are calibrated once against the paper's
//! published Sobel figures (Table 2 row 1 and Table 3) and then shared by
//! every experiment; see DESIGN.md §5.4.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::{DelayLine, UnitScale};

/// Energy-per-operation constants (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per nanosecond of delay exercised through an inverter chain
    /// built from *reference-sized* (50× minimal) elements.
    pub delay_pj_per_ns: f64,
    /// How per-element switching energy grows with the element-delay
    /// multiplier: `E_element ∝ multiplier^exponent`. Sub-linear (< 1),
    /// because the ground transistor of Fig 8b starves current rather
    /// than adding proportional capacitance — which is exactly why §5.2
    /// says cutting chain sizes 50× "can" pay: fewer elements, each only
    /// modestly more expensive.
    pub element_energy_exponent: f64,
    /// Energy per output event of an fa/la/inhibit gate.
    pub gate_event_pj: f64,
    /// Energy per voltage-to-time conversion (one pixel read).
    pub vtc_pj: f64,
    /// Energy per time-to-digital conversion.
    pub tdc_pj: f64,
}

/// The element multiplier the `delay_pj_per_ns` constant is quoted at
/// (the evaluation's 50× configuration).
const REFERENCE_MULTIPLIER: f64 = 50.0;

impl EnergyModel {
    /// The calibrated 65 nm model.
    ///
    /// Anchors: the VTC and TDC costs come from the designs the paper
    /// cites for Table 3 (a ~2.5 pJ low-power VTC and a ~5.5 pJ two-step
    /// TDC — the per-pixel deltas visible between Table 3's "Energy" and
    /// "Energy w/TDC" columns); `delay_pj_per_ns` is set so the Sobel
    /// (1 ns, 7, 20) configuration lands in Table 2's ~10 µJ/frame range
    /// on 150×150 inputs.
    pub fn asplos24() -> Self {
        EnergyModel {
            delay_pj_per_ns: 3.3,
            element_energy_exponent: 0.3,
            gate_event_pj: 0.02,
            vtc_pj: 2.5,
            tdc_pj: 5.5,
        }
    }

    /// Effective pJ per ns of delay for chains built at the given element
    /// multiplier: `m^α` energy per element over `m` minimal delays gives
    /// a `(m/50)^(α-1)` scaling of the reference figure — longer chains of
    /// smaller elements burn more total energy for the same delay.
    pub fn delay_pj_per_ns_at(&self, element_multiplier: f64) -> f64 {
        assert!(
            element_multiplier >= 1.0,
            "element delay cannot be below one minimal inverter"
        );
        self.delay_pj_per_ns
            * (element_multiplier / REFERENCE_MULTIPLIER).powf(self.element_energy_exponent - 1.0)
    }

    /// Energy of one event traversing a delay line.
    pub fn delay_line_pj(&self, line: &DelayLine) -> f64 {
        line.nominal_ns() * self.delay_pj_per_ns_at(line.scale().element_multiplier())
    }

    /// Energy of an event traversing `units` abstract units of delay
    /// under `scale`.
    pub fn delay_units_pj(&self, units: f64, scale: UnitScale) -> f64 {
        scale.to_ns(units) * self.delay_pj_per_ns_at(scale.element_multiplier())
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::asplos24()
    }
}

/// Area-model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Layout area per transistor, including local routing, in µm².
    pub transistor_um2: f64,
    /// Transistors per delay element (inverter + ground load, Fig 8b).
    pub transistors_per_element: f64,
    /// Transistors per fa/la gate.
    pub transistors_per_gate: f64,
    /// Transistors per inhibit cell (two, per the race-logic literature).
    pub transistors_per_inhibit: f64,
}

impl AreaModel {
    /// The calibrated 65 nm model (anchored so Table 2's Sobel (1 ns)
    /// configuration lands near 0.02 mm²). The per-transistor figure is
    /// drawn-gate-area accounting (W×L plus minimal diffusion), matching
    /// the paper's lean "typical transistor sizes" estimate rather than a
    /// routed-layout figure.
    pub fn asplos24() -> Self {
        AreaModel {
            transistor_um2: 0.04,
            transistors_per_element: 3.0,
            transistors_per_gate: 4.0,
            transistors_per_inhibit: 2.0,
        }
    }

    /// Area of one delay line in µm².
    pub fn delay_line_um2(&self, line: &DelayLine) -> f64 {
        line.element_count() as f64 * self.transistors_per_element * self.transistor_um2
    }

    /// Area of a delay of `units` abstract units under `scale`, in µm².
    pub fn delay_units_um2(&self, units: f64, scale: UnitScale) -> f64 {
        self.delay_line_um2(&DelayLine::new(units, scale))
    }

    /// Area of `n` two-input gates in µm².
    pub fn gates_um2(&self, n: usize) -> f64 {
        n as f64 * self.transistors_per_gate * self.transistor_um2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::asplos24()
    }
}

/// A per-category energy accumulator, so reports can break totals down the
/// way the paper discusses them (delay lines vs converters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyTally {
    /// Energy spent in delay lines (weights, approximation chains,
    /// synchronisation and recurrence delays).
    pub delay_pj: f64,
    /// Energy spent in fa/la/inhibit gates.
    pub gate_pj: f64,
    /// Energy spent in voltage-to-time converters.
    pub vtc_pj: f64,
    /// Energy spent in time-to-digital converters.
    pub tdc_pj: f64,
}

impl EnergyTally {
    /// An empty tally.
    pub fn new() -> Self {
        EnergyTally::default()
    }

    /// Records an event traversing `units` of delay under `scale`.
    pub fn add_delay_units(&mut self, units: f64, scale: UnitScale, model: &EnergyModel) {
        if units.is_finite() && units > 0.0 {
            self.delay_pj += model.delay_units_pj(units, scale);
        }
    }

    /// Records `n` gate output events.
    pub fn add_gate_events(&mut self, n: usize, model: &EnergyModel) {
        self.gate_pj += n as f64 * model.gate_event_pj;
    }

    /// Records `n` VTC conversions.
    pub fn add_vtc(&mut self, n: usize, model: &EnergyModel) {
        self.vtc_pj += n as f64 * model.vtc_pj;
    }

    /// Records `n` TDC conversions.
    pub fn add_tdc(&mut self, n: usize, model: &EnergyModel) {
        self.tdc_pj += n as f64 * model.tdc_pj;
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.delay_pj + self.gate_pj + self.vtc_pj + self.tdc_pj
    }

    /// Total energy in microjoules (Table 2 / Fig 12 units).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() * 1e-6
    }
}

impl Add for EnergyTally {
    type Output = EnergyTally;

    fn add(self, rhs: EnergyTally) -> EnergyTally {
        EnergyTally {
            delay_pj: self.delay_pj + rhs.delay_pj,
            gate_pj: self.gate_pj + rhs.gate_pj,
            vtc_pj: self.vtc_pj + rhs.vtc_pj,
            tdc_pj: self.tdc_pj + rhs.tdc_pj,
        }
    }
}

impl AddAssign for EnergyTally {
    fn add_assign(&mut self, rhs: EnergyTally) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyTally {
    fn sum<I: Iterator<Item = EnergyTally>>(iter: I) -> EnergyTally {
        iter.fold(EnergyTally::default(), |a, b| a + b)
    }
}

impl fmt::Display for EnergyTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} µJ (delay {:.3}, gates {:.3}, VTC {:.3}, TDC {:.3})",
            self.total_uj(),
            self.delay_pj * 1e-6,
            self.gate_pj * 1e-6,
            self.vtc_pj * 1e-6,
            self.tdc_pj * 1e-6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_linear_in_delay() {
        let m = EnergyModel::asplos24();
        let s = UnitScale::new(1.0, 50.0);
        let e1 = m.delay_units_pj(1.0, s);
        let e5 = m.delay_units_pj(5.0, s);
        assert!((e5 / e1 - 5.0).abs() < 1e-12);
        // And linear in unit scale too.
        let e_scaled = m.delay_units_pj(1.0, UnitScale::new(10.0, 50.0));
        assert!((e_scaled / e1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn reference_multiplier_matches_headline_constant() {
        let m = EnergyModel::asplos24();
        assert!((m.delay_pj_per_ns_at(50.0) - m.delay_pj_per_ns).abs() < 1e-12);
    }

    #[test]
    fn bigger_elements_save_energy_sublinearly() {
        // §5.2: "the size of the inverter chains can be cut by 50×" —
        // fewer, slightly-costlier elements win on total energy.
        let m = EnergyModel::asplos24();
        let fine = m.delay_pj_per_ns_at(1.0);
        let coarse = m.delay_pj_per_ns_at(50.0);
        assert!(fine > coarse, "min-size chains must cost more per ns");
        // But far less than the 50× element-count ratio: the per-element
        // energy grows with the load.
        assert!(fine / coarse < 50.0);
        let huge = m.delay_pj_per_ns_at(200.0);
        assert!(huge < coarse);
    }

    #[test]
    #[should_panic(expected = "minimal inverter")]
    fn sub_minimal_multiplier_rejected() {
        EnergyModel::asplos24().delay_pj_per_ns_at(0.5);
    }

    #[test]
    fn tally_accumulates_by_category() {
        let m = EnergyModel::asplos24();
        let s = UnitScale::new(1.0, 50.0);
        let mut t = EnergyTally::new();
        t.add_delay_units(3.0, s, &m);
        t.add_gate_events(10, &m);
        t.add_vtc(2, &m);
        t.add_tdc(1, &m);
        assert!((t.delay_pj - 3.0 * m.delay_pj_per_ns).abs() < 1e-12);
        assert!((t.gate_pj - 10.0 * m.gate_event_pj).abs() < 1e-12);
        assert!((t.vtc_pj - 2.0 * m.vtc_pj).abs() < 1e-12);
        assert!((t.tdc_pj - m.tdc_pj).abs() < 1e-12);
        let expected = 3.0 * m.delay_pj_per_ns + 10.0 * m.gate_event_pj + 2.0 * m.vtc_pj + m.tdc_pj;
        assert!((t.total_pj() - expected).abs() < 1e-12);
    }

    #[test]
    fn tally_ignores_never_and_zero_delays() {
        let m = EnergyModel::asplos24();
        let s = UnitScale::default_1ns();
        let mut t = EnergyTally::new();
        t.add_delay_units(f64::INFINITY, s, &m);
        t.add_delay_units(0.0, s, &m);
        assert_eq!(t.total_pj(), 0.0);
    }

    #[test]
    fn tally_addition() {
        let m = EnergyModel::asplos24();
        let _s = UnitScale::default_1ns();
        let mut a = EnergyTally::new();
        a.add_vtc(1, &m);
        let mut b = EnergyTally::new();
        b.add_tdc(1, &m);
        let c: EnergyTally = [a, b].into_iter().sum();
        assert!((c.total_pj() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn area_of_delay_lines() {
        let a = AreaModel::asplos24();
        let s = UnitScale::new(1.0, 50.0); // 0.5 ns elements
                                           // 5 units = 5 ns = 10 elements × 3 transistors × 0.04 µm².
        assert!((a.delay_units_um2(5.0, s) - 1.2).abs() < 1e-9);
        assert!((a.gates_um2(2) - 0.32).abs() < 1e-12);
    }

    #[test]
    fn bigger_elements_save_area() {
        let a = AreaModel::asplos24();
        let fine = a.delay_units_um2(5.0, UnitScale::new(1.0, 1.0));
        let coarse = a.delay_units_um2(5.0, UnitScale::new(1.0, 50.0));
        assert!(coarse < fine / 10.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", EnergyTally::new()).is_empty());
    }
}
