//! Timing-noise models: random jitter (RJ) and power-supply-induced jitter
//! (PSIJ), following the structure of the paper's noise study (§5.2, after
//! Mo et al., "Design methodologies for low-jitter CMOS clock
//! distribution").

use rand::Rng;
use ta_race_logic::NormalSampler;

use crate::UnitScale;

/// Parametric jitter model for inverter-chain delay lines.
///
/// * **RJ**: each inverter contributes independent Gaussian jitter with
///   `σ_element = rj_fraction × element_delay`. Over a chain realising a
///   total delay `D` with elements of delay `d`, the variances add:
///   `σ_chain = rj_fraction × √(d × D)` — so for a fixed total delay,
///   *smaller* elements (longer chains) average the jitter down, which is
///   exactly the area/noise trade-off of §4.2.
/// * **PSIJ**: supply droop is common-mode across an evaluation. Each
///   evaluation draws one relative supply excursion and every delay in
///   that evaluation is scaled by it; the effective jitter is proportional
///   to both the V_DD swing and the realised delay. It dominates unless
///   the swing is controlled (Fig 11b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Per-element RJ as a fraction of the element's delay.
    pub rj_fraction: f64,
    /// Relative delay sensitivity per millivolt of supply excursion.
    pub psij_per_mv: f64,
    /// Peak-to-peak V_DD swing in millivolts (the paper sweeps this and
    /// settles on 10 mV for the main evaluation).
    pub vdd_swing_mv: f64,
}

impl NoiseModel {
    /// The calibrated model used across the evaluation: per-element RJ of
    /// 1.5 % of the element delay and a supply sensitivity chosen so that
    /// a 10 mV swing is a mild (but visible) perturbation while ≥ 50 mV
    /// swings dominate the approximation constants — reproducing both the
    /// qualitative bands of Fig 11b–d and the absolute RMSE levels of
    /// Table 2 (≈ 0.04–0.07 at 1 ns, ≈ 0.03 at 5–10 ns).
    pub fn asplos24(vdd_swing_mv: f64) -> Self {
        NoiseModel {
            rj_fraction: 0.015,
            psij_per_mv: 0.0002,
            vdd_swing_mv,
        }
    }

    /// A noiseless model (all sources zero).
    pub fn ideal() -> Self {
        NoiseModel {
            rj_fraction: 0.0,
            psij_per_mv: 0.0,
            vdd_swing_mv: 0.0,
        }
    }

    /// Standard deviation (ns) of the RJ of one delay line of
    /// `nominal_ns` total delay built from `element_ns` elements.
    pub fn rj_sigma_ns(&self, nominal_ns: f64, element_ns: f64) -> f64 {
        if nominal_ns <= 0.0 {
            return 0.0;
        }
        self.rj_fraction * (element_ns * nominal_ns).sqrt()
    }

    /// Draws the common-mode supply factor for one evaluation: all delays
    /// in the evaluation are multiplied by the returned value.
    pub fn sample_psij_factor<R: Rng>(&self, rng: &mut R, sampler: &mut NormalSampler) -> f64 {
        if self.psij_per_mv == 0.0 || self.vdd_swing_mv == 0.0 {
            return 1.0;
        }
        // The swing is peak-to-peak; model the excursion as a Gaussian with
        // σ = swing/4 (±2σ spans the swing), saturated at the rails.
        let sigma_mv = self.vdd_swing_mv / 4.0;
        let excursion = (sampler.sample(rng) * sigma_mv)
            .clamp(-self.vdd_swing_mv / 2.0, self.vdd_swing_mv / 2.0);
        1.0 + self.psij_per_mv * excursion
    }

    /// Begins one noisy evaluation: draws the evaluation's common-mode
    /// PSIJ factor and returns a [`NoiseRealization`] that perturbs
    /// individual delays.
    pub fn begin_eval<R: Rng>(&self, scale: UnitScale, rng: &mut R) -> NoiseRealization {
        let mut sampler = NormalSampler::new();
        let psij_factor = self.sample_psij_factor(rng, &mut sampler);
        NoiseRealization {
            model: *self,
            scale,
            psij_factor,
        }
    }
}

/// The noise state of one hardware evaluation: a fixed common-mode PSIJ
/// factor plus per-delay independent RJ sampling.
#[derive(Debug, Clone, Copy)]
pub struct NoiseRealization {
    model: NoiseModel,
    scale: UnitScale,
    psij_factor: f64,
}

impl NoiseRealization {
    /// A noiseless realization (useful as a default).
    pub fn ideal(scale: UnitScale) -> Self {
        NoiseRealization {
            model: NoiseModel::ideal(),
            scale,
            psij_factor: 1.0,
        }
    }

    /// The evaluation's common-mode supply factor.
    pub fn psij_factor(&self) -> f64 {
        self.psij_factor
    }

    /// Perturbs one delay given in abstract units, returning the realised
    /// delay in abstract units (clamped at zero — a chain cannot advance
    /// an edge).
    pub fn perturb_units<R: Rng>(&self, nominal_units: f64, rng: &mut R) -> f64 {
        if nominal_units <= 0.0 {
            return nominal_units.max(0.0);
        }
        let nominal_ns = self.scale.to_ns(nominal_units);
        let sigma_ns = self
            .model
            .rj_sigma_ns(nominal_ns, self.scale.element_delay_ns());
        let mut sampler = NormalSampler::new();
        let jitter_ns = if sigma_ns > 0.0 {
            sigma_ns * sampler.sample(rng)
        } else {
            0.0
        };
        let realised_ns = (nominal_ns * self.psij_factor + jitter_ns).max(0.0);
        self.scale.to_units(realised_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let r = NoiseModel::ideal().begin_eval(UnitScale::default_1ns(), &mut rng);
        assert_eq!(r.psij_factor(), 1.0);
        assert_eq!(r.perturb_units(3.0, &mut rng), 3.0);
    }

    #[test]
    fn rj_sigma_scales_with_sqrt_of_element_and_total() {
        let m = NoiseModel::asplos24(0.0);
        let s1 = m.rj_sigma_ns(10.0, 0.01);
        let s2 = m.rj_sigma_ns(10.0, 0.5); // 50× elements
        assert!((s2 / s1 - 50.0_f64.sqrt()).abs() < 1e-9);
        let s4 = m.rj_sigma_ns(40.0, 0.01);
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
        assert_eq!(m.rj_sigma_ns(0.0, 0.5), 0.0);
    }

    #[test]
    fn rj_statistics_match_model() {
        let m = NoiseModel::asplos24(0.0); // no PSIJ
        let scale = UnitScale::new(1.0, 50.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let nominal = 4.0; // units = ns at this scale
        let expect_sigma_ns = m.rj_sigma_ns(4.0, 0.5);
        let n = 30_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let r = m.begin_eval(scale, &mut rng);
            let v = r.perturb_units(nominal, &mut rng);
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - nominal).abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() - expect_sigma_ns).abs() / expect_sigma_ns < 0.05,
            "sigma {} vs {}",
            var.sqrt(),
            expect_sigma_ns
        );
    }

    #[test]
    fn psij_is_common_mode_within_an_eval() {
        let m = NoiseModel {
            rj_fraction: 0.0,
            psij_per_mv: 0.002,
            vdd_swing_mv: 100.0,
        };
        let scale = UnitScale::default_1ns();
        let mut rng = SmallRng::seed_from_u64(7);
        let r = m.begin_eval(scale, &mut rng);
        // With RJ disabled, all delays in one eval scale identically.
        let a = r.perturb_units(1.0, &mut rng);
        let b = r.perturb_units(2.0, &mut rng);
        assert!((b / a - 2.0).abs() < 1e-12);
        assert_eq!(a, r.psij_factor());
    }

    #[test]
    fn psij_spread_grows_with_swing() {
        let scale = UnitScale::default_1ns();
        let spread = |swing: f64| {
            let m = NoiseModel::asplos24(swing);
            let mut rng = SmallRng::seed_from_u64(11);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for _ in 0..2000 {
                let f = m.begin_eval(scale, &mut rng).psij_factor();
                lo = lo.min(f);
                hi = hi.max(f);
            }
            hi - lo
        };
        assert!(spread(100.0) > 5.0 * spread(10.0));
        assert_eq!(spread(0.0), 0.0);
    }

    #[test]
    fn perturb_never_negative() {
        let m = NoiseModel {
            rj_fraction: 5.0, // absurdly noisy
            psij_per_mv: 0.0,
            vdd_swing_mv: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let r = m.begin_eval(UnitScale::default_1ns(), &mut rng);
        for _ in 0..1000 {
            assert!(r.perturb_units(0.1, &mut rng) >= 0.0);
        }
    }
}
