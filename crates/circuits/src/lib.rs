//! Circuit-level models of the delay-space hardware (paper §4.1–§4.2,
//! §5.1–§5.2): inverter-chain delay elements, voltage-to-time and
//! time-to-digital converters, jitter models, and the 65 nm-style energy
//! and area models used by the architectural simulator.
//!
//! # Units
//!
//! Three unit systems meet in this crate; names keep them apart:
//!
//! * **abstract delay units** — the dimensionless delays of
//!   [`ta_delay_space::DelayValue`]; all arithmetic happens here.
//! * **nanoseconds** (`_ns`) — physical time. The [`UnitScale`] maps one
//!   abstract unit onto physical time (the paper's 1 ns / 5 ns / 10 ns
//!   sweep): `t_ns = units × unit_scale_ns`.
//! * **picojoules** (`_pj`) and **square micrometres** (`_um2`) — energy
//!   and area.
//!
//! # Calibration
//!
//! The models encode the paper's stated structure (energy linear in
//! realised delay; delay elements dominate; RJ accumulates independently
//! per element; PSIJ scales with supply swing). The absolute constants in
//! [`EnergyModel::asplos24`] and [`AreaModel::asplos24`] are calibrated
//! once against Table 2's Sobel rows and then reused unchanged everywhere
//! — see DESIGN.md §3 and §5.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay_element;
mod energy;
mod nlse_unit;
mod noise;
mod tdc;
mod vtc;

pub use delay_element::{DelayLine, UnitScale};
pub use energy::{AreaModel, EnergyModel, EnergyTally};
pub use nlse_unit::{NldeUnit, NlseUnit};
pub use noise::{NoiseModel, NoiseRealization};
pub use tdc::TdcModel;
pub use vtc::{StarvedInverterVtc, VtcModel};
