//! Time-to-digital conversion: the exit from the temporal domain.
//!
//! When a delay-space result must re-enter the digital world, a TDC
//! quantises the edge's arrival time — the *temporal equivalent of
//! quantization* the paper's abstract refers to. Table 3's "w/TDC" columns
//! account for this cost; the model here follows the two-step 16-bit,
//! 2 ps-resolution TDC the paper cites (Enomoto et al.).

use ta_delay_space::DelayValue;

use crate::UnitScale;

/// A behavioural time-to-digital converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdcModel {
    bits: u32,
    /// Least-significant-bit resolution in femtoseconds (integer, so the
    /// model is `Eq`/hashable); 2 ps = 2000 fs.
    lsb_fs: u64,
}

impl TdcModel {
    /// The cited reference design: 16 bits at 2 ps resolution.
    pub fn asplos24() -> Self {
        TdcModel {
            bits: 16,
            lsb_fs: 2000,
        }
    }

    /// A custom converter.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 32, or `lsb_fs` is zero.
    pub fn new(bits: u32, lsb_fs: u64) -> Self {
        assert!(bits > 0 && bits <= 32, "supported TDC width is 1..=32 bits");
        assert!(lsb_fs > 0, "TDC resolution must be non-zero");
        TdcModel { bits, lsb_fs }
    }

    /// Resolution in nanoseconds.
    pub fn lsb_ns(&self) -> f64 {
        self.lsb_fs as f64 * 1e-6
    }

    /// Converter width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale range in nanoseconds.
    pub fn full_scale_ns(&self) -> f64 {
        self.lsb_ns() * ((1u64 << self.bits) - 1) as f64
    }

    /// Digitises an edge: returns the output code, saturating at full
    /// scale. A never-firing edge reads as the all-ones code.
    pub fn digitize(&self, edge: DelayValue, scale: UnitScale) -> u32 {
        let max_code = ((1u64 << self.bits) - 1) as u32;
        if edge.is_never() {
            return max_code;
        }
        let ns = scale.to_ns(edge.delay()).max(0.0);
        let code = (ns / self.lsb_ns()).round();
        if code >= max_code as f64 {
            max_code
        } else {
            code as u32
        }
    }

    /// The value a digitised edge represents, back in abstract units —
    /// i.e. `digitize` followed by reconstruction. This is the quantised
    /// delay the rest of a digital pipeline would see.
    pub fn quantize(&self, edge: DelayValue, scale: UnitScale) -> DelayValue {
        if edge.is_never() {
            return DelayValue::ZERO;
        }
        let code = self.digitize(edge, scale);
        DelayValue::from_delay(scale.to_units(code as f64 * self.lsb_ns()))
    }

    /// Worst-case quantisation error in abstract units (half an LSB).
    pub fn quantization_error_units(&self, scale: UnitScale) -> f64 {
        scale.to_units(self.lsb_ns() / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> UnitScale {
        UnitScale::new(1.0, 50.0)
    }

    #[test]
    fn reference_design_parameters() {
        let t = TdcModel::asplos24();
        assert_eq!(t.bits(), 16);
        assert!((t.lsb_ns() - 0.002).abs() < 1e-12);
        assert!((t.full_scale_ns() - 0.002 * 65535.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_rounds_to_lsb() {
        let t = TdcModel::new(16, 2000);
        let edge = DelayValue::from_delay(1.0005); // 1.0005 ns at 1 ns/unit
        let q = t.quantize(edge, scale());
        // Nearest 2 ps step: 1.000 ns.
        assert!((q.delay() - 1.0).abs() < 1e-9, "{}", q.delay());
        assert_eq!(t.digitize(edge, scale()), 500);
    }

    #[test]
    fn saturation_at_full_scale() {
        let t = TdcModel::new(4, 1_000_000); // 16 codes of 1 ns
        let beyond = DelayValue::from_delay(100.0);
        assert_eq!(t.digitize(beyond, scale()), 15);
        assert!((t.quantize(beyond, scale()).delay() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn never_edge_reads_full_scale_code_but_stays_never() {
        let t = TdcModel::asplos24();
        assert_eq!(t.digitize(DelayValue::ZERO, scale()), 65535);
        assert!(t.quantize(DelayValue::ZERO, scale()).is_never());
    }

    #[test]
    fn quantization_error_bound_holds() {
        let t = TdcModel::asplos24();
        let bound = t.quantization_error_units(scale());
        for i in 0..100 {
            let d = DelayValue::from_delay(i as f64 * 0.0137);
            let q = t.quantize(d, scale());
            assert!((q.delay() - d.delay()).abs() <= bound + 1e-12);
        }
    }

    #[test]
    fn error_shrinks_with_larger_unit_scale() {
        // Temporal quantization: a fixed-LSB TDC costs fewer *units* of
        // error when each unit spans more physical time.
        let t = TdcModel::asplos24();
        let e1 = t.quantization_error_units(UnitScale::new(1.0, 50.0));
        let e10 = t.quantization_error_units(UnitScale::new(10.0, 50.0));
        assert!((e1 / e10 - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn zero_bits_rejected() {
        TdcModel::new(0, 2000);
    }
}
