//! Voltage-to-time conversion (§4.1): the sensor-facing edge of the
//! architecture.
//!
//! The delay-space encoding needs a VTC whose delay follows the *negative
//! log* of the pixel voltage, not the linear mapping of conventional
//! time-based ADCs. A current-starved inverter (Fig 8a) naturally provides
//! a monotonically decreasing, log-like delay; this module offers both an
//! idealised negative-log converter and a behavioural starved-inverter
//! transfer curve calibrated against it.

use rand::Rng;
use ta_delay_space::DelayValue;
use ta_race_logic::NormalSampler;

use crate::UnitScale;

/// An idealised negative-log VTC with the two noise injection points of
/// the paper's sensitivity study (Fig 13): Gaussian noise on the pixel
/// voltage *before* conversion (sensor noise — fixed-pattern, dark shot)
/// and Gaussian timing noise *after* conversion (VTC non-idealities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VtcModel {
    scale: UnitScale,
    /// Darkest convertible pixel; darker values saturate to the maximum
    /// delay (the temporal dynamic-range limit).
    min_pixel: f64,
    /// σ of pre-conversion voltage noise, as a fraction of full scale.
    pre_noise_frac: f64,
    /// σ of post-conversion timing noise, in nanoseconds.
    post_noise_ns: f64,
}

impl VtcModel {
    /// An ideal noiseless converter with the default dynamic-range floor
    /// `min_pixel = e^-6 ≈ 0.0025` (≈ 8.7 bits of delay-space dynamic
    /// range).
    pub fn ideal(scale: UnitScale) -> Self {
        VtcModel {
            scale,
            min_pixel: (-6.0_f64).exp(),
            pre_noise_frac: 0.0,
            post_noise_ns: 0.0,
        }
    }

    /// Sets both noise injection points (used by the Fig 13 sweep).
    pub fn with_noise(mut self, pre_noise_frac: f64, post_noise_ns: f64) -> Self {
        assert!(
            pre_noise_frac >= 0.0 && post_noise_ns >= 0.0,
            "noise magnitudes must be non-negative"
        );
        self.pre_noise_frac = pre_noise_frac;
        self.post_noise_ns = post_noise_ns;
        self
    }

    /// Sets the darkest convertible pixel value.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_pixel < 1`.
    pub fn with_min_pixel(mut self, min_pixel: f64) -> Self {
        assert!(
            min_pixel > 0.0 && min_pixel < 1.0,
            "min_pixel must lie strictly inside (0, 1)"
        );
        self.min_pixel = min_pixel;
        self
    }

    /// The unit scale of the produced delays.
    pub fn scale(&self) -> UnitScale {
        self.scale
    }

    /// The longest delay the converter can emit, in abstract units.
    pub fn max_delay_units(&self) -> f64 {
        -self.min_pixel.ln()
    }

    /// Converts a pixel value in `[0, 1]` to a delay-space edge,
    /// applying both noise sources.
    ///
    /// # Panics
    ///
    /// Panics if `pixel` is not finite.
    pub fn convert<R: Rng>(&self, pixel: f64, rng: &mut R) -> DelayValue {
        let mut sampler = NormalSampler::new();
        self.convert_with(pixel, rng, &mut sampler)
    }

    /// [`convert`] with a caller-provided sampler, for hot loops that
    /// hoist the sampler out of a per-pixel closure instead of
    /// constructing one per pixel.
    ///
    /// The sampler's cached spare is discarded at entry, which is what
    /// makes this bit-identical to [`convert`] under any interleaving:
    /// with both noise sources active the polar method's spare deviate
    /// would otherwise carry across pixels, consume one fewer `rng` draw,
    /// and shift every subsequent stream value.
    ///
    /// [`convert`]: VtcModel::convert
    ///
    /// # Panics
    ///
    /// Panics if `pixel` is not finite.
    pub fn convert_with<R: Rng>(
        &self,
        pixel: f64,
        rng: &mut R,
        sampler: &mut NormalSampler,
    ) -> DelayValue {
        assert!(pixel.is_finite(), "pixel must be finite");
        sampler.reset();
        let mut v = pixel;
        if self.pre_noise_frac > 0.0 {
            v += self.pre_noise_frac * sampler.sample(rng);
        }
        let v = v.clamp(0.0, 1.0).max(self.min_pixel);
        let mut ns = self.scale.to_ns(-v.ln());
        if self.post_noise_ns > 0.0 {
            ns += self.post_noise_ns * sampler.sample(rng);
        }
        DelayValue::from_delay(self.scale.to_units(ns.max(0.0)))
    }

    /// Converts without noise (the deterministic transfer curve).
    pub fn convert_ideal(&self, pixel: f64) -> DelayValue {
        assert!(pixel.is_finite(), "pixel must be finite");
        let v = pixel.clamp(0.0, 1.0).max(self.min_pixel);
        DelayValue::from_delay(-v.ln())
    }

    /// Batch noiseless conversion of a pixel row.
    ///
    /// With `tolerant = false` this is an elementwise [`convert_ideal`]
    /// loop (libm `ln`, bit-identical to the scalar path). With
    /// `tolerant = true` the clamp-and-`-ln` transfer dispatches through
    /// the SIMD tiers of `ta-simd` with polynomial `ln` lanes — a few ulp
    /// from libm, pinned by tolerance tests.
    ///
    /// [`convert_ideal`]: VtcModel::convert_ideal
    ///
    /// # Panics
    ///
    /// Panics if any pixel is not finite.
    pub fn convert_ideal_row(&self, pixels: &[f64], tolerant: bool) -> Vec<DelayValue> {
        if tolerant {
            let mut out = vec![0.0_f64; pixels.len()];
            ta_simd::vtc_encode_rows(pixels, self.min_pixel, &mut out);
            out.into_iter().map(DelayValue::from_delay).collect()
        } else {
            pixels.iter().map(|&p| self.convert_ideal(p)).collect()
        }
    }
}

/// A behavioural current-starved-inverter transfer curve (Fig 8a).
///
/// The starved inverter's delay is set by the charging current, which the
/// pixel voltage controls through the starving transistor:
/// `t(v) = t₀ + k / (v + v_off)^α`. The constants are calibrated (once, at
/// construction) so the curve approximates the ideal negative-log
/// transfer over the converter's dynamic range — quantifying the paper's
/// claim that the starved inverter "approximates negative log for specific
/// regions of interest".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarvedInverterVtc {
    scale: UnitScale,
    min_pixel: f64,
    t0_ns: f64,
    k_ns: f64,
    v_off: f64,
    alpha: f64,
}

impl StarvedInverterVtc {
    /// Calibrates a starved-inverter curve against the ideal negative-log
    /// transfer of [`VtcModel::ideal`] under the same unit scale.
    pub fn calibrated(scale: UnitScale) -> Self {
        let min_pixel = (-6.0_f64).exp();
        // Fit t0 + k/(v+off)^α ≈ -ln(v) · unit_ns over [min_pixel, 1].
        let unit = scale.unit_ns();
        let objective = |p: &[f64]| -> f64 {
            let (t0, k, off, alpha) = (p[0], p[1], p[2], p[3]);
            if k <= 0.0 || off <= 1e-4 || alpha <= 0.1 || alpha > 3.0 {
                return f64::INFINITY;
            }
            let mut sq = 0.0;
            let n = 200;
            for i in 0..n {
                // Log-spaced sample points emphasise the dark end.
                let f = i as f64 / (n - 1) as f64;
                let v = min_pixel.powf(1.0 - f);
                let ideal = -v.ln() * unit;
                let got = t0 + k / (v + off).powf(alpha);
                let e = got - ideal;
                sq += e * e;
            }
            (sq / n as f64).sqrt()
        };
        let (p, _) = ta_approx::optimizer::compass_search(
            objective,
            &[-unit, 0.5 * unit, 0.1, 0.5],
            0.1 * unit,
            1e-9,
            600,
        );
        StarvedInverterVtc {
            scale,
            min_pixel,
            t0_ns: p[0],
            k_ns: p[1],
            v_off: p[2],
            alpha: p[3],
        }
    }

    /// The deterministic transfer curve: pixel voltage to delay units.
    pub fn convert_ideal(&self, pixel: f64) -> DelayValue {
        assert!(pixel.is_finite(), "pixel must be finite");
        let v = pixel.clamp(0.0, 1.0).max(self.min_pixel);
        let ns = self.t0_ns + self.k_ns / (v + self.v_off).powf(self.alpha);
        DelayValue::from_delay(self.scale.to_units(ns.max(0.0)))
    }

    /// Worst absolute deviation (in abstract units) from the ideal
    /// negative-log transfer over the dynamic range.
    pub fn max_deviation_units(&self) -> f64 {
        let ideal = VtcModel::ideal(self.scale);
        let mut worst = 0.0_f64;
        let n = 400;
        for i in 0..n {
            let f = i as f64 / (n - 1) as f64;
            let v = self.min_pixel.powf(1.0 - f);
            let d = (self.convert_ideal(v).delay() - ideal.convert_ideal(v).delay()).abs();
            worst = worst.max(d);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn scale() -> UnitScale {
        UnitScale::new(1.0, 50.0)
    }

    #[test]
    fn ideal_transfer_is_negative_log() {
        let vtc = VtcModel::ideal(scale());
        assert_eq!(vtc.convert_ideal(1.0).delay(), 0.0);
        let half = vtc.convert_ideal(0.5).delay();
        assert!((half - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn dark_pixels_saturate() {
        let vtc = VtcModel::ideal(scale());
        let floor = vtc.convert_ideal(0.0);
        assert!(floor.delay().is_finite());
        assert!((floor.delay() - vtc.max_delay_units()).abs() < 1e-12);
        assert_eq!(vtc.convert_ideal(1e-9), floor);
    }

    #[test]
    fn transfer_is_monotone_decreasing_in_pixel() {
        let vtc = VtcModel::ideal(scale());
        let mut prev = f64::INFINITY;
        for i in 1..100 {
            let d = vtc.convert_ideal(i as f64 / 100.0).delay();
            assert!(d <= prev);
            prev = d;
        }
    }

    #[test]
    fn noiseless_convert_matches_ideal() {
        let vtc = VtcModel::ideal(scale());
        let mut rng = SmallRng::seed_from_u64(1);
        for &p in &[0.1, 0.5, 0.9] {
            assert!(
                (vtc.convert(p, &mut rng).delay() - vtc.convert_ideal(p).delay()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn pre_noise_perturbs_in_voltage_domain() {
        let vtc = VtcModel::ideal(scale()).with_noise(0.05, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let p = 0.5;
        // Mean decoded value should stay near the pixel (noise is centred).
        let mean: f64 = (0..n)
            .map(|_| vtc.convert(p, &mut rng).decode())
            .sum::<f64>()
            / n as f64;
        assert!((mean - p).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn post_noise_perturbs_in_time_domain() {
        let vtc = VtcModel::ideal(scale()).with_noise(0.0, 0.1);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let p = 0.5;
        let base = vtc.convert_ideal(p).delay();
        let mut sq = 0.0;
        for _ in 0..n {
            let d = vtc.convert(p, &mut rng).delay();
            sq += (d - base) * (d - base);
        }
        let sigma = (sq / n as f64).sqrt();
        // 0.1 ns at 1 ns/unit = 0.1 units.
        assert!((sigma - 0.1).abs() < 0.01, "sigma {sigma}");
    }

    #[test]
    fn starved_inverter_tracks_negative_log() {
        let si = StarvedInverterVtc::calibrated(scale());
        // The behavioural curve should track -ln within a fraction of a
        // unit across ~8.7 bits of dynamic range.
        assert!(
            si.max_deviation_units() < 0.6,
            "{}",
            si.max_deviation_units()
        );
        // And must be monotone decreasing.
        let mut prev = f64::INFINITY;
        for i in 1..=50 {
            let d = si.convert_ideal(i as f64 / 50.0).delay();
            assert!(d <= prev + 1e-12);
            prev = d;
        }
    }

    #[test]
    fn convert_with_hoisted_sampler_is_bit_identical() {
        // Regression for the per-pixel sampler hoist: a single sampler
        // shared across a whole stream (reset at each pixel entry) must
        // reproduce the fresh-sampler-per-pixel golden stream bit for bit
        // in every noise configuration — including both-sources, where a
        // carried polar spare would shift the rng draw order.
        let configs = [(0.0, 0.0), (0.05, 0.0), (0.0, 0.1), (0.05, 0.1)];
        for &(pre, post) in &configs {
            let vtc = VtcModel::ideal(scale()).with_noise(pre, post);
            let pixels: Vec<f64> = (0..257).map(|i| f64::from(i) / 256.0).collect();

            let mut golden_rng = SmallRng::seed_from_u64(0xD1CE);
            let golden: Vec<u64> = pixels
                .iter()
                .map(|&p| vtc.convert(p, &mut golden_rng).delay().to_bits())
                .collect();

            let mut rng = SmallRng::seed_from_u64(0xD1CE);
            let mut sampler = NormalSampler::new();
            let hoisted: Vec<u64> = pixels
                .iter()
                .map(|&p| {
                    vtc.convert_with(p, &mut rng, &mut sampler)
                        .delay()
                        .to_bits()
                })
                .collect();

            assert_eq!(golden, hoisted, "pre={pre} post={post}");
        }
    }

    #[test]
    fn convert_ideal_row_identical_mode_is_bitwise() {
        let vtc = VtcModel::ideal(scale());
        let pixels: Vec<f64> = (0..100).map(|i| f64::from(i) / 99.0).collect();
        let want: Vec<u64> = pixels
            .iter()
            .map(|&p| vtc.convert_ideal(p).delay().to_bits())
            .collect();
        let got: Vec<u64> = vtc
            .convert_ideal_row(&pixels, false)
            .iter()
            .map(|v| v.delay().to_bits())
            .collect();
        assert_eq!(want, got);
    }

    #[test]
    fn convert_ideal_row_tolerant_mode_is_close() {
        let vtc = VtcModel::ideal(scale());
        // Include the boundary pixels: exactly 0, exactly 1 (delay -0.0
        // flattening is allowed in tolerant mode), below the floor.
        let mut pixels: Vec<f64> = (0..100).map(|i| f64::from(i) / 99.0).collect();
        pixels.extend_from_slice(&[0.0, 1.0, 1e-9, 0.5]);
        let got = vtc.convert_ideal_row(&pixels, true);
        for (i, (&p, g)) in pixels.iter().zip(&got).enumerate() {
            let want = vtc.convert_ideal(p).delay();
            assert!(
                (g.delay() - want).abs() < 1e-12 * want.abs().max(1.0),
                "idx {i}: pixel {p} gave {} want {want}",
                g.delay()
            );
        }
    }

    #[test]
    fn starved_inverter_scales_with_unit() {
        let a = StarvedInverterVtc::calibrated(UnitScale::new(1.0, 50.0));
        let b = StarvedInverterVtc::calibrated(UnitScale::new(5.0, 50.0));
        // Delays in *units* should agree regardless of the physical scale.
        let da = a.convert_ideal(0.3).delay();
        let db = b.convert_ideal(0.3).delay();
        assert!((da - db).abs() < 0.2, "{da} vs {db}");
    }
}
