//! Property-based tests of the circuit models' invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ta_circuits::{
    EnergyModel, NldeUnit, NlseUnit, NoiseModel, NoiseRealization, TdcModel, UnitScale, VtcModel,
};
use ta_delay_space::DelayValue;

fn scale_strategy() -> impl Strategy<Value = UnitScale> {
    (0.1..20.0f64, 1.0..200.0f64).prop_map(|(u, m)| UnitScale::new(u, m))
}

proptest! {
    #[test]
    fn vtc_transfer_is_monotone_and_in_range(
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
        scale in scale_strategy(),
    ) {
        let vtc = VtcModel::ideal(scale);
        let da = vtc.convert_ideal(a);
        let db = vtc.convert_ideal(b);
        // Larger pixel ⇒ earlier (or equal) edge.
        if a >= b {
            prop_assert!(da <= db);
        }
        // All edges land inside the converter's dynamic range.
        prop_assert!(da.delay() >= 0.0);
        prop_assert!(da.delay() <= vtc.max_delay_units() + 1e-12);
    }

    #[test]
    fn tdc_roundtrip_error_bounded_by_half_lsb(
        t in 0.0..50.0f64,
        bits in 4u32..20,
        lsb_fs in 500u64..1_000_000,
        scale in scale_strategy(),
    ) {
        let tdc = TdcModel::new(bits, lsb_fs);
        let edge = DelayValue::from_delay(t);
        let q = tdc.quantize(edge, scale);
        let in_range = scale.to_ns(t) <= tdc.full_scale_ns();
        if in_range {
            prop_assert!(
                (q.delay() - t).abs() <= tdc.quantization_error_units(scale) + 1e-12,
                "t={t}: quantised to {}", q.delay()
            );
        } else {
            // Saturates at full scale, never beyond.
            prop_assert!(scale.to_ns(q.delay()) <= tdc.full_scale_ns() + 1e-9);
        }
    }

    #[test]
    fn nlse_unit_output_respects_min_bounds(
        x in -5.0..10.0f64,
        y in -5.0..10.0f64,
        terms in 1usize..10,
    ) {
        let unit = NlseUnit::with_terms(terms, UnitScale::default_1ns());
        let out = unit.eval_ideal(DelayValue::from_delay(x), DelayValue::from_delay(y));
        let k = unit.latency_units();
        prop_assert!(out.delay() <= x.min(y) + k + 1e-12);
        prop_assert!(out.delay() >= x.min(y) + k - 2.0_f64.ln() - 1e-12);
    }

    #[test]
    fn nlde_unit_never_outputs_before_minuend(
        x in 0.0..5.0f64,
        gap in 0.0..5.0f64,
        terms in 1usize..12,
    ) {
        let unit = NldeUnit::with_terms(terms, UnitScale::default_1ns());
        let out = unit.eval_ideal(
            DelayValue::from_delay(x),
            DelayValue::from_delay(x + gap),
        );
        // A difference is never larger than the minuend: the output edge
        // (shift included) cannot precede x + min(E_i) + K ≥ x.
        if !out.is_never() {
            prop_assert!(out.delay() >= x - 1e-12);
        }
    }

    #[test]
    fn noise_realization_never_negative_and_unbiased_at_zero(
        nominal in 0.0..20.0f64,
        seed in 0u64..500,
        scale in scale_strategy(),
    ) {
        let model = NoiseModel::asplos24(10.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let r = model.begin_eval(scale, &mut rng);
        let v = r.perturb_units(nominal, &mut rng);
        prop_assert!(v >= 0.0);
        // Zero delay stays exactly zero (no element, no jitter).
        prop_assert_eq!(r.perturb_units(0.0, &mut rng), 0.0);
    }

    #[test]
    fn ideal_realization_is_identity(
        nominal in 0.0..20.0f64,
        scale in scale_strategy(),
    ) {
        let r = NoiseRealization::ideal(scale);
        let mut rng = SmallRng::seed_from_u64(0);
        // Identity up to the to_ns/to_units roundtrip's 1-ulp rounding.
        let v = r.perturb_units(nominal, &mut rng);
        prop_assert!((v - nominal).abs() <= 1e-12 * (1.0 + nominal));
    }

    #[test]
    fn unit_energy_monotone_in_terms_and_fired_inputs(
        terms in 1usize..12,
        scale in scale_strategy(),
    ) {
        let m = EnergyModel::asplos24();
        let small = NlseUnit::with_terms(terms, scale);
        let big = NlseUnit::with_terms(terms + 1, scale);
        prop_assert!(big.energy_pj(&m, 2) >= small.energy_pj(&m, 2));
        // A second fired input can only add switching (equality occurs for
        // a single term whose hi-chain is a fraction of an element).
        prop_assert!(small.energy_pj(&m, 2) >= small.energy_pj(&m, 1));
        prop_assert_eq!(small.energy_pj(&m, 0), 0.0);
    }

    #[test]
    fn delay_energy_scales_linearly(
        units in 0.01..50.0f64,
        factor in 1.0..10.0f64,
        scale in scale_strategy(),
    ) {
        let m = EnergyModel::asplos24();
        let e1 = m.delay_units_pj(units, scale);
        let ef = m.delay_units_pj(units * factor, scale);
        prop_assert!((ef / e1 - factor).abs() < 1e-9);
    }
}
