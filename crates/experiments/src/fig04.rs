//! Fig 4: the optimised four max-term nLSE approximation on the positive
//! half-slice (the fit our Chebyshev constructor produces in place of the
//! paper's Pyomo + KNITRO run).

use ta_approx::{nlse_slice_exact, NlseApprox};

/// The fitted approximation and its sampled curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig04 {
    /// The fitted `(C_i, D_i)` constants.
    pub terms: Vec<(f64, f64)>,
    /// `(x', exact, approx)` samples over `[0, 2]`.
    pub curve: Vec<(f64, f64, f64)>,
    /// Worst absolute error over the fitted domain.
    pub max_error: f64,
}

/// Fits `n_terms` max-terms (the figure uses 4) and samples both curves at
/// `samples` points.
///
/// # Panics
///
/// Panics if `n_terms == 0` or `samples < 2`.
pub fn compute(n_terms: usize, samples: usize) -> Fig04 {
    assert!(samples >= 2, "need at least two samples");
    let approx = NlseApprox::fit(n_terms);
    let curve = (0..samples)
        .map(|i| {
            let x = 2.0 * i as f64 / (samples - 1) as f64;
            (x, nlse_slice_exact(x), approx.eval_slice(x))
        })
        .collect();
    Fig04 {
        terms: approx.terms().to_vec(),
        curve,
        max_error: approx.max_slice_error(),
    }
}

/// Renders the fit constants and the two curves.
pub fn render(data: &Fig04) -> String {
    let mut out = format!(
        "Fig 4 — optimised {} max-term nLSE approximation (half-slice x' ≥ 0)\n\nfitted constants (C_i, D_i):\n",
        data.terms.len()
    );
    for (i, (c, d)) in data.terms.iter().enumerate() {
        out.push_str(&format!("  term {i}: C = {c:+.4}, D = {d:+.4}\n"));
    }
    let rows: Vec<Vec<String>> = data
        .curve
        .iter()
        .map(|&(x, e, a)| {
            vec![
                format!("{x:.3}"),
                format!("{e:.4}"),
                format!("{a:.4}"),
                format!("{:+.4}", a - e),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&crate::format_table(
        &["x'", "nLSE(x',-x')", "approx", "err"],
        &rows,
    ));
    out.push_str(&format!(
        "\nminimax error over [0, 4]: {:.4} delay units\n",
        data.max_error
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_terms_track_the_curve() {
        let d = compute(4, 41);
        assert_eq!(d.terms.len(), 4);
        for &(x, e, a) in &d.curve {
            assert!((a - e).abs() <= d.max_error + 1e-9, "x={x}");
        }
        // Equioscillating fit: the bound is actually attained somewhere.
        let attained = d
            .curve
            .iter()
            .map(|&(_, e, a)| (a - e).abs())
            .fold(0.0_f64, f64::max);
        assert!(attained > 0.5 * d.max_error);
    }

    #[test]
    fn render_lists_constants() {
        let s = render(&compute(4, 9));
        assert!(s.contains("term 3:"));
        assert!(s.contains("minimax error"));
    }
}
