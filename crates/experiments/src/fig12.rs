//! Fig 12: the Sobel design-space exploration — energy per frame against
//! range-normalised RMSE for every (unit scale, nLSE terms, nLDE terms)
//! configuration, with the Pareto frontier marked.

use ta_core::dse::{self, DsePoint, SweepGrid};
use ta_core::SystemDescription;
use ta_image::{synth, Image, Kernel};

/// Parameters of the exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Image edge length (the paper uses 150).
    pub image_size: usize,
    /// Number of evaluation images (the paper uses 5).
    pub images: usize,
    /// The sweep grid.
    pub grid: SweepGrid,
}

impl Params {
    /// The paper's full exploration: 150×150, five images, the default
    /// grid (§5.3).
    pub fn full(seed: u64) -> Self {
        Params {
            image_size: 150,
            images: 5,
            grid: SweepGrid {
                seed,
                ..SweepGrid::default()
            },
        }
    }

    /// A reduced exploration for tests and benches.
    pub fn quick(seed: u64) -> Self {
        Params {
            image_size: 48,
            images: 2,
            grid: SweepGrid {
                nlse_terms: vec![5, 10],
                nlde_terms: vec![5, 20],
                unit_scales_ns: vec![1.0, 5.0],
                element_multiplier: 50.0,
                seed,
            },
        }
    }
}

/// Runs the exploration over the Sobel pair.
///
/// # Panics
///
/// Panics if the parameters produce an invalid system (e.g. image smaller
/// than the kernel).
pub fn compute(params: &Params) -> Vec<DsePoint> {
    let desc = SystemDescription::new(
        params.image_size,
        params.image_size,
        vec![Kernel::sobel_x(), Kernel::sobel_y()],
        1,
    )
    .expect("Sobel fits any image ≥ 3×3");
    let images: Vec<Image> = (0..params.images as u64)
        .map(|i| synth::natural_image(params.image_size, params.image_size, params.grid.seed ^ i))
        .collect();
    dse::explore(&desc, &images, &params.grid).expect("grid configurations compile")
}

/// Renders the scatter as a table (sorted by energy) with Pareto markers.
pub fn render(points: &[DsePoint]) -> String {
    let mut sorted: Vec<&DsePoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.energy_uj.total_cmp(&b.energy_uj));
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.unit_ns),
                p.nlse_terms.to_string(),
                p.nlde_terms.to_string(),
                format!("{:.2}", p.energy_uj),
                format!("{:.4}", p.rmse),
                if p.pareto { "*".into() } else { "".into() },
            ]
        })
        .collect();
    let mut out =
        String::from("Fig 12 — Sobel design-space exploration (* = Pareto-optimal frontier)\n");
    out.push_str(&crate::format_table(
        &[
            "unit (ns)",
            "nLSE terms",
            "nLDE terms",
            "energy (µJ)",
            "RMSE",
            "Pareto",
        ],
        &rows,
    ));
    let frontier: Vec<String> = sorted
        .iter()
        .filter(|p| p.pareto)
        .map(|p| format!("({:.0} ns, {}, {})", p.unit_ns, p.nlse_terms, p.nlde_terms))
        .collect();
    out.push_str(&format!("\nPareto frontier: {}\n", frontier.join(", ")));
    out.push_str(
        "paper's highlighted frontier points: (1 ns, 7, 20), (5 ns, 10, 20), (10 ns, 10, 20)\n",
    );
    out
}

/// Serialises the scatter as CSV (`unit_ns,nlse_terms,nlde_terms,
/// energy_uj,rmse,pareto`) for external plotting.
pub fn to_csv(points: &[DsePoint]) -> String {
    let mut out = String::from("unit_ns,nlse_terms,nlde_terms,energy_uj,rmse,pareto\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{}\n",
            p.unit_ns, p.nlse_terms, p.nlde_terms, p.energy_uj, p.rmse, p.pareto as u8
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_exploration_shape() {
        let points = compute(&Params::quick(7));
        // 2 units × 2 nLSE × 2 nLDE (Sobel has negatives).
        assert_eq!(points.len(), 8);
        // Energy groups by unit scale: every 5 ns point above every 1 ns.
        let max1 = points
            .iter()
            .filter(|p| p.unit_ns == 1.0)
            .map(|p| p.energy_uj)
            .fold(0.0_f64, f64::max);
        let min5 = points
            .iter()
            .filter(|p| p.unit_ns == 5.0)
            .map(|p| p.energy_uj)
            .fold(f64::INFINITY, f64::min);
        assert!(min5 > max1);
        // At least one Pareto point exists and the cheapest point is one.
        assert!(points.iter().any(|p| p.pareto));
    }

    #[test]
    fn csv_is_machine_readable() {
        let points = compute(&Params::quick(9));
        let csv = to_csv(&points);
        assert_eq!(csv.lines().count(), points.len() + 1);
        assert!(csv.starts_with("unit_ns,"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 6);
        }
    }

    #[test]
    fn render_lists_frontier() {
        let s = render(&compute(&Params::quick(8)));
        assert!(s.contains("Pareto frontier:"));
        assert!(s.contains('*'));
    }
}
