//! Table 1: the convolution benchmarks and their filter configurations.

use ta_image::Kernel;

/// One benchmark row: `(function, description, kernels, stride)`.
pub struct Benchmark {
    /// Function name as the paper lists it.
    pub name: &'static str,
    /// The paper's description column.
    pub description: &'static str,
    /// The filter bank.
    pub kernels: Vec<Kernel>,
    /// Convolution stride.
    pub stride: usize,
}

/// The three Table 1 benchmarks, built from this workspace's own kernel
/// constructors.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Sobel",
            description: "Edge Detection",
            kernels: vec![Kernel::sobel_x(), Kernel::sobel_y()],
            stride: 1,
        },
        Benchmark {
            name: "pyrDown",
            description: "Blur and Downsample",
            kernels: vec![Kernel::pyr_down_5x5()],
            stride: 2,
        },
        Benchmark {
            name: "GaussianBlur",
            description: "Blur with Gaussian filter",
            kernels: vec![Kernel::gaussian(7, 0.0)],
            stride: 1,
        },
    ]
}

/// Renders Table 1.
pub fn render() -> String {
    let rows: Vec<Vec<String>> = benchmarks()
        .iter()
        .map(|b| {
            let k = &b.kernels[0];
            vec![
                b.name.into(),
                b.description.into(),
                format!(
                    "{}x{}, {}, {}",
                    k.width(),
                    k.height(),
                    b.stride,
                    b.kernels.len()
                ),
                if b.kernels.iter().any(|k| k.has_negative_weights()) {
                    "yes (split rails + nLDE)".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    let mut out = String::from("Table 1 — convolution benchmarks\n");
    out.push_str(&crate::format_table(
        &[
            "Function",
            "Description",
            "Filter config (size, stride, #)",
            "negative weights",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_configs() {
        let b = benchmarks();
        assert_eq!(b.len(), 3);
        assert_eq!(
            (b[0].kernels[0].width(), b[0].stride, b[0].kernels.len()),
            (3, 1, 2)
        );
        assert_eq!(
            (b[1].kernels[0].width(), b[1].stride, b[1].kernels.len()),
            (5, 2, 1)
        );
        assert_eq!(
            (b[2].kernels[0].width(), b[2].stride, b[2].kernels.len()),
            (7, 1, 1)
        );
        // Only Sobel has negative weights (§5.3).
        assert!(b[0].kernels[0].has_negative_weights());
        assert!(!b[1].kernels[0].has_negative_weights());
        assert!(!b[2].kernels[0].has_negative_weights());
    }

    #[test]
    fn render_has_three_rows() {
        let s = render();
        assert!(s.contains("Sobel") && s.contains("pyrDown") && s.contains("GaussianBlur"));
    }
}
