//! Table 3: the head-to-head against the processing-in-pixel (PIP)
//! imager — energy per pixel per frame, frame delay, energy–delay product
//! and accuracy for the 1.5-bit edge-detection convolution at six
//! shape/stride configurations.

use ta_baseline::pip::PipModel;
use ta_circuits::{TdcModel, UnitScale};
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{conv, metrics, synth, Kernel};

/// The delay-space configuration Table 3 uses (§5.3): 1 ns units,
/// 10 max-terms, 20 inhibit-terms.
pub const DELAY_SPACE_CONFIG: (f64, usize, usize) = (1.0, 10, 20);

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Kernel shape `(width, height)`.
    pub shape: (usize, usize),
    /// Stride.
    pub stride: usize,
    /// PIP energy per pixel per frame, pJ (silicon measurement).
    pub pip_energy_pj: f64,
    /// PIP frame delay, ms.
    pub pip_delay_ms: f64,
    /// PIP error, %RMSE (our functional PIP simulator).
    pub pip_error_pct: f64,
    /// Delay-space energy per pixel per frame (incl. VTC), pJ.
    pub ds_energy_pj: f64,
    /// Delay-space energy including TDC, pJ.
    pub ds_energy_tdc_pj: f64,
    /// Delay-space minimum frame delay, ms.
    pub ds_delay_ms: f64,
    /// Delay-space error, %RMSE.
    pub ds_error_pct: f64,
}

impl Table3Row {
    /// PIP's energy–delay product, pJ·ms.
    pub fn pip_edp(&self) -> f64 {
        self.pip_energy_pj * self.pip_delay_ms
    }

    /// Delay space's energy–delay product (no TDC), pJ·ms.
    pub fn ds_edp(&self) -> f64 {
        self.ds_energy_pj * self.ds_delay_ms
    }

    /// Delay space's energy–delay product with TDC, pJ·ms.
    pub fn ds_edp_tdc(&self) -> f64 {
        self.ds_energy_tdc_pj * self.ds_delay_ms
    }
}

/// Runs the comparison on `size × size` frames (the paper uses the same
/// 150×150 evaluation geometry).
///
/// # Panics
///
/// Panics if `size < 4`.
pub fn compute(size: usize, seed: u64) -> Vec<Table3Row> {
    assert!(size >= 4, "frames must fit the 4×4 kernel");
    let pip = PipModel::asplos24();
    let img = synth::natural_image(size, size, seed);
    let pixels = (size * size) as f64;
    let mut rows = Vec::new();

    for (w, h) in [(2, 2), (2, 4), (4, 4)] {
        for stride in [2, 4] {
            let kernel = Kernel::edge_ternary(w, h);
            // PIP side.
            let pip_energy_pj = pip.energy_per_pixel_pj(&kernel, stride);
            let pip_delay_ms = pip.frame_delay_ms(&kernel, stride);
            let pip_error_pct = pip.percent_rmse(&img, &kernel, stride, seed);

            // Delay-space side.
            let (unit_ns, nlse, nlde) = DELAY_SPACE_CONFIG;
            let desc = SystemDescription::new(size, size, vec![kernel.clone()], stride)
                .expect("edge kernels fit the frame");
            let base_cfg = ArchConfig::new(UnitScale::new(unit_ns, 50.0), nlse, nlde);
            let arch =
                Architecture::new(desc.clone(), base_cfg.clone()).expect("feasible schedule");
            let arch_tdc = Architecture::new(desc, base_cfg.with_tdc(TdcModel::asplos24()))
                .expect("feasible schedule");

            let run = exec::run(&arch, &img, ArithmeticMode::DelayApproxNoisy, seed)
                .expect("geometry matches");
            let reference = conv::convolve(&img, &kernel, stride);
            let ds_error_pct = metrics::percent_rmse(&run.outputs[0], &reference);

            rows.push(Table3Row {
                shape: (w, h),
                stride,
                pip_energy_pj,
                pip_delay_ms,
                pip_error_pct,
                ds_energy_pj: arch.energy_per_frame().total_pj() / pixels,
                ds_energy_tdc_pj: arch_tdc.energy_per_frame().total_pj() / pixels,
                ds_delay_ms: run.timing.frame_delay_ms(),
                ds_error_pct,
            });
        }
    }
    rows
}

/// The published delay-space columns for comparison:
/// `(w, h, stride, energy, energy w/TDC, delay ms, error %)`.
pub fn published_delay_space() -> [(usize, usize, usize, f64, f64, f64, f64); 6] {
    [
        (2, 2, 2, 16.4, 21.9, 7.35e-4, 3.69),
        (2, 2, 4, 4.2, 9.8, 7.35e-4, 3.51),
        (2, 4, 2, 21.3, 26.8, 7.35e-4, 3.02),
        (2, 4, 4, 5.46, 11.0, 7.35e-4, 3.6),
        (4, 4, 2, 41.0, 46.6, 1.47e-3, 2.8),
        (4, 4, 4, 10.3, 15.9, 1.47e-3, 3.2),
    ]
}

/// Renders the full comparison table.
pub fn render(rows: &[Table3Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.shape.0, r.shape.1),
                r.stride.to_string(),
                format!("{:.1}", r.pip_energy_pj),
                format!("{:.1}", r.pip_delay_ms),
                format!("{:.2e}", r.pip_edp()),
                format!("{:.2}", r.pip_error_pct),
                format!("{:.1}", r.ds_energy_pj),
                format!("{:.1}", r.ds_energy_tdc_pj),
                format!("{:.2e}", r.ds_delay_ms),
                format!("{:.2e}", r.ds_edp()),
                format!("{:.2e}", r.ds_edp_tdc()),
                format!("{:.2}", r.ds_error_pct),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table 3 — PIP vs delay space (1.5-bit edge convolution; energies pJ/pixel/frame)\n",
    );
    out.push_str(&crate::format_table(
        &[
            "Shape",
            "Stride",
            "PIP E",
            "PIP D(ms)",
            "PIP ExD",
            "PIP %RMSE",
            "DS E",
            "DS E+TDC",
            "DS D(ms)",
            "DS ExD",
            "DS ExD+TDC",
            "DS %RMSE",
        ],
        &table,
    ));
    // Headline claims.
    let wins = rows
        .iter()
        .filter(|r| r.ds_energy_pj < r.pip_energy_pj)
        .count();
    let edp_gain: f64 = rows
        .iter()
        .map(|r| r.pip_edp() / r.ds_edp())
        .fold(f64::INFINITY, f64::min);
    let ratio = |w, h| {
        rows.iter()
            .find(|r| r.shape == (w, h) && r.stride == 2)
            .map(|r| r.ds_energy_pj / r.pip_energy_pj)
            .unwrap_or(f64::NAN)
    };
    out.push_str(&format!(
        "\ndelay space wins raw energy (temporal output) in {wins}/6 configurations;\nDS/PIP energy ratio at stride 2 falls with kernel area: {:.2} (2x2) -> {:.2} (2x4) -> {:.2} (4x4)\n(the paper's trend: 'as the convolution gets larger and the stride stays small,\nthe energy improvements of the delay space architecture become more significant');\nminimum energy-delay-product advantage: {edp_gain:.1e}x (paper: ~4 orders of magnitude)\n",
        ratio(2, 2),
        ratio(2, 4),
        ratio(4, 4),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_space_beats_pip_shape() {
        let rows = compute(64, 5);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // E×D product: orders of magnitude in delay space's favour
            // (the paper's strongest claim; see EXPERIMENTS.md for the
            // raw-energy calibration discussion).
            assert!(r.ds_edp() < 1e-2 * r.pip_edp());
        }
        // Delay-space accuracy beats PIP's on aggregate (paper: ~3% vs
        // ~5-8%; individual rows fluctuate with the noise seed).
        let mean =
            |f: &dyn Fn(&Table3Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
        assert!(
            mean(&|r| r.ds_error_pct) < mean(&|r| r.pip_error_pct),
            "ds {} !< pip {}",
            mean(&|r| r.ds_error_pct),
            mean(&|r| r.pip_error_pct)
        );
        // The paper's scaling trend: delay space gains on PIP as the
        // kernel grows at small stride.
        let ratio = |w, h| {
            let r = rows
                .iter()
                .find(|r| r.shape == (w, h) && r.stride == 2)
                .unwrap();
            r.ds_energy_pj / r.pip_energy_pj
        };
        assert!(ratio(4, 4) < ratio(2, 2));
    }

    #[test]
    fn energy_grows_with_kernel_and_shrinks_with_stride() {
        let rows = compute(48, 6);
        let find = |w, h, s| {
            rows.iter()
                .find(|r| r.shape == (w, h) && r.stride == s)
                .unwrap()
        };
        assert!(find(4, 4, 2).ds_energy_pj > find(2, 2, 2).ds_energy_pj);
        assert!(find(2, 2, 4).ds_energy_pj < find(2, 2, 2).ds_energy_pj);
    }

    #[test]
    fn tdc_premium_is_per_pixel() {
        let rows = compute(48, 7);
        for r in &rows {
            let premium = r.ds_energy_tdc_pj - r.ds_energy_pj;
            assert!((premium - 5.5).abs() < 1e-9);
        }
    }

    #[test]
    fn render_has_headline() {
        let s = render(&compute(32, 8));
        assert!(s.contains("energy-delay-product advantage"));
    }
}
