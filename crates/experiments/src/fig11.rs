//! Fig 11: approximation accuracy vs term count, noiseless and under the
//! two hardware jitter sources.
//!
//! * **(a)** noiseless nLSE and nLDE RMSE vs term count (the paper's
//!   "infinite precision" panel);
//! * **(b)** nLSE accuracy vs terms under PSIJ for several V_DD swings;
//! * **(c)** nLSE accuracy vs terms under RJ with *minimal* delay
//!   elements, for several unit scales;
//! * **(d)** the same with 50× elements — the configuration the rest of
//!   the evaluation uses.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ta_approx::accuracy::{self, AccuracyReport};
use ta_approx::{NldeApprox, NlseApprox};
use ta_circuits::{NldeUnit, NlseUnit, NoiseModel, UnitScale};
use ta_delay_space::DelayValue;

/// One accuracy-vs-terms series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Label shown in the legend (e.g. `"PSIJ 50 mV"`).
    pub label: String,
    /// `(terms, range-normalised RMSE)` points.
    pub points: Vec<(usize, f64)>,
}

/// All four panels.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// Panel (a): noiseless nLSE and nLDE.
    pub noiseless: Vec<Series>,
    /// Panel (b): PSIJ sweep (V_DD swing).
    pub psij: Vec<Series>,
    /// Panel (c): RJ at minimal element delay (unit-scale sweep).
    pub rj_minimal: Vec<Series>,
    /// Panel (d): RJ at 50× element delay.
    pub rj_50x: Vec<Series>,
    /// Bonus panel (e): the nLDE noise trade-off the paper describes but
    /// omits "due to space constraints" (§5.2) — RJ at 50× elements.
    pub nlde_rj_50x: Vec<Series>,
}

/// Default term sweep of the figure.
pub fn default_terms() -> Vec<usize> {
    vec![1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20]
}

/// Measures the Monte-Carlo accuracy of a *hardware* nLSE unit under a
/// noise model: uniform `[0,1]²` operands, addition in delay space through
/// `NlseUnit::eval_noisy`, range-normalised RMSE in importance space —
/// the exact protocol of §5.2.
pub fn noisy_nlse_accuracy(
    terms: usize,
    model: NoiseModel,
    scale: UnitScale,
    samples: usize,
    seed: u64,
) -> AccuracyReport {
    let unit = NlseUnit::with_terms(terms, scale);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1_611);
    let k = unit.latency_units();
    accuracy::accuracy_with(samples, seed, |a, b| {
        let x = DelayValue::encode(a).expect("uniform sample is encodable");
        let y = DelayValue::encode(b).expect("uniform sample is encodable");
        let realization = model.begin_eval(scale, &mut rng);
        let got = unit.eval_noisy(x, y, &realization, &mut rng).delayed(-k);
        (got.decode(), a + b)
    })
}

/// Measures a hardware nLDE unit's accuracy under noise: uniform pairs,
/// larger minus smaller, through `NldeUnit::eval_noisy`.
pub fn noisy_nlde_accuracy(
    terms: usize,
    model: NoiseModel,
    scale: UnitScale,
    samples: usize,
    seed: u64,
) -> AccuracyReport {
    let unit = NldeUnit::with_terms(terms, scale);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1_611D);
    let k = unit.latency_units();
    accuracy::accuracy_with(samples, seed, |a, b| {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let x = DelayValue::encode(hi).expect("uniform sample is encodable");
        let y = DelayValue::encode(lo).expect("uniform sample is encodable");
        let realization = model.begin_eval(scale, &mut rng);
        let got = unit.eval_noisy(x, y, &realization, &mut rng).delayed(-k);
        (got.decode(), hi - lo)
    })
}

/// Computes all four panels with `samples` Monte-Carlo pairs per point
/// (the paper uses one million).
pub fn compute(terms: &[usize], samples: usize, seed: u64) -> Fig11 {
    let noiseless = vec![
        Series {
            label: "nLSE (no noise)".into(),
            points: terms
                .iter()
                .map(|&n| {
                    (
                        n,
                        accuracy::nlse_accuracy(&NlseApprox::fit(n), samples, seed).rmse,
                    )
                })
                .collect(),
        },
        Series {
            label: "nLDE (no noise)".into(),
            points: terms
                .iter()
                .map(|&n| {
                    (
                        n,
                        accuracy::nlde_accuracy(&NldeApprox::fit(n), samples, seed).rmse,
                    )
                })
                .collect(),
        },
    ];

    // (b) PSIJ only: RJ disabled, swing swept, 1 ns / 50× reference scale.
    let psij = [1.0, 10.0, 50.0, 100.0]
        .iter()
        .map(|&swing| {
            let model = NoiseModel {
                rj_fraction: 0.0,
                ..NoiseModel::asplos24(swing)
            };
            Series {
                label: format!("PSIJ, {swing:.0} mV swing"),
                points: terms
                    .iter()
                    .map(|&n| {
                        (
                            n,
                            noisy_nlse_accuracy(n, model, UnitScale::new(1.0, 50.0), samples, seed)
                                .rmse,
                        )
                    })
                    .collect(),
            }
        })
        .collect();

    // (c)/(d) RJ only: PSIJ disabled, unit scale swept.
    let rj_panel = |multiplier: f64| -> Vec<Series> {
        [0.1, 1.0, 5.0, 10.0]
            .iter()
            .map(|&unit_ns| {
                let model = NoiseModel {
                    psij_per_mv: 0.0,
                    ..NoiseModel::asplos24(0.0)
                };
                Series {
                    label: format!("RJ, {unit_ns} ns unit"),
                    points: terms
                        .iter()
                        .map(|&n| {
                            (
                                n,
                                noisy_nlse_accuracy(
                                    n,
                                    model,
                                    UnitScale::new(unit_ns, multiplier),
                                    samples,
                                    seed,
                                )
                                .rmse,
                            )
                        })
                        .collect(),
                }
            })
            .collect()
    };

    // Bonus panel (e): nLDE under RJ at 50× elements.
    let nlde_rj_50x = [0.1, 1.0, 5.0, 10.0]
        .iter()
        .map(|&unit_ns| {
            let model = NoiseModel {
                psij_per_mv: 0.0,
                ..NoiseModel::asplos24(0.0)
            };
            Series {
                label: format!("nLDE RJ, {unit_ns} ns unit"),
                points: terms
                    .iter()
                    .map(|&n| {
                        (
                            n,
                            noisy_nlde_accuracy(
                                n,
                                model,
                                UnitScale::new(unit_ns, 50.0),
                                samples,
                                seed,
                            )
                            .rmse,
                        )
                    })
                    .collect(),
            }
        })
        .collect();

    Fig11 {
        noiseless,
        psij,
        rj_minimal: rj_panel(1.0),
        rj_50x: rj_panel(50.0),
        nlde_rj_50x,
    }
}

fn render_panel(title: &str, terms: &[usize], series: &[Series]) -> String {
    let mut header: Vec<String> = vec!["terms".into()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = terms
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![n.to_string()];
            for s in series {
                row.push(format!("{:.4}", s.points[i].1));
            }
            row
        })
        .collect();
    format!("{title}\n{}\n", crate::format_table(&header_refs, &rows))
}

/// Renders all four panels.
pub fn render(terms: &[usize], data: &Fig11) -> String {
    let mut out = String::from("Fig 11 — approximation accuracy (range-normalised RMSE)\n\n");
    out.push_str(&render_panel("(a) noiseless", terms, &data.noiseless));
    out.push('\n');
    out.push_str(&render_panel(
        "(b) PSIJ (1 ns unit, 50× elements)",
        terms,
        &data.psij,
    ));
    out.push('\n');
    out.push_str(&render_panel(
        "(c) RJ, minimal element delay",
        terms,
        &data.rj_minimal,
    ));
    out.push('\n');
    out.push_str(&render_panel(
        "(d) RJ, 50× element delay",
        terms,
        &data.rj_50x,
    ));
    out.push('\n');
    out.push_str(&render_panel(
        "(e) bonus: nLDE under RJ, 50× element delay (omitted from the paper for space)",
        terms,
        &data.nlde_rj_50x,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: usize = 4_000;

    #[test]
    fn noiseless_error_falls_then_plateaus() {
        let terms = [1, 4, 8, 16];
        let d = compute(&terms, QUICK, 1);
        let nlse = &d.noiseless[0].points;
        assert!(nlse[1].1 < nlse[0].1);
        assert!(nlse[2].1 < nlse[1].1);
        // Diminishing returns past ~8 terms (§5.2).
        let gain_early = nlse[0].1 / nlse[2].1;
        let gain_late = nlse[2].1 / nlse[3].1;
        assert!(gain_early > 2.0 * gain_late);
    }

    #[test]
    fn psij_orders_by_swing() {
        let terms = [7];
        let d = compute(&terms, QUICK, 2);
        let at7: Vec<f64> = d.psij.iter().map(|s| s.points[0].1).collect();
        assert!(at7[3] > at7[0], "100 mV must hurt more than 1 mV");
    }

    #[test]
    fn rj_hurts_small_unit_scales_with_big_elements() {
        let terms = [10];
        let d = compute(&terms, QUICK, 3);
        // 50× elements: 0.1 ns unit scale must be far worse than 10 ns.
        let coarse: Vec<f64> = d.rj_50x.iter().map(|s| s.points[0].1).collect();
        assert!(coarse[0] > 2.0 * coarse[3], "{coarse:?}");
        // Minimal elements tame the worst case.
        let fine: Vec<f64> = d.rj_minimal.iter().map(|s| s.points[0].1).collect();
        assert!(fine[0] < coarse[0]);
    }

    #[test]
    fn render_contains_all_panels() {
        let terms = [2, 4];
        let s = render(&terms, &compute(&terms, 500, 4));
        for p in ["(a)", "(b)", "(c)", "(d)", "(e)"] {
            assert!(s.contains(p));
        }
    }

    #[test]
    fn nlde_less_noise_sensitive_than_nlse() {
        // §5.2: "the nLDE approximation is also affected by noise, but
        // because there is a larger difference between its approximation
        // constants, the noise impacts the accuracy to a lesser degree."
        // Compare the noise-induced *excess* over each function's own
        // noiseless floor at an aggressive RJ point.
        let model = NoiseModel {
            psij_per_mv: 0.0,
            ..NoiseModel::asplos24(0.0)
        };
        let scale = UnitScale::new(0.1, 50.0);
        let n = 10;
        let nlse_floor = accuracy::nlse_accuracy(&NlseApprox::fit(n), QUICK, 9).rmse;
        let nlde_floor = accuracy::nlde_accuracy(&NldeApprox::fit(n), QUICK, 9).rmse;
        let nlse_noisy = noisy_nlse_accuracy(n, model, scale, QUICK, 9).rmse;
        let nlde_noisy = noisy_nlde_accuracy(n, model, scale, QUICK, 9).rmse;
        let nlse_excess = nlse_noisy / nlse_floor;
        let nlde_excess = nlde_noisy / nlde_floor;
        assert!(
            nlde_excess < nlse_excess,
            "nLDE degradation {nlde_excess:.2}× vs nLSE {nlse_excess:.2}×"
        );
    }
}
