//! Fig 3: the representative slice `nLSE(x', -x')`, its plain-`min` bound,
//! and the improvement from the figure's single hand-picked max-term
//! (`C₀ = D₀ = -1`).

use ta_approx::{nlse_slice_exact, NlseApprox};

/// One sampled column of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig03Row {
    /// Slice coordinate `x'`.
    pub x: f64,
    /// Exact `nLSE(x', -x')`.
    pub exact: f64,
    /// The plain `min(x', -x')` bound.
    pub min_bound: f64,
    /// `min(x', -x', max(x' - 1, -x' - 1))` — the figure's example term.
    pub one_term: f64,
}

/// Samples Fig 3's domain `x' ∈ [-2, 2]` at `n` points.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn compute(n: usize) -> Vec<Fig03Row> {
    assert!(n >= 2, "need at least two samples");
    let approx = NlseApprox::from_terms(vec![(-1.0, -1.0)]);
    (0..n)
        .map(|i| {
            let x = -2.0 + 4.0 * i as f64 / (n - 1) as f64;
            Fig03Row {
                x,
                exact: nlse_slice_exact(x),
                min_bound: x.min(-x),
                one_term: approx.eval_slice(x),
            }
        })
        .collect()
}

/// Renders the three curves side by side with their worst-case errors.
pub fn render(rows: &[Fig03Row]) -> String {
    let mut table_rows = Vec::new();
    let mut worst_min = 0.0_f64;
    let mut worst_term = 0.0_f64;
    for r in rows {
        worst_min = worst_min.max((r.min_bound - r.exact).abs());
        worst_term = worst_term.max((r.one_term - r.exact).abs());
        table_rows.push(vec![
            format!("{:.3}", r.x),
            format!("{:.4}", r.exact),
            format!("{:.4}", r.min_bound),
            format!("{:.4}", r.one_term),
        ]);
    }
    let mut out = String::from("Fig 3 — nLSE slice vs min vs one max-term (C0=D0=-1)\n");
    out.push_str(&crate::format_table(
        &["x'", "nLSE(x',-x')", "min(x',-x')", "min+max-term"],
        &table_rows,
    ));
    out.push_str(&format!(
        "\nworst |error|: plain min = {worst_min:.4} (= ln 2 at x'=0), with max-term = {worst_term:.4}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape() {
        let rows = compute(81);
        // At x' = 0: exact = -ln2, min = 0, term = -1.
        let mid = &rows[40];
        assert!(mid.x.abs() < 1e-9);
        assert!((mid.exact + 2.0_f64.ln()).abs() < 1e-12);
        assert_eq!(mid.min_bound, 0.0);
        assert!((mid.one_term + 1.0).abs() < 1e-12);
        // The max-term improves the worst error.
        let worst_min = rows
            .iter()
            .map(|r| (r.min_bound - r.exact).abs())
            .fold(0.0_f64, f64::max);
        let worst_term = rows
            .iter()
            .map(|r| (r.one_term - r.exact).abs())
            .fold(0.0_f64, f64::max);
        assert!(worst_term < worst_min);
    }

    #[test]
    fn render_contains_errors() {
        assert!(render(&compute(9)).contains("worst |error|"));
    }
}
