//! Extended baseline: the conventional per-pixel-ADC digital pipeline the
//! paper's introduction argues against, compared against the delay-space
//! engine on the Table 1 benchmarks.
//!
//! Not a paper table. The comparison surfaces a *crossover*, not a
//! universal winner: the conventional pipeline pays a fixed conversion
//! cost per pixel plus very cheap digital MACs, while delay space pays a
//! cheap conversion (VTC) plus per-operation delay-line energy. Light
//! per-pixel workloads with expensive ADCs favour the temporal engine;
//! dense stride-1 filter stacks favour digital arithmetic.

use ta_baseline::digital::DigitalModel;
use ta_circuits::UnitScale;
use ta_core::{ArchConfig, Architecture, SystemDescription};

use crate::table1;

/// One benchmark's comparison, pJ per pixel per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalRow {
    /// Benchmark name.
    pub name: String,
    /// Effective MAC operations per pixel across the filter bank.
    pub ops_per_pixel: f64,
    /// Digital pipeline with a modern low-power SAR ADC (~40 pJ).
    pub digital_sar_pj: f64,
    /// Digital pipeline with a legacy/fast pipeline ADC (~250 pJ).
    pub digital_pipeline_pj: f64,
    /// Delay-space engine (incl. VTC), temporal output.
    pub delay_space_pj: f64,
}

/// Computes the comparison on `size × size` frames at the (1 ns, 7, 20)
/// configuration.
pub fn compute(size: usize) -> Vec<DigitalRow> {
    let sar = DigitalModel::conventional_65nm(); // 40 pJ ADC
    let pipeline = DigitalModel {
        adc_pj: 250.0,
        ..sar
    };
    table1::benchmarks()
        .into_iter()
        .map(|b| {
            let mut ops_per_pixel = 0.0;
            for k in &b.kernels {
                ops_per_pixel += (k.width() * k.height()) as f64 / (b.stride * b.stride) as f64;
            }
            // The filter bank shares one ADC pass; each kernel adds MACs.
            let digital = |m: &DigitalModel| m.adc_pj + m.mac_pj * ops_per_pixel;
            let desc = SystemDescription::new(size, size, b.kernels.clone(), b.stride)
                .expect("benchmarks fit the frame");
            let arch = Architecture::new(desc, ArchConfig::new(UnitScale::new(1.0, 50.0), 7, 20))
                .expect("feasible schedule");
            DigitalRow {
                name: b.name.to_string(),
                ops_per_pixel,
                digital_sar_pj: digital(&sar),
                digital_pipeline_pj: digital(&pipeline),
                delay_space_pj: arch.energy_per_frame().total_pj() / (size * size) as f64,
            }
        })
        .collect()
}

/// Renders the crossover analysis.
pub fn render(rows: &[DigitalRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}", r.ops_per_pixel),
                format!("{:.0}", r.digital_sar_pj),
                format!("{:.0}", r.digital_pipeline_pj),
                format!("{:.0}", r.delay_space_pj),
                if r.delay_space_pj < r.digital_pipeline_pj {
                    "vs pipeline ADC".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    let mut out = String::from(
        "Extended baseline — conventional digital pipeline vs delay space (pJ/pixel/frame)\n",
    );
    out.push_str(&crate::format_table(
        &[
            "Function",
            "ops/px",
            "digital (SAR ADC)",
            "digital (pipeline ADC)",
            "delay space",
            "DS wins?",
        ],
        &table,
    ));
    out.push_str(
        "\ncrossover, not a blanket win: the digital pipeline pays a fixed conversion per\npixel plus ~0.4 pJ per MAC; delay space pays a ~2.5 pJ VTC plus per-operation\ndelay-line energy. Low ops/pixel (strided, small kernels — the near-sensor\nregime the paper targets, cf. Table 3) favours temporal; dense stride-1 filter\nstacks favour digital arithmetic once pixels are digitised anyway.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_structure() {
        let rows = compute(64);
        assert_eq!(rows.len(), 3);
        // Digital cost is ADC-dominated for every benchmark.
        for r in &rows {
            assert!(r.digital_sar_pj < r.digital_pipeline_pj);
            let mac_part = r.digital_sar_pj - 40.0;
            assert!(
                mac_part / r.digital_sar_pj < 0.5,
                "{}: MACs dominate?",
                r.name
            );
        }
        // pyrDown (lightest ops/px) is the temporal engine's best case:
        // it beats the pipeline-ADC design.
        let pyr = rows.iter().find(|r| r.name == "pyrDown").unwrap();
        assert!(pyr.delay_space_pj < pyr.digital_pipeline_pj);
        // GaussianBlur (heaviest) is its worst case.
        let gauss = rows.iter().find(|r| r.name == "GaussianBlur").unwrap();
        assert!(gauss.delay_space_pj > gauss.digital_sar_pj);
        // DS cost ordering follows ops/pixel.
        assert!(pyr.delay_space_pj < gauss.delay_space_pj);
    }

    #[test]
    fn render_has_three_rows() {
        let s = render(&compute(48));
        assert_eq!(
            s.lines()
                .filter(|l| !l.contains("digital")
                    && (l.contains("yes") || l.contains("no") || l.contains("vs pipeline")))
                .count(),
            3
        );
        assert!(s.contains("crossover"));
    }
}
