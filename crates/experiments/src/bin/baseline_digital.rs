//! Regenerates the extended digital-pipeline baseline comparison.
fn main() {
    let rows = ta_experiments::baseline_digital::compute(150);
    print!("{}", ta_experiments::baseline_digital::render(&rows));
}
