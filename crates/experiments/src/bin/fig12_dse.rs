//! Regenerates Fig 12: the Sobel design-space exploration.
//!
//! Pass `--quick` for a reduced sweep; `--csv PATH` additionally writes
//! machine-readable points for plotting.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let params = if quick {
        ta_experiments::fig12::Params::quick(ta_experiments::EXPERIMENT_SEED)
    } else {
        ta_experiments::fig12::Params::full(ta_experiments::EXPERIMENT_SEED)
    };
    let points = ta_experiments::fig12::compute(&params);
    print!("{}", ta_experiments::fig12::render(&points));
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        std::fs::write(path, ta_experiments::fig12::to_csv(&points)).expect("write csv");
        println!("wrote {path}");
    }
}
