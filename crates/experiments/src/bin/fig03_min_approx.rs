//! Regenerates Fig 3: the representative slice vs min vs one max-term.
fn main() {
    let rows = ta_experiments::fig03::compute(41);
    print!("{}", ta_experiments::fig03::render(&rows));
}
