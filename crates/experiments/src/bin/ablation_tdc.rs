//! Regenerates the temporal-quantization (TDC resolution) ablation.
fn main() {
    let rows = ta_experiments::ablation::compute_tdc(
        96,
        &[2, 10, 50, 100, 200, 500, 1000, 2000, 5000],
        ta_experiments::EXPERIMENT_SEED,
    );
    print!("{}", ta_experiments::ablation::render_tdc(&rows));
}
