//! Regenerates the Fig 7 synchronisation-strategy comparison.
fn main() {
    let data = ta_experiments::fig07::compute(9, 7);
    print!("{}", ta_experiments::fig07::render(&data));
}
