//! Regenerates the fault-injection sweep (robustness extension).
fn main() {
    let report = ta_experiments::fault_sweep::compute(24, ta_experiments::EXPERIMENT_SEED);
    print!("{}", ta_experiments::fault_sweep::render(&report));
}
