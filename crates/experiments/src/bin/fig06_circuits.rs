//! Regenerates the Fig 6 circuit comparison (naive vs shared chains).
fn main() {
    let rows = ta_experiments::fig06::compute(&[2, 4, 7, 10, 15, 20]);
    print!("{}", ta_experiments::fig06::render(&rows));
}
