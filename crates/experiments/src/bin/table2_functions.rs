//! Regenerates Table 2: per-benchmark area, energy, throughput, accuracy.
//!
//! Pass `--quick` for small frames.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (size, images) = if quick { (48, 1) } else { (150, 5) };
    let rows = ta_experiments::table2::compute(size, images, ta_experiments::EXPERIMENT_SEED);
    print!("{}", ta_experiments::table2::render(&rows));
}
