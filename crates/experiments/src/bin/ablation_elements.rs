//! Regenerates the §4.2 element-size trade-off ablation.
fn main() {
    let rows = ta_experiments::ablation::compute(
        96,
        &ta_experiments::ablation::default_multipliers(),
        ta_experiments::EXPERIMENT_SEED,
    );
    print!("{}", ta_experiments::ablation::render(&rows));
}
