//! Regenerates Table 1: the benchmark definitions.
fn main() {
    print!("{}", ta_experiments::table1::render());
}
