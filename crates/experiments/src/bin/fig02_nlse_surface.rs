//! Regenerates Fig 2: the nLSE surface and its slice invariance.
fn main() {
    let data = ta_experiments::fig02::compute(17);
    print!("{}", ta_experiments::fig02::render(&data));
}
