//! Runs every experiment at full size, printing each table/figure in
//! order — the source of EXPERIMENTS.md's measured values.
//!
//! Pass `--quick` to downsize the slow sweeps.
use ta_experiments as exp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = exp::EXPERIMENT_SEED;
    let hr = "=".repeat(78);

    println!("{hr}");
    print!("{}", exp::fig02::render(&exp::fig02::compute(17)));
    println!("{hr}");
    print!("{}", exp::fig03::render(&exp::fig03::compute(41)));
    println!("{hr}");
    print!("{}", exp::fig04::render(&exp::fig04::compute(4, 41)));
    println!("{hr}");
    print!("{}", exp::fig05::render(&exp::fig05::compute(4, 40)));
    println!("{hr}");
    print!(
        "{}",
        exp::fig06::render(&exp::fig06::compute(&[2, 4, 7, 10, 15, 20]))
    );
    println!("{hr}");
    print!("{}", exp::fig07::render(&exp::fig07::compute(9, 7)));
    println!("{hr}");
    print!("{}", exp::fig08::render(&exp::fig08::compute(1.0, 24)));
    println!("{hr}");
    print!(
        "{}",
        exp::fig09::render(&exp::fig09::compute(if quick { 64 } else { 150 }))
    );
    println!("{hr}");
    let samples = if quick { 20_000 } else { 1_000_000 };
    let terms = exp::fig11::default_terms();
    print!(
        "{}",
        exp::fig11::render(&terms, &exp::fig11::compute(&terms, samples, seed))
    );
    println!("{hr}");
    print!("{}", exp::table1::render());
    println!("{hr}");
    let (size, images) = if quick { (48, 1) } else { (150, 5) };
    print!(
        "{}",
        exp::table2::render(&exp::table2::compute(size, images, seed))
    );
    println!("{hr}");
    print!("{}", exp::table3::render(&exp::table3::compute(size, seed)));
    println!("{hr}");
    let f12 = if quick {
        exp::fig12::Params::quick(seed)
    } else {
        exp::fig12::Params::full(seed)
    };
    print!("{}", exp::fig12::render(&exp::fig12::compute(&f12)));
    println!("{hr}");
    let f13 = if quick {
        exp::fig13::Params::quick(seed)
    } else {
        exp::fig13::Params::full(seed)
    };
    print!("{}", exp::fig13::render(&exp::fig13::compute(&f13)));
    println!("{hr}");
    let abl_size = if quick { 48 } else { 96 };
    print!(
        "{}",
        exp::ablation::render(&exp::ablation::compute(
            abl_size,
            &exp::ablation::default_multipliers(),
            seed
        ))
    );
    println!("{hr}");
    print!(
        "{}",
        exp::ablation::render_tdc(&exp::ablation::compute_tdc(
            abl_size,
            &[2, 10, 50, 100, 200, 500, 1000, 2000, 5000],
            seed
        ))
    );
    println!("{hr}");
    print!(
        "{}",
        exp::baseline_digital::render(&exp::baseline_digital::compute(if quick {
            48
        } else {
            150
        }))
    );
    println!("{hr}");
    let fs_size = if quick { 12 } else { 24 };
    print!(
        "{}",
        exp::fault_sweep::render(&exp::fault_sweep::compute(fs_size, seed))
    );
    println!("{hr}");
    let (res_size, res_frames) = if quick { (10, 4) } else { (24, 16) };
    print!(
        "{}",
        exp::resilience::render(&exp::resilience::compute(
            res_size,
            res_frames,
            &exp::resilience::default_rates(),
            seed
        ))
    );
    println!("{hr}");
}
