//! Regenerates the supervised-resilience sweep (robustness extension):
//! the fault campaign replayed through the supervised runtime.
fn main() {
    use ta_experiments::resilience;
    let report = resilience::compute(
        24,
        16,
        &resilience::default_rates(),
        ta_experiments::EXPERIMENT_SEED,
    );
    print!("{}", resilience::render(&report));
}
