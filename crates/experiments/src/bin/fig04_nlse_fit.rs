//! Regenerates Fig 4: the optimised four max-term nLSE fit.
fn main() {
    let data = ta_experiments::fig04::compute(4, 41);
    print!("{}", ta_experiments::fig04::render(&data));
}
