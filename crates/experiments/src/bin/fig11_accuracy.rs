//! Regenerates Fig 11: accuracy vs terms, noiseless and under PSIJ/RJ.
//!
//! The paper uses one million Monte-Carlo pairs per point; pass a smaller
//! count as the first argument for a quicker run.
fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let terms = ta_experiments::fig11::default_terms();
    let data = ta_experiments::fig11::compute(&terms, samples, ta_experiments::EXPERIMENT_SEED);
    print!("{}", ta_experiments::fig11::render(&terms, &data));
}
