//! Regenerates Figs 9/10: the compiled engine structure per benchmark.
fn main() {
    let entries = ta_experiments::fig09::compute(150);
    print!("{}", ta_experiments::fig09::render(&entries));
}
