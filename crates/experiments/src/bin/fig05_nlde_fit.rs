//! Regenerates Fig 5: the optimised four inhibit-term nLDE fit.
fn main() {
    let data = ta_experiments::fig05::compute(4, 40);
    print!("{}", ta_experiments::fig05::render(&data));
}
