//! Regenerates Fig 8: the starved-inverter VTC transfer comparison.
fn main() {
    let data = ta_experiments::fig08::compute(1.0, 24);
    print!("{}", ta_experiments::fig08::render(&data));
}
