//! Regenerates Table 3: PIP vs delay space.
//!
//! Pass `--quick` for small frames.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let size = if quick { 48 } else { 150 };
    let rows = ta_experiments::table3::compute(size, ta_experiments::EXPERIMENT_SEED);
    print!("{}", ta_experiments::table3::render(&rows));
}
