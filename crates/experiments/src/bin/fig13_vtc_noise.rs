//! Regenerates Fig 13: the sensor/VTC noise sensitivity heatmap.
//!
//! Pass `--quick` for a reduced sweep; `--csv PATH` additionally writes
//! the grid for plotting.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let params = if quick {
        ta_experiments::fig13::Params::quick(ta_experiments::EXPERIMENT_SEED)
    } else {
        ta_experiments::fig13::Params::full(ta_experiments::EXPERIMENT_SEED)
    };
    let data = ta_experiments::fig13::compute(&params);
    print!("{}", ta_experiments::fig13::render(&data));
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        std::fs::write(path, ta_experiments::fig13::to_csv(&data)).expect("write csv");
        println!("wrote {path}");
    }
}
