//! Figs 9 & 10: the hard-coded convolution engine and its scheduled pixel
//! flow — rendered as the structural description of the compiled
//! architecture for each Table 1 benchmark.

use ta_circuits::UnitScale;
use ta_core::{ArchConfig, Architecture, SystemDescription};

use crate::table1;

/// One compiled engine description.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Entry {
    /// Benchmark name.
    pub name: String,
    /// The engine's structural description.
    pub description: String,
    /// Accumulation units activated per cycle (`⌈kh/stride⌉`, §4.3 ①).
    pub active_rows_per_cycle: usize,
    /// Cycles between consecutive outputs of one MAC block (§4.3 ⑤).
    pub cycles_per_output: usize,
}

/// Compiles each benchmark at the (1 ns, 7, 20) configuration and
/// describes the resulting engines.
pub fn compute(size: usize) -> Vec<Fig09Entry> {
    table1::benchmarks()
        .into_iter()
        .map(|b| {
            let desc = SystemDescription::new(size, size, b.kernels.clone(), b.stride)
                .expect("benchmarks fit the evaluation frame");
            let arch = Architecture::new(desc, ArchConfig::new(UnitScale::new(1.0, 50.0), 7, 20))
                .expect("feasible schedule");
            Fig09Entry {
                name: b.name.to_string(),
                description: arch.describe(),
                active_rows_per_cycle: arch.desc().accum_units_per_block(),
                cycles_per_output: b.stride,
            }
        })
        .collect()
}

/// Renders the engine descriptions.
pub fn render(entries: &[Fig09Entry]) -> String {
    let mut out = String::from("Figs 9/10 — the hard-coded convolution engine, per benchmark\n\n");
    for e in entries {
        out.push_str(&format!(
            "## {}\n{}  schedule       : {} filter row(s) active per cycle; one output every {} cycle(s) per MAC block\n\n",
            e.name, e.description, e.active_rows_per_cycle, e.cycles_per_output
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_schedules_match_the_paper() {
        let entries = compute(150);
        // Sobel: 3 rows active at stride 1; pyrDown: ceil(5/2) = 3 at
        // stride 2; Gaussian: 7 at stride 1.
        assert_eq!(entries[0].active_rows_per_cycle, 3);
        assert_eq!(entries[1].active_rows_per_cycle, 3);
        assert_eq!(entries[2].active_rows_per_cycle, 7);
        assert_eq!(entries[1].cycles_per_output, 2);
    }

    #[test]
    fn render_contains_each_engine() {
        let s = render(&compute(64));
        for name in ["Sobel", "pyrDown", "GaussianBlur"] {
            assert!(s.contains(name));
        }
        assert!(s.contains("MAC blocks"));
    }
}
