//! Fig 7: reference-frame synchronisation strategies for serialised
//! inputs — per-input delay lines (7a), compute-on-arrival staging (7b),
//! and the recurrent loop (7c) — with a functional proof that all three
//! accumulate the same value.

use ta_circuits::{NlseUnit, UnitScale};
use ta_core::recurrence::{self, SyncCost};
use ta_delay_space::{ops, DelayValue};

/// Cost table plus the functional equivalence witnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07 {
    /// Number of serialised inputs accumulated.
    pub inputs: usize,
    /// Cycle time used, in abstract units.
    pub cycle_units: f64,
    /// The three strategies' hardware costs.
    pub costs: [SyncCost; 3],
    /// |staged − recurrent| accumulated value (identical hardware reused,
    /// must be exactly 0).
    pub staged_vs_recurrent: f64,
    /// |staged − exact n-ary nLSE| in delay units (bounded by the
    /// accumulated approximation error).
    pub staged_vs_exact: f64,
}

/// Accumulates `n` pseudo-random delay-space values with an `nlse_terms`
/// approximation unit under each §3 strategy.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn compute(n: usize, nlse_terms: usize) -> Fig07 {
    assert!(n >= 2, "need at least two inputs to accumulate");
    let unit = NlseUnit::with_terms(nlse_terms, UnitScale::default_1ns());
    let k = unit.latency_units();
    let cycle = k + 6.0 + 1.0; // tree latency + VTC span + relaxation

    // Deterministic pseudo-random inputs in [0.3, 3.3] delay units.
    let values: Vec<DelayValue> = (0..n)
        .map(|i| DelayValue::from_delay(0.3 + ((i * 2654435761) % 1000) as f64 * 0.003))
        .collect();

    // Fig 7b (staged): fold through the unit; each stage's K is cancelled
    // by the next stage's reference-frame hold, exactly as in hardware.
    let mut staged = values[0];
    for &v in &values[1..] {
        staged = unit.eval_ideal(staged, v).delayed(-k);
    }

    // Fig 7c (recurrent): the same unit reused through a loop of
    // cycle − K; functionally identical by construction.
    let mut recurrent = values[0];
    let loop_line = cycle - k;
    for &v in &values[1..] {
        let out = unit.eval_ideal(recurrent, v);
        // Loop delay then re-reference to the next frame (−cycle).
        recurrent = out.delayed(loop_line).delayed(-cycle);
    }

    let exact = ops::nlse_many(&values);

    Fig07 {
        inputs: n,
        cycle_units: cycle,
        costs: recurrence::sync_strategy_costs(n, cycle, k),
        staged_vs_recurrent: (staged.delay() - recurrent.delay()).abs(),
        staged_vs_exact: (staged.delay() - exact.delay()).abs(),
    }
}

/// Renders the strategy comparison.
pub fn render(data: &Fig07) -> String {
    let rows: Vec<Vec<String>> = data
        .costs
        .iter()
        .map(|c| {
            vec![
                format!("{:?}", c.strategy),
                format!("{:.1}", c.delay_line_units),
                c.nlse_blocks.to_string(),
                format!("{:.1}", c.exercised_units_per_result),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig 7 — synchronising {} serialised inputs (cycle = {:.2} units)\n",
        data.inputs, data.cycle_units
    );
    out.push_str(&crate::format_table(
        &[
            "strategy",
            "static delay-line units",
            "nLSE blocks",
            "exercised units/result",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nstaged vs recurrent accumulated value: |Δ| = {:.3e} (identical hardware)\nstaged vs exact n-ary nLSE:            |Δ| = {:.4} delay units (approx. error)\n",
        data.staged_vs_recurrent, data.staged_vs_exact
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrent_equals_staged_exactly() {
        let d = compute(9, 7);
        assert!(d.staged_vs_recurrent < 1e-12);
    }

    #[test]
    fn staged_close_to_exact() {
        let d = compute(9, 10);
        // 8 approximate merges, each within the fit's minimax error.
        assert!(d.staged_vs_exact < 8.0 * 0.03, "{}", d.staged_vs_exact);
    }

    #[test]
    fn cost_ordering_matches_figure() {
        let d = compute(9, 7);
        let [a, b, c] = d.costs;
        assert!(c.delay_line_units < b.delay_line_units);
        assert!(b.delay_line_units < a.delay_line_units);
        assert_eq!(c.nlse_blocks, 1);
    }

    #[test]
    fn render_reports_equivalence() {
        assert!(render(&compute(5, 5)).contains("identical hardware"));
    }
}
