//! Fig 5: the optimised four inhibit-term nLDE approximation — a staircase
//! chasing a curve that blows up toward equal operands, which is why nLDE
//! is intrinsically harder to approximate than nLSE.

use ta_approx::{nlde_slice_exact, NldeApprox};

/// The fitted approximation and its sampled curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig05 {
    /// The fitted `(E_i, F_i)` constants.
    pub terms: Vec<(f64, f64)>,
    /// `(x', exact, approx)` samples over `(0, 2]`; the approximation is
    /// `+∞` (never fires) inside the dead zone.
    pub curve: Vec<(f64, f64, f64)>,
    /// Smallest operand separation the staircase covers.
    pub coverage_threshold: f64,
}

/// Fits `n_terms` inhibit-terms (the figure uses 4) and samples the slice.
///
/// # Panics
///
/// Panics if `n_terms == 0` or `samples < 2`.
pub fn compute(n_terms: usize, samples: usize) -> Fig05 {
    assert!(samples >= 2, "need at least two samples");
    let approx = NldeApprox::fit(n_terms);
    let curve = (1..=samples)
        .map(|i| {
            let x = 2.0 * i as f64 / samples as f64;
            (x, nlde_slice_exact(x), approx.eval_slice(x))
        })
        .collect();
    Fig05 {
        terms: approx.terms().to_vec(),
        curve,
        coverage_threshold: approx.coverage_threshold(),
    }
}

/// Renders the staircase fit.
pub fn render(data: &Fig05) -> String {
    let mut out = format!(
        "Fig 5 — optimised {} inhibit-term nLDE approximation\n\nfitted constants (E_i, F_i) with activation thresholds:\n",
        data.terms.len()
    );
    for (i, (e, f)) in data.terms.iter().enumerate() {
        out.push_str(&format!(
            "  term {i}: E = {e:+.4}, F = {f:+.4}  (activates at x' > {:.4})\n",
            (e - f) / 2.0
        ));
    }
    let rows: Vec<Vec<String>> = data
        .curve
        .iter()
        .map(|&(x, e, a)| {
            vec![
                format!("{x:.3}"),
                format!("{e:.4}"),
                if a.is_finite() {
                    format!("{a:.4}")
                } else {
                    "never".into()
                },
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&crate::format_table(
        &["x'", "nLDE(-x',x')", "approx"],
        &rows,
    ));
    out.push_str(&format!(
        "\ndead zone: separations below {:.4} units are not covered (the curve\nconverges to infinity at 0 while nLSE converges to -ln 2 — Fig 5's caption)\n",
        data.coverage_threshold
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_tracks_outside_dead_zone() {
        let d = compute(4, 40);
        for &(x, e, a) in &d.curve {
            if x > 2.0 * d.coverage_threshold {
                assert!(a.is_finite(), "x={x} unexpectedly in dead zone");
                assert!((a - e).abs() < 0.7, "x={x}: err {}", (a - e).abs());
            }
        }
    }

    #[test]
    fn thresholds_ascend() {
        let d = compute(4, 10);
        let th: Vec<f64> = d.terms.iter().map(|(e, f)| (e - f) / 2.0).collect();
        for w in th.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((d.coverage_threshold - th[0]).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_dead_zone() {
        assert!(render(&compute(4, 8)).contains("dead zone"));
    }
}
