//! Ablation: the delay-element size trade-off of §4.2 and §5.2.
//!
//! One knob — the per-element delay multiplier (how hard the Fig 8b
//! ground transistor loads each inverter) — moves three quantities at
//! once:
//!
//! * **energy** *falls* with bigger elements (fewer of them per ns, each
//!   only sub-linearly costlier),
//! * **area** falls with bigger elements (fewer transistors),
//! * **accuracy** *degrades* with bigger elements (per-element RJ scales
//!   with its delay, and fewer elements average less of it away).
//!
//! The paper resolves the tension by picking 50× elements and a unit
//! scale large enough that the residual RJ is benign; this experiment
//! shows the whole frontier.

use ta_circuits::UnitScale;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{conv, metrics, synth, Kernel};

/// One swept element size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationRow {
    /// Element delay multiplier (× minimal inverter delay).
    pub multiplier: f64,
    /// Frame energy, µJ.
    pub energy_uj: f64,
    /// Layout area, mm².
    pub area_mm2: f64,
    /// Range-normalised RMSE (noisy mode).
    pub rmse: f64,
}

/// Sweeps element multipliers for pyrDown at a fixed (1 ns, 10, 20)
/// configuration on one `size × size` frame.
pub fn compute(size: usize, multipliers: &[f64], seed: u64) -> Vec<AblationRow> {
    let img = synth::natural_image(size, size, seed);
    let kernel = Kernel::pyr_down_5x5();
    let reference = conv::convolve(&img, &kernel, 2);
    multipliers
        .iter()
        .map(|&m| {
            let desc = SystemDescription::new(size, size, vec![kernel.clone()], 2)
                .expect("pyrDown fits the frame");
            let cfg = ArchConfig::new(UnitScale::new(1.0, m), 10, 20);
            let arch = Architecture::new(desc, cfg).expect("feasible schedule");
            let run = exec::run(&arch, &img, ArithmeticMode::DelayApproxNoisy, seed)
                .expect("geometry matches");
            AblationRow {
                multiplier: m,
                energy_uj: arch.energy_per_frame().total_uj(),
                area_mm2: arch.area_mm2(),
                rmse: metrics::normalized_rmse(&run.outputs[0], &reference),
            }
        })
        .collect()
}

/// The multipliers the ablation sweeps by default.
pub fn default_multipliers() -> Vec<f64> {
    vec![1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0]
}

/// Renders the trade-off table.
pub fn render(rows: &[AblationRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}×", r.multiplier),
                format!("{:.2}", r.energy_uj),
                format!("{:.4}", r.area_mm2),
                format!("{:.4}", r.rmse),
            ]
        })
        .collect();
    let mut out =
        String::from("Ablation — delay-element size (pyrDown, 1 ns unit, 10 max-terms)\n");
    out.push_str(&crate::format_table(
        &["element delay", "energy (µJ)", "area (mm²)", "RMSE"],
        &table,
    ));
    out.push_str(
        "\nbigger elements buy energy and area at the cost of RJ-driven accuracy —\nthe §4.2 trade the paper settles at 50× with a ≥5 ns unit scale.\n",
    );
    out
}

/// One swept TDC resolution (the "temporal equivalent of quantization"
/// of the paper's abstract).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdcRow {
    /// TDC least-significant bit, picoseconds.
    pub lsb_ps: u64,
    /// Worst-case quantisation error in abstract units at this scale.
    pub quant_error_units: f64,
    /// Range-normalised RMSE of the digitised output.
    pub rmse: f64,
}

/// Sweeps TDC resolution for pyrDown at (1 ns, 10, 20), noiseless
/// approximation hardware, so the quantisation staircase is the only
/// error source added on top of the fit.
pub fn compute_tdc(size: usize, lsb_ps: &[u64], seed: u64) -> Vec<TdcRow> {
    let img = synth::natural_image(size, size, seed);
    let kernel = Kernel::pyr_down_5x5();
    let reference = conv::convolve(&img, &kernel, 2);
    lsb_ps
        .iter()
        .map(|&lsb| {
            let tdc = ta_circuits::TdcModel::new(16, lsb * 1000);
            let desc = SystemDescription::new(size, size, vec![kernel.clone()], 2)
                .expect("pyrDown fits the frame");
            let scale = UnitScale::new(1.0, 50.0);
            let cfg = ArchConfig::new(scale, 10, 20).with_tdc(tdc);
            let arch = Architecture::new(desc, cfg).expect("feasible schedule");
            let run = exec::run(&arch, &img, ArithmeticMode::DelayApprox, seed)
                .expect("geometry matches");
            TdcRow {
                lsb_ps: lsb,
                quant_error_units: tdc.quantization_error_units(scale),
                rmse: metrics::normalized_rmse(&run.outputs[0], &reference),
            }
        })
        .collect()
}

/// Renders the temporal-quantization sweep.
pub fn render_tdc(rows: &[TdcRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} ps", r.lsb_ps),
                format!("{:.4}", r.quant_error_units),
                format!("{:.4}", r.rmse),
            ]
        })
        .collect();
    let mut out = String::from(
        "Ablation — temporal quantization (TDC LSB sweep; pyrDown, 1 ns unit, noiseless)\n",
    );
    out.push_str(&crate::format_table(
        &["TDC LSB", "±error (units)", "output RMSE"],
        &table,
    ));
    out.push_str(
        "\nthe TDC is delay space's quantizer: a 2 ps LSB (the cited design) is invisible\nat a 1 ns unit scale; error takes off once the LSB rivals the approximation's\nown minimax error (~tens of ps here).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trade_off_directions() {
        let rows = compute(48, &[1.0, 50.0, 200.0], 3);
        // Energy and area fall with element size.
        assert!(rows[0].energy_uj > rows[1].energy_uj);
        assert!(rows[1].energy_uj > rows[2].energy_uj);
        assert!(rows[0].area_mm2 > rows[1].area_mm2);
        // Accuracy degrades (or at best holds) with element size.
        assert!(rows[2].rmse > rows[0].rmse);
    }

    #[test]
    fn render_shows_sweep() {
        let s = render(&compute(32, &[1.0, 50.0], 4));
        assert!(s.contains("element delay"));
        assert!(s.contains("50×"));
    }

    #[test]
    fn tdc_quantization_staircase() {
        let rows = compute_tdc(40, &[2, 100, 5000, 50_000], 5);
        // A 2 ps LSB is invisible; a 50 ns LSB destroys the output.
        assert!(rows[0].rmse < rows[3].rmse);
        assert!(rows[3].rmse > 0.1, "coarse LSB rmse {}", rows[3].rmse);
        // Monotone in resolution.
        for w in rows.windows(2) {
            assert!(w[1].rmse >= w[0].rmse - 1e-6);
            assert!(w[1].quant_error_units > w[0].quant_error_units);
        }
    }

    #[test]
    fn tdc_render() {
        let s = render_tdc(&compute_tdc(32, &[2, 1000], 6));
        assert!(s.contains("TDC LSB"));
    }
}
