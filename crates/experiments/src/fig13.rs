//! Fig 13: sensitivity of the pyrDown convolution to sensor noise
//! (pre-VTC, voltage domain) and VTC non-idealities (post-VTC, time
//! domain) — the heatmap of §5.4.

use ta_circuits::UnitScale;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{conv, metrics, synth, Image, Kernel};

/// The heatmap: output RMSE per (pre-VTC %, post-VTC ns) noise cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// Pre-VTC noise σ values, % of full input range (the y-axis).
    pub pre_pct: Vec<f64>,
    /// Post-VTC noise σ values, nanoseconds (the x-axis).
    pub post_ns: Vec<f64>,
    /// `rmse[y][x]` for `pre_pct[y]`, `post_ns[x]`.
    pub rmse: Vec<Vec<f64>>,
}

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Frame edge length.
    pub image_size: usize,
    /// Pre-VTC σ axis, percent.
    pub pre_pct: Vec<f64>,
    /// Post-VTC σ axis, ns.
    pub post_ns: Vec<f64>,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The paper's sweep: σ up to 30 % of input range and up to 0.4 ns,
    /// on 150×150 frames, 1 ns / 10 max-term configuration.
    pub fn full(seed: u64) -> Self {
        Params {
            image_size: 150,
            pre_pct: vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
            post_ns: vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4],
            seed,
        }
    }

    /// A reduced sweep for tests and benches.
    pub fn quick(seed: u64) -> Self {
        Params {
            image_size: 40,
            pre_pct: vec![0.0, 10.0, 30.0],
            post_ns: vec![0.0, 0.2, 0.4],
            seed,
        }
    }
}

/// Runs the sweep: pyrDown at (1 ns, 10 max-terms), 10 mV V_DD swing, with
/// the two VTC noise sources swept (§5.4).
pub fn compute(params: &Params) -> Fig13 {
    let size = params.image_size;
    let img = synth::natural_image(size, size, params.seed);
    let kernel = Kernel::pyr_down_5x5();
    let reference = conv::convolve(&img, &kernel, 2);

    let rmse = params
        .pre_pct
        .iter()
        .map(|&pre| {
            params
                .post_ns
                .iter()
                .map(|&post| {
                    let desc = SystemDescription::new(size, size, vec![kernel.clone()], 2)
                        .expect("pyrDown fits the frame");
                    let cfg = ArchConfig::new(UnitScale::new(1.0, 50.0), 10, 20)
                        .with_vtc_noise(pre / 100.0, post);
                    let arch = Architecture::new(desc, cfg).expect("feasible schedule");
                    let run = exec::run(
                        &arch,
                        &img,
                        ArithmeticMode::DelayApproxNoisy,
                        params.seed ^ ((pre * 1000.0) as u64) ^ ((post * 1e6) as u64),
                    )
                    .expect("geometry matches");
                    rmse_of(&run.outputs[0], &reference)
                })
                .collect()
        })
        .collect();

    Fig13 {
        pre_pct: params.pre_pct.clone(),
        post_ns: params.post_ns.clone(),
        rmse,
    }
}

fn rmse_of(out: &Image, reference: &Image) -> f64 {
    metrics::normalized_rmse(out, reference)
}

/// Renders the heatmap as a table (pre-VTC rows × post-VTC columns).
pub fn render(data: &Fig13) -> String {
    let mut header: Vec<String> = vec!["pre% \\ post ns".into()];
    header.extend(data.post_ns.iter().map(|p| format!("{p:.2}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = data
        .pre_pct
        .iter()
        .zip(&data.rmse)
        .map(|(pre, row)| {
            let mut cells = vec![format!("{pre:.0}")];
            cells.extend(row.iter().map(|r| format!("{r:.3}")));
            cells
        })
        .collect();
    let mut out = String::from(
        "Fig 13 — pyrDown output RMSE under sensor (pre-VTC) and VTC (post-VTC) noise\n",
    );
    out.push_str(&crate::format_table(&header_refs, &rows));
    out.push_str(
        "\npost-VTC noise acts in the log domain: its impact is exponential, so it is\nbenign below ~0.3 ns and then takes off — pre-VTC noise degrades gracefully.\n",
    );
    out
}

/// Serialises the heatmap as CSV (`pre_pct,post_ns,rmse`).
pub fn to_csv(data: &Fig13) -> String {
    let mut out = String::from("pre_pct,post_ns,rmse\n");
    for (pre, row) in data.pre_pct.iter().zip(&data.rmse) {
        for (post, r) in data.post_ns.iter().zip(row) {
            out.push_str(&format!("{pre},{post},{r:.6}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_monotonicity() {
        let d = compute(&Params::quick(3));
        // More pre-VTC noise worse (down each column).
        assert!(d.rmse[2][0] > d.rmse[0][0]);
        // More post-VTC noise worse (across each row).
        assert!(d.rmse[0][2] > d.rmse[0][0]);
    }

    #[test]
    fn error_grows_slower_than_noise() {
        // §5.4: a 10% input-noise σ adds less than 10 points of RMSE.
        let d = compute(&Params::quick(4));
        let baseline = d.rmse[0][0];
        let at10 = d.rmse[1][0];
        assert!(at10 - baseline < 0.10, "Δ = {}", at10 - baseline);
    }

    #[test]
    fn csv_covers_the_grid() {
        let d = compute(&Params::quick(6));
        let csv = to_csv(&d);
        assert_eq!(csv.lines().count(), 1 + d.pre_pct.len() * d.post_ns.len());
    }

    #[test]
    fn render_is_grid() {
        let d = compute(&Params::quick(5));
        let s = render(&d);
        assert!(s.contains("pre%"));
        assert!(
            s.lines()
                .filter(|l| l.starts_with(' ') || l.contains('.'))
                .count()
                >= 3
        );
    }
}
