//! Table 2: area, energy per frame, maximum throughput and accuracy of
//! the three benchmarks under the three Pareto-frontier configurations.

use ta_circuits::UnitScale;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, GateEngine, SystemDescription};
use ta_image::{conv, metrics, synth, Image};

use crate::table1;

/// The Pareto configurations Table 2 evaluates: `(unit ns, nLSE terms,
/// nLDE terms)`.
pub const CONFIGS: [(f64, usize, usize); 3] = [(1.0, 7, 20), (5.0, 10, 20), (10.0, 10, 20)];

/// The paper's published Table 2 values for comparison:
/// `(function, config index, area mm², energy µJ, throughput Mfps, RMSE)`.
pub fn published() -> Vec<(&'static str, usize, f64, f64, f64, f64)> {
    vec![
        ("Sobel", 0, 0.02, 9.81, 71.0, 0.065),
        ("Sobel", 1, 0.08, 48.1, 18.0, 0.029),
        ("Sobel", 2, 0.149, 95.4, 9.0, 0.028),
        ("pyrDown", 0, 0.004, 7.2, 55.0, 0.038),
        ("pyrDown", 1, 0.134, 36.6, 12.0, 0.029),
        ("pyrDown", 2, 0.236, 72.7, 6.0, 0.028),
        ("GaussianBlur", 0, 0.008, 14.2, 55.0, 0.037),
        ("GaussianBlur", 1, 0.273, 73.1, 12.0, 0.028),
        ("GaussianBlur", 2, 0.481, 146.0, 6.0, 0.027),
    ]
}

/// One measured Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark function name.
    pub function: String,
    /// `(unit ns, nLSE terms, nLDE terms)`.
    pub config: (f64, usize, usize),
    /// Layout area, mm².
    pub area_mm2: f64,
    /// Energy per frame, µJ.
    pub energy_uj: f64,
    /// Maximum throughput, Mfps.
    pub throughput_mfps: f64,
    /// Pooled range-normalised RMSE over the evaluation images.
    pub rmse: f64,
    /// Race-logic gate count before netlist optimization (DESIGN.md §5.16).
    pub gates_pre: usize,
    /// Gate count after constant folding, hash-consing and dead-gate
    /// elimination — the count the area/energy silicon actually needs.
    pub gates_post: usize,
}

/// Measures every benchmark × configuration on `n_images` synthetic
/// evaluation images of `size × size` pixels.
///
/// # Panics
///
/// Panics if `size` cannot fit the 7×7 Gaussian kernel.
pub fn compute(size: usize, n_images: usize, seed: u64) -> Vec<Table2Row> {
    let images: Vec<Image> = (0..n_images as u64)
        .map(|i| synth::natural_image(size, size, seed ^ (i * 7919)))
        .collect();
    let mut rows = Vec::new();
    for bench in table1::benchmarks() {
        for &(unit_ns, nlse, nlde) in &CONFIGS {
            let desc = SystemDescription::new(size, size, bench.kernels.clone(), bench.stride)
                .expect("benchmark kernels fit the evaluation image");
            let cfg = ArchConfig::new(UnitScale::new(unit_ns, 50.0), nlse, nlde);
            let arch = Architecture::new(desc, cfg).expect("feasible schedule");
            let mut per_image = Vec::new();
            for (i, img) in images.iter().enumerate() {
                let refs: Vec<Image> = bench
                    .kernels
                    .iter()
                    .map(|k| conv::convolve(img, k, bench.stride))
                    .collect();
                let run = exec::run(
                    &arch,
                    img,
                    ArithmeticMode::DelayApproxNoisy,
                    seed + i as u64,
                )
                .expect("geometry matches");
                per_image.push(run.pooled_rmse(&refs));
            }
            let opt = GateEngine::compile(&arch)
                .opt_summary()
                .expect("compile() optimizes");
            rows.push(Table2Row {
                function: bench.name.to_string(),
                config: (unit_ns, nlse, nlde),
                area_mm2: arch.area_mm2(),
                energy_uj: arch.energy_per_frame().total_uj(),
                throughput_mfps: arch.timing().max_throughput_mfps(),
                rmse: metrics::pool_rmse(&per_image),
                gates_pre: opt.gates_pre,
                gates_post: opt.gates_post,
            });
        }
    }
    rows
}

/// Renders measured values next to the paper's (Table 2 format).
pub fn render(rows: &[Table2Row]) -> String {
    let paper = published();
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let (_, _, p_area, p_e, p_t, p_r) = paper[i];
            vec![
                r.function.clone(),
                format!("{:.0}ns,{},{}", r.config.0, r.config.1, r.config.2),
                format!("{:.3} / {:.3}", r.area_mm2, p_area),
                format!("{:.1} / {:.1}", r.energy_uj, p_e),
                format!("{:.0} / {:.0}", r.throughput_mfps, p_t),
                format!("{:.3} / {:.3}", r.rmse, p_r),
                format!(
                    "{} -> {} (-{:.0}%)",
                    r.gates_pre,
                    r.gates_post,
                    (1.0 - r.gates_post as f64 / r.gates_pre as f64) * 100.0
                ),
            ]
        })
        .collect();
    let mut out = String::from("Table 2 — benchmark costs (measured / paper), 150×150 frames\n");
    out.push_str(&crate::format_table(
        &[
            "Function",
            "Arch",
            "Area (mm²)",
            "Energy (µJ/frame)",
            "Max T'put (Mfps)",
            "Acc. (RMSE)",
            "Gates (pre -> post)",
        ],
        &table,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_reproduces_paper_ordering() {
        // Small frames keep the test fast; orderings are scale-free.
        let rows = compute(40, 1, 3);
        assert_eq!(rows.len(), 9);
        // Energy rises with unit scale within each benchmark.
        for chunk in rows.chunks(3) {
            assert!(chunk[1].energy_uj > chunk[0].energy_uj);
            assert!(chunk[2].energy_uj > chunk[1].energy_uj);
            // Accuracy improves (or holds) from 1 ns to 5 ns.
            assert!(chunk[1].rmse < chunk[0].rmse * 1.15);
            // Throughput falls with unit scale.
            assert!(chunk[1].throughput_mfps < chunk[0].throughput_mfps);
        }
        // pyrDown and GaussianBlur share throughput (same tree height).
        assert!(
            (rows[3].throughput_mfps - rows[6].throughput_mfps).abs() / rows[3].throughput_mfps
                < 1e-9
        );
        // The optimizer always removes gates on these benchmarks (every
        // kernel has zero or repeated weights to fold or share).
        for r in &rows {
            assert!(r.gates_post < r.gates_pre, "{}: {:?}", r.function, r);
        }
    }

    #[test]
    fn render_pairs_measured_and_paper() {
        let rows = compute(32, 1, 4);
        let s = render(&rows);
        assert!(s.contains("measured / paper"));
        assert!(s.lines().count() >= 11);
    }
}
