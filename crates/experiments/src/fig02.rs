//! Fig 2: the nLSE surface `s' = nLSE(x', y')` and its defining symmetry —
//! every slice along `x' + y' = K` has the same shape.

use ta_delay_space::{ops, DelayValue};

/// The computed surface and the measured slice invariance.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig02 {
    /// `(x', y', nLSE(x', y'))` samples over the plotted domain.
    pub surface: Vec<(f64, f64, f64)>,
    /// Worst deviation between the `K = 0` representative slice and
    /// re-centred slices at other `K` (should be ≈ 0: the invariance the
    /// whole fitting strategy rests on).
    pub slice_invariance_error: f64,
}

/// Samples the Fig 2 domain (`x', y' ∈ [-2, 2]`) at `n × n` points and
/// verifies the slice invariance across `K ∈ {-2, -1, 1, 2}`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn compute(n: usize) -> Fig02 {
    assert!(n >= 2, "need at least a 2×2 grid");
    let coord = |i: usize| -4.0 * i as f64 / (n - 1) as f64 + 2.0;
    let mut surface = Vec::with_capacity(n * n);
    for yi in 0..n {
        for xi in 0..n {
            let (x, y) = (coord(xi), coord(yi));
            let s = ops::nlse(DelayValue::from_delay(x), DelayValue::from_delay(y));
            surface.push((x, y, s.delay()));
        }
    }

    // Slice invariance: nLSE(K/2 + t, K/2 - t) - K/2 == nLSE(t, -t).
    let mut worst = 0.0_f64;
    for k in [-2.0, -1.0, 1.0, 2.0] {
        for i in 0..=100 {
            let t = -2.0 + 4.0 * i as f64 / 100.0;
            let shifted = ops::nlse(
                DelayValue::from_delay(k / 2.0 + t),
                DelayValue::from_delay(k / 2.0 - t),
            )
            .delay()
                - k / 2.0;
            let base = ops::nlse(DelayValue::from_delay(t), DelayValue::from_delay(-t)).delay();
            worst = worst.max((shifted - base).abs());
        }
    }
    Fig02 {
        surface,
        slice_invariance_error: worst,
    }
}

/// Renders the surface as `x y nlse` triplets plus the invariance check.
pub fn render(data: &Fig02) -> String {
    let mut out = String::from("Fig 2 — nLSE(x', y') surface (x' y' s', gnuplot-ready)\n");
    let mut last_y = f64::NAN;
    for &(x, y, s) in &data.surface {
        if y != last_y && !last_y.is_nan() {
            out.push('\n'); // blank line between scanlines for splot
        }
        last_y = y;
        out.push_str(&format!("{x:7.3} {y:7.3} {s:8.4}\n"));
    }
    out.push_str(&format!(
        "\nslice-invariance worst error across K ∈ {{-2,-1,1,2}}: {:.3e}\n",
        data.slice_invariance_error
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_properties() {
        let d = compute(9);
        assert_eq!(d.surface.len(), 81);
        // Surface lies below min(x', y') and within ln2 of it.
        for &(x, y, s) in &d.surface {
            assert!(s <= x.min(y) + 1e-12);
            assert!(s >= x.min(y) - 2.0_f64.ln() - 1e-12);
        }
    }

    #[test]
    fn slices_are_invariant() {
        assert!(compute(5).slice_invariance_error < 1e-10);
    }

    #[test]
    fn render_is_plot_ready() {
        let s = render(&compute(4));
        assert!(s.contains("slice-invariance"));
        assert!(s.lines().count() > 16);
    }
}
