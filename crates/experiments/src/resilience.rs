//! Resilience experiment: the PR 1 fault campaign replayed through the
//! supervised runtime.
//!
//! Not a paper artifact — a robustness extension. Where [`crate::fault_sweep`]
//! measures how *raw* engine output degrades under transient faults, this
//! experiment measures what a deployment actually sees once the
//! supervisor is in the loop: frames are validated against the digital
//! reference, rejected frames are retried with fresh fault realisations,
//! and frames that exhaust their retry budget are served by the reference
//! engine. The batch always completes — the interesting number is how
//! much of it ran on the cheap temporal path versus the digital fallback
//! at each fault rate. Everything derives from the seed, so the output
//! regenerates bit-identically.

use std::sync::Arc;

use ta_baseline::digital::DigitalModel;
use ta_baseline::{DigitalReference, ReferenceEngine};
use ta_core::{ArchConfig, Architecture, ArithmeticMode, FaultModel, SystemDescription};
use ta_image::{synth, Image, Kernel};
use ta_runtime::{
    Engine, Fallback, FaultyTemporalEngine, RetryPolicy, Supervisor, SupervisorConfig,
    TemporalEngine, ValidationPolicy,
};

/// Supervised batch health at one per-site fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Per-site transient fault probability.
    pub rate: f64,
    /// Frames whose temporal run passed validation (first try or retry).
    pub ok: usize,
    /// Frames that needed at least one retry.
    pub retried: usize,
    /// Frames served by the digital reference after the retry budget.
    pub degraded: usize,
    /// Frames with no usable output (must stay zero — the point of the
    /// supervisor).
    pub failed: usize,
    /// Total temporal-engine attempts across the batch.
    pub total_attempts: u64,
}

/// The full sweep: one [`ResiliencePoint`] per fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Frame edge length.
    pub size: usize,
    /// Frames per batch.
    pub frames: usize,
    /// Base seed for frames, faults, retry jitter.
    pub seed: u64,
    /// nRMSE acceptance tolerance against the digital reference.
    pub tolerance: f64,
    /// Retries allowed after the first attempt.
    pub retries: u32,
    /// The sweep, in ascending rate order.
    pub points: Vec<ResiliencePoint>,
}

/// Default fault rates: pristine through the campaign's hottest rate.
pub fn default_rates() -> Vec<f64> {
    vec![0.0, 0.002, 0.01, 0.05, 0.1]
}

/// Runs the supervised resilience sweep: `frames` synthetic frames of
/// `size × size` through a Sobel-x architecture in ideal-approximation
/// mode, at each fault `rate`, with nRMSE validation against the digital
/// reference and reference fallback.
pub fn compute(size: usize, frames: usize, rates: &[f64], seed: u64) -> ResilienceReport {
    let mut span = ta_telemetry::tracer().span("experiments.resilience");
    span.add_field("frames", frames);
    span.add_field("rates", rates.len());
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule");
    let images: Vec<Image> = (0..frames)
        .map(|i| synth::natural_image(size, size, seed.wrapping_add(i as u64)))
        .collect();
    let reference = Arc::new(
        DigitalReference::new(
            DigitalModel::conventional_65nm(),
            vec![Kernel::sobel_x()],
            1,
        )
        .with_pixel_floor((-arch.vtc().max_delay_units()).exp()),
    );
    // Calibrate the acceptance tolerance to the approximation's own error
    // floor: the ideal-approximation mode carries a deterministic nRMSE
    // against the digital reference (the 7/20-term approximation error),
    // so the tolerance is 1.5× the worst fault-free frame — fault-free
    // batches pass outright and validation only trips on fault-added
    // drift. Deterministic given the seed.
    let tolerance = 1.5
        * images
            .iter()
            .map(|img| {
                let run = ta_core::exec::run(&arch, img, ArithmeticMode::DelayApprox, 0)
                    .expect("geometry matches");
                let refs = reference.reference_outputs(img);
                run.pooled_rmse(&refs)
            })
            .fold(0.0_f64, f64::max);
    let retries = 2;

    // One supervised batch per rate, fanned out over the shared pool:
    // every batch is a pure function of (rate, seed), and inside a pool
    // worker the supervisor's own frame fan-out runs inline, so the
    // sweep parallelises at the coarsest useful grain without
    // oversubscribing. Results come back in rate order.
    let points = ta_pool::Pool::current()
        .map(rates.len(), |r_idx| {
            let rate = rates[r_idx];
            let engine: Arc<dyn Engine> = if rate > 0.0 {
                let model = FaultModel::with_rate(rate).expect("rate is a probability");
                Arc::new(FaultyTemporalEngine::new(
                    arch.clone(),
                    ArithmeticMode::DelayApprox,
                    model,
                    seed ^ 0xFA,
                ))
            } else {
                Arc::new(TemporalEngine::new(
                    arch.clone(),
                    ArithmeticMode::DelayApprox,
                ))
            };
            let supervisor = Supervisor::new(SupervisorConfig {
                validation: ValidationPolicy {
                    require_finite: true,
                    nrmse_tolerance: Some(tolerance),
                },
                timeout: None,
                retry: RetryPolicy {
                    max_retries: retries,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                    jitter: 0.0,
                },
                workers: 0,
                seed,
            })
            .with_reference(Arc::clone(&reference) as Arc<dyn ta_baseline::ReferenceEngine>)
            .with_fallback(Fallback::Reference);
            let batch = supervisor
                .run_batch(&engine, &images, seed)
                .expect("supervisor configuration is valid");
            ResiliencePoint {
                rate,
                ok: batch.health.ok,
                retried: batch.health.retried,
                degraded: batch.health.degraded,
                failed: batch.health.failed,
                total_attempts: batch.health.total_attempts,
            }
        })
        .into_iter()
        .collect();

    ResilienceReport {
        size,
        frames,
        seed,
        tolerance,
        retries,
        points,
    }
}

/// Renders the sweep as a table plus the temporal-path service fraction.
pub fn render(report: &ResilienceReport) -> String {
    let mut out = format!(
        "Supervised resilience — Sobel x on {0}×{0}, {1} frames/batch, \
         tolerance {2:.4} nRMSE (1.5× the fault-free floor), {3} retries, seed {4:#x}\n\n",
        report.size, report.frames, report.tolerance, report.retries, report.seed
    );
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            let temporal_pct = 100.0 * p.ok as f64 / report.frames.max(1) as f64;
            vec![
                format!("{:.3}", p.rate),
                p.ok.to_string(),
                p.retried.to_string(),
                p.degraded.to_string(),
                p.failed.to_string(),
                p.total_attempts.to_string(),
                format!("{temporal_pct:.0}%"),
            ]
        })
        .collect();
    out.push_str(&crate::format_table(
        &[
            "rate", "ok", "retried", "degraded", "failed", "attempts", "temporal",
        ],
        &rows,
    ));
    out.push_str(
        "\nEvery frame is served: rejected temporal outputs fall back to the\n\
         digital reference, so `failed` stays 0 at every fault rate.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_reproduces_and_degrades_gracefully() {
        let rates = [0.0, 0.05, 0.2];
        let a = compute(10, 4, &rates, 5);
        let b = compute(10, 4, &rates, 5);
        assert_eq!(a, b, "same seed must regenerate the identical report");

        let pristine = &a.points[0];
        assert_eq!(
            (pristine.ok, pristine.retried, pristine.degraded),
            (4, 0, 0),
            "fault-free approx mode passes the tolerance outright: {pristine:?}"
        );
        let hottest = a.points.last().unwrap();
        assert!(
            hottest.degraded + hottest.retried > 0,
            "a 20% fault rate must trip validation somewhere: {hottest:?}"
        );
        for p in &a.points {
            assert_eq!(p.failed, 0, "the supervisor must serve every frame: {p:?}");
            assert_eq!(p.ok + p.degraded, 4, "dispositions partition the batch");
        }

        let rendered = render(&a);
        assert!(rendered.contains("Supervised resilience"));
        assert!(rendered.contains("temporal"));
        assert_eq!(rendered, render(&b));
    }
}
