//! Reproduction harness: one driver per table and figure of
//! *Energy Efficient Convolutions with Temporal Arithmetic* (ASPLOS 2024).
//!
//! Every module exposes a `compute(...)` function returning typed data and
//! a `render(&data) -> String` producing the paper-style rows/series; the
//! binaries in `src/bin/` print `render(compute(...))` at full size, tests
//! and Criterion benches run the same code at reduced (`quick`) sizes.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig02`] | Fig 2 — the nLSE surface and its slice invariance |
//! | [`fig03`] | Fig 3 — slice vs `min` vs one hand-picked max-term |
//! | [`fig04`] | Fig 4 — optimised 4 max-term nLSE fit |
//! | [`fig05`] | Fig 5 — optimised 4 inhibit-term nLDE fit |
//! | [`fig06`] | Fig 6 — naive vs shared-chain nLSE circuits |
//! | [`fig07`] | Fig 7 — synchronisation strategies & recurrence |
//! | [`fig08`] | Fig 8 — starved-inverter VTC transfer fidelity |
//! | [`fig09`] | Figs 9/10 — the compiled engine's structure & schedule |
//! | [`fig11`] | Fig 11a–d — accuracy vs terms under PSIJ/RJ |
//! | [`fig12`] | Fig 12 — Sobel design-space exploration + Pareto |
//! | [`table1`] | Table 1 — benchmark definitions |
//! | [`table2`] | Table 2 — area/energy/throughput/accuracy |
//! | [`table3`] | Table 3 — PIP vs delay-space comparison |
//! | [`ablation`] | §4.2's element-size trade-off and the TDC quantization sweep |
//! | [`baseline_digital`] | extended baseline: conventional ADC pipeline vs delay space |
//! | [`fig13`] | Fig 13 — sensor/VTC noise sensitivity heatmap |
//! | [`fault_sweep`] | robustness extension — fault-rate sweep + site sensitivity |
//! | [`resilience`] | robustness extension — the fault campaign replayed through the supervised runtime |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baseline_digital;
pub mod fault_sweep;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod resilience;
pub mod table1;
pub mod table2;
pub mod table3;

/// Formats a fixed-width text table: a header row followed by data rows.
/// Column widths adapt to the widest cell.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let push_row = |cells: Vec<&str>, out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = w));
        }
        out.push('\n');
    };
    push_row(header.to_vec(), &mut out);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    push_row(sep.iter().map(|s| s.as_str()).collect(), &mut out);
    for row in rows {
        push_row(row.iter().map(|s| s.as_str()).collect(), &mut out);
    }
    out
}

/// The fixed seed all full-size experiment binaries use, so EXPERIMENTS.md
/// regenerates bit-identically.
pub const EXPERIMENT_SEED: u64 = 0xA5F1_0540;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["a", "long"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        format_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
