//! Fig 6: gate-level nLSE approximation circuits — the naive per-term
//! design (6a) against the optimised shared-delay-chain design (6b), plus
//! the comparator-vs-mirrored ablation.

use ta_approx::NlseApprox;
use ta_delay_space::DelayValue;
use ta_race_logic::blocks::{self, OperandOrdering};
use ta_race_logic::{CircuitBuilder, CircuitStats};

/// Cost and equivalence data for one term count.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06Row {
    /// Number of max-terms.
    pub terms: usize,
    /// Gate/delay statistics of the naive circuit (Fig 6a).
    pub naive: CircuitStats,
    /// Statistics of the shared-chain circuit (Fig 6b).
    pub shared: CircuitStats,
    /// Statistics of the comparator-free mirrored ablation.
    pub mirrored: CircuitStats,
    /// Largest output difference between naive and shared over the test
    /// grid (must be ≈ 0: they are the same function).
    pub max_divergence: f64,
}

/// Builds and cross-checks the three circuit variants for each term count.
pub fn compute(term_counts: &[usize]) -> Vec<Fig06Row> {
    term_counts
        .iter()
        .map(|&n| {
            let approx = NlseApprox::fit(n);
            let k = approx.required_shift();
            let naive = blocks::nlse_circuit(approx.terms(), k, false).expect("valid netlist");
            let shared = blocks::nlse_circuit(approx.terms(), k, true).expect("valid netlist");
            let mut b = CircuitBuilder::new();
            let x = b.input("x");
            let y = b.input("y");
            let out = blocks::build_nlse_naive(
                &mut b,
                x,
                y,
                approx.terms(),
                k,
                OperandOrdering::Mirrored,
            );
            b.output("nlse", out.node);
            let mirrored = b.build().expect("valid netlist");

            let mut max_divergence = 0.0_f64;
            for i in 0..20 {
                for j in 0..20 {
                    let xe = DelayValue::from_delay(i as f64 * 0.3);
                    let ye = DelayValue::from_delay(j as f64 * 0.3);
                    let a = naive.evaluate(&[xe, ye]).expect("arity ok")[0];
                    let s = shared.evaluate(&[xe, ye]).expect("arity ok")[0];
                    max_divergence = max_divergence.max((a.delay() - s.delay()).abs());
                }
            }
            Fig06Row {
                terms: n,
                naive: naive.stats(),
                shared: shared.stats(),
                mirrored: mirrored.stats(),
                max_divergence,
            }
        })
        .collect()
}

/// Renders the hardware-cost comparison.
pub fn render(rows: &[Fig06Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.terms.to_string(),
                format!(
                    "{} el / {:.1}u",
                    r.naive.delay_elements, r.naive.total_delay_units
                ),
                format!(
                    "{} el / {:.1}u",
                    r.shared.delay_elements, r.shared.total_delay_units
                ),
                format!(
                    "{:.2}×",
                    r.naive.total_delay_units / r.shared.total_delay_units
                ),
                format!(
                    "{} el / {:.1}u",
                    r.mirrored.delay_elements, r.mirrored.total_delay_units
                ),
                format!("{:.1e}", r.max_divergence),
            ]
        })
        .collect();
    let mut out =
        String::from("Fig 6 — nLSE circuit implementations (delay elements / total delay units)\n");
    out.push_str(&crate::format_table(
        &[
            "terms",
            "naive (6a)",
            "shared chain (6b)",
            "delay saved",
            "mirrored (no comparator)",
            "6a vs 6b divergence",
        ],
        &table,
    ));
    out.push_str("\nshared chains compute the identical function with a fraction of the delay\nhardware; dropping the comparator instead doubles the max-term count.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_always_cheaper_and_equivalent() {
        for r in compute(&[2, 4, 7]) {
            assert!(r.max_divergence < 1e-9, "terms={}", r.terms);
            assert!(r.shared.total_delay_units < r.naive.total_delay_units);
            assert!(r.shared.delay_elements <= r.naive.delay_elements);
            // Mirrored pays ~2× the la gates of the comparator design.
            assert!(r.mirrored.la_gates >= 2 * r.terms);
            assert_eq!(r.naive.la_gates, r.terms + 1); // terms + comparator
        }
    }

    #[test]
    fn savings_grow_with_terms() {
        let rows = compute(&[2, 7]);
        let saving = |r: &Fig06Row| r.naive.total_delay_units / r.shared.total_delay_units;
        assert!(saving(&rows[1]) > saving(&rows[0]));
    }

    #[test]
    fn render_has_all_rows() {
        let s = render(&compute(&[2, 4]));
        assert!(s.contains("shared chain"));
        assert_eq!(s.lines().filter(|l| l.contains("el /")).count(), 2);
    }
}
