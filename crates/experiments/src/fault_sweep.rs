//! Fault-injection sweep: graceful degradation of the engine under the
//! architectural fault model.
//!
//! Not a paper artifact — a robustness extension. The campaign runner
//! ([`ta_core::campaign`]) replays one frame through [`exec::run_faulty`]
//! with seeded fault maps at increasing per-site fault rates and probes
//! every hardware site individually; this module renders the result as
//! two tables (rate sweep, most sensitive sites) in the repository's
//! experiment style. Everything derives from the seed, so the output
//! regenerates bit-identically.
//!
//! [`exec::run_faulty`]: ta_core::exec::run_faulty

use ta_core::campaign::{self, CampaignConfig, CampaignReport};
use ta_core::{ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Kernel};

/// Runs the default fault campaign: Sobel-x (split rails, loop line,
/// nLDE unit — every faultable element class) on one `size × size`
/// synthetic frame in ideal-approximation mode.
pub fn compute(size: usize, seed: u64) -> CampaignReport {
    let mut span = ta_telemetry::tracer().span("experiments.fault_sweep");
    span.add_field("size", size);
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule");
    let img = synth::natural_image(size, size, seed);
    let cfg = CampaignConfig {
        mode: ArithmeticMode::DelayApprox,
        seed,
        rates: vec![0.0, 0.002, 0.01, 0.05, 0.1, 0.2],
        trials_per_rate: 3,
        max_pixel_sites: 12,
        ..CampaignConfig::default()
    };
    campaign::run_campaign(&arch, &img, &cfg).expect("campaign configuration is valid")
}

/// Renders the campaign as rate-sweep and site-sensitivity tables.
pub fn render(report: &CampaignReport) -> String {
    let mut out = format!(
        "Fault sweep — Sobel x, {:?}, campaign seed {:#x}\n\n",
        report.mode, report.seed
    );
    let rate_rows: Vec<Vec<String>> = report
        .rate_sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.rate),
                format!("{:.1}", p.mean_sites),
                format!("{:.5}", p.mean_rmse),
                format!("{:.5}", p.worst_rmse),
                format!("{:.4}", p.mean_ssim),
                p.stats.edges_faulted.to_string(),
                p.stats.saturations.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::format_table(
        &["rate", "sites", "nRMSE", "worst", "SSIM", "edges", "sat"],
        &rate_rows,
    ));

    let shown = report.site_sensitivity.len().min(10);
    out.push_str(&format!(
        "\nMost sensitive sites (top {shown} of {}; {}/{} pixel sites sampled)\n",
        report.site_sensitivity.len(),
        report.pixel_sites_scanned.0,
        report.pixel_sites_scanned.1,
    ));
    let site_rows: Vec<Vec<String>> = report.site_sensitivity[..shown]
        .iter()
        .map(|s| {
            vec![
                s.site.to_string(),
                s.kind.to_string(),
                format!("{:.5}", s.rmse),
                format!("{:.4}", s.ssim),
                s.stats.saturations.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::format_table(
        &["site", "fault", "nRMSE", "SSIM", "sat"],
        &site_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_reproducible_and_ordered() {
        let a = compute(10, 5);
        let b = compute(10, 5);
        assert_eq!(a, b, "same seed must regenerate the identical report");
        assert_eq!(a.rate_sweep[0].mean_rmse, 0.0, "rate 0 is pristine");
        assert!(
            a.rate_sweep.last().unwrap().mean_rmse > 0.0,
            "the hottest rate must degrade the output"
        );
        let rendered = render(&a);
        assert!(rendered.contains("Fault sweep"));
        assert!(rendered.contains("Most sensitive sites"));
        assert_eq!(rendered, render(&b));
    }
}
