//! Fig 8: the voltage-to-time converter — how closely the behavioural
//! current-starved inverter (Fig 8a) tracks the negative-log transfer the
//! delay-space encoding needs (§4.1).

use ta_circuits::{StarvedInverterVtc, UnitScale, VtcModel};

/// One sampled point of the transfer curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig08Row {
    /// Normalised pixel voltage.
    pub pixel: f64,
    /// Ideal `-ln(v)` delay, abstract units.
    pub ideal_units: f64,
    /// Calibrated starved-inverter delay, abstract units.
    pub starved_units: f64,
}

/// The transfer comparison plus summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08 {
    /// Sampled transfer curves (log-spaced toward the dark end).
    pub rows: Vec<Fig08Row>,
    /// Worst deviation over the dynamic range, abstract units.
    pub max_deviation_units: f64,
    /// The unit scale used.
    pub unit_ns: f64,
}

/// Samples both transfer curves at `n` log-spaced pixel values.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn compute(unit_ns: f64, n: usize) -> Fig08 {
    assert!(n >= 2, "need at least two samples");
    let scale = UnitScale::new(unit_ns, 50.0);
    let ideal = VtcModel::ideal(scale);
    let starved = StarvedInverterVtc::calibrated(scale);
    let min_pixel = (-6.0_f64).exp();
    let rows = (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            let pixel = min_pixel.powf(1.0 - f);
            Fig08Row {
                pixel,
                ideal_units: ideal.convert_ideal(pixel).delay(),
                starved_units: starved.convert_ideal(pixel).delay(),
            }
        })
        .collect();
    Fig08 {
        rows,
        max_deviation_units: starved.max_deviation_units(),
        unit_ns,
    }
}

/// Renders the transfer comparison.
pub fn render(data: &Fig08) -> String {
    let rows: Vec<Vec<String>> = data
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.4}", r.pixel),
                format!("{:.3}", r.ideal_units),
                format!("{:.3}", r.starved_units),
                format!("{:+.3}", r.starved_units - r.ideal_units),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig 8 — starved-inverter VTC vs ideal -ln transfer ({} ns/unit)\n",
        data.unit_ns
    );
    out.push_str(&crate::format_table(
        &["pixel", "-ln(v) (units)", "starved inverter", "deviation"],
        &rows,
    ));
    out.push_str(&format!(
        "\nworst deviation over the ~8.7-bit dynamic range: {:.3} units\n(the starved inverter 'approximates negative log for specific regions of interest', §4.1)\n",
        data.max_deviation_units
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_and_close() {
        let d = compute(1.0, 24);
        for w in d.rows.windows(2) {
            assert!(w[1].ideal_units <= w[0].ideal_units);
            assert!(w[1].starved_units <= w[0].starved_units + 1e-9);
        }
        assert!(d.max_deviation_units < 0.6);
        for r in &d.rows {
            assert!((r.starved_units - r.ideal_units).abs() <= d.max_deviation_units + 0.05);
        }
    }

    #[test]
    fn render_reports_deviation() {
        assert!(render(&compute(1.0, 8)).contains("worst deviation"));
    }
}
