//! Value-change-dump (VCD) export of signal arrival times.
//!
//! Race logic encodes values as *edge arrival times*, so a netlist
//! evaluation is naturally a waveform: every signal is a 1-bit wire that
//! rises once, at its arrival time, or never. This module renders that
//! picture in the IEEE 1364 VCD text format, viewable in GTKWave.

use std::collections::BTreeMap;

/// Builds a VCD document from single-rise wires.
#[derive(Debug, Clone)]
pub struct VcdBuilder {
    module: String,
    /// `(name, rise time in ps)`; `None` = the wire never fires.
    wires: Vec<(String, Option<u64>)>,
}

impl VcdBuilder {
    /// A builder whose signals live under `$scope module <module>`.
    pub fn new(module: &str) -> Self {
        VcdBuilder {
            module: sanitize(module),
            wires: Vec::new(),
        }
    }

    /// Adds a 1-bit wire rising at `rise_ps` picoseconds (`None` for a
    /// wire that never fires and stays 0). Names are sanitised to the
    /// identifier characters VCD allows.
    pub fn wire(&mut self, name: &str, rise_ps: Option<u64>) {
        self.wires.push((sanitize(name), rise_ps));
    }

    /// Number of wires added so far.
    pub fn len(&self) -> usize {
        self.wires.len()
    }

    /// True when no wires were added.
    pub fn is_empty(&self) -> bool {
        self.wires.is_empty()
    }

    /// Renders the VCD document. Timestamps are emitted in strictly
    /// ascending order as the format requires.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$version ta-telemetry temporal waveform export $end\n");
        out.push_str("$timescale 1ps $end\n");
        out.push_str(&format!("$scope module {} $end\n", self.module));
        for (i, (name, _)) in self.wires.iter().enumerate() {
            out.push_str(&format!("$var wire 1 {} {name} $end\n", id_code(i)));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        // Initial values: wires rising at t=0 start high.
        out.push_str("$dumpvars\n");
        for (i, (_, rise)) in self.wires.iter().enumerate() {
            let initial = u8::from(*rise == Some(0));
            out.push_str(&format!("{initial}{}\n", id_code(i)));
        }
        out.push_str("$end\n");

        // Group the remaining rises by timestamp, ascending.
        let mut by_time: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, (_, rise)) in self.wires.iter().enumerate() {
            if let Some(t) = rise {
                if *t > 0 {
                    by_time.entry(*t).or_default().push(i);
                }
            }
        }
        for (t, wires) in by_time {
            out.push_str(&format!("#{t}\n"));
            for i in wires {
                out.push_str(&format!("1{}\n", id_code(i)));
            }
        }
        out
    }
}

/// The VCD short identifier for wire `n`: base-94 over the printable
/// ASCII range `!`..=`~`, as the format prescribes.
pub fn id_code(mut n: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    code
}

/// VCD identifiers cannot contain whitespace; anything unprintable or
/// blank becomes `_`.
fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '$' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        "_".to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = id_code(n);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code));
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn render_produces_ordered_timestamps() {
        let mut b = VcdBuilder::new("netlist");
        b.wire("late", Some(3000));
        b.wire("early", Some(1000));
        b.wire("at zero", Some(0));
        b.wire("never", None);
        let vcd = b.render();

        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$scope module netlist $end"));
        assert!(vcd.contains("$var wire 1 ! late $end"));
        assert!(vcd.contains("$var wire 1 # at_zero $end"));
        assert!(vcd.contains("$enddefinitions $end"));

        let times: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(times, vec![1000, 3000]);

        // `at zero` is high in $dumpvars; `never` stays 0 throughout.
        let dump: Vec<&str> = vcd
            .lines()
            .skip_while(|l| *l != "$dumpvars")
            .take_while(|l| *l != "$end")
            .collect();
        assert!(dump.contains(&"1#"));
        assert!(dump.contains(&"0$"));
        assert!(!vcd.contains("\n1$"));
    }
}
