//! The black-box flight recorder (DESIGN.md §5.14): a fixed-size ring of
//! the most recent trace records, kept cheap enough to run always-on in
//! a server, plus head-sampled forwarding to an inner sink.
//!
//! Capture policy:
//!
//! * **Ring (tail-based)**: every record lands in the ring, overwriting
//!   the oldest. The ring is only read when an anomaly fires, so the
//!   common case pays one atomic fetch-add and one uncontended per-slot
//!   mutex — writers on different slots never serialize.
//! * **Forwarding (head-sampled)**: records are passed through to the
//!   wrapped inner sink (the operator's `--trace` file) for 1 in
//!   `sample_every` traces, chosen by a hash of the trace ID so a kept
//!   trace is kept *whole*. Records without a trace ID always forward.
//!
//! [`FlightRecorder::snapshot`] returns the ring contents in capture
//! order for the diagnostics bundle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::sink::{lock_clean, EventRecord, FieldValue, SpanRecord, TraceSink};

/// One captured record with its global sequence number.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Monotonic capture sequence (process order across threads).
    pub seq: u64,
    /// The span or event as it reached the sink.
    pub record: FlightRecordKind,
}

/// A captured span or event.
#[derive(Debug, Clone)]
pub enum FlightRecordKind {
    /// A completed span.
    Span(SpanRecord),
    /// A one-shot event.
    Event(EventRecord),
}

impl FlightRecord {
    /// The record's name (span or event).
    pub fn name(&self) -> &'static str {
        match &self.record {
            FlightRecordKind::Span(s) => s.name,
            FlightRecordKind::Event(e) => e.name,
        }
    }

    /// The record's `trace` field, if stamped.
    pub fn trace_hex(&self) -> Option<&str> {
        let fields = match &self.record {
            FlightRecordKind::Span(s) => &s.fields,
            FlightRecordKind::Event(e) => &e.fields,
        };
        fields.iter().find_map(|(k, v)| match (k, v) {
            (&"trace", FieldValue::Str(hex)) => Some(hex.as_str()),
            _ => None,
        })
    }

    /// Renders the record as one JSONL bundle line.
    pub fn to_json(&self) -> String {
        let mut line = format!("{{\"seq\":{}", self.seq);
        match &self.record {
            FlightRecordKind::Span(s) => {
                line.push_str(&format!(
                    ",\"type\":\"span\",\"name\":{},\"start_us\":{},\"duration_us\":{}",
                    crate::sink::json_string(s.name),
                    s.start.as_micros(),
                    s.duration.as_micros()
                ));
                for (k, v) in &s.fields {
                    line.push_str(&format!(",{}:{}", crate::sink::json_string(k), v.to_json()));
                }
            }
            FlightRecordKind::Event(e) => {
                line.push_str(&format!(
                    ",\"type\":\"event\",\"name\":{},\"at_us\":{}",
                    crate::sink::json_string(e.name),
                    e.at.as_micros()
                ));
                for (k, v) in &e.fields {
                    line.push_str(&format!(",{}:{}", crate::sink::json_string(k), v.to_json()));
                }
            }
        }
        line.push('}');
        line
    }
}

/// Always-on ring sink with head-sampled pass-through (see module docs).
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightRecord>>>,
    cursor: AtomicU64,
    /// Forward 1 in `sample_every` traces to `inner` (0 or 1 = all).
    sample_every: u64,
    inner: Arc<dyn TraceSink>,
    /// Whether `inner` is a real sink worth forwarding to.
    inner_live: bool,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("captured", &self.cursor.load(Ordering::Relaxed))
            .field("sample_every", &self.sample_every)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder holding the `capacity` most recent records, wrapping
    /// `inner` (forward head-sampled records there). `sample_every` of 0
    /// or 1 forwards everything.
    pub fn new(capacity: usize, sample_every: u64, inner: Arc<dyn TraceSink>) -> Self {
        let capacity = capacity.max(1);
        let inner_live = inner.wants_records();
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            sample_every,
            inner,
            inner_live,
        }
    }

    /// Total records captured since construction (not bounded by the
    /// ring's capacity).
    pub fn captured(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    fn push(&self, record: FlightRecordKind) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *lock_clean(&self.slots[slot]) = Some(FlightRecord { seq, record });
    }

    /// Head-sampling decision: keep whole traces (hash of the ID), keep
    /// everything that has no trace ID.
    fn forwards(&self, fields: &[(&'static str, FieldValue)]) -> bool {
        if !self.inner_live {
            return false;
        }
        if self.sample_every <= 1 {
            return true;
        }
        let hex = fields.iter().find_map(|(k, v)| match (k, v) {
            (&"trace", FieldValue::Str(hex)) => Some(hex.as_str()),
            _ => None,
        });
        match hex {
            None => true,
            Some(hex) => fnv1a(hex.as_bytes()).is_multiple_of(self.sample_every),
        }
    }

    /// The ring contents in capture order (oldest surviving record
    /// first).
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|s| lock_clean(s).clone())
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }
}

impl TraceSink for FlightRecorder {
    fn record_span(&self, span: &SpanRecord) {
        if self.forwards(&span.fields) {
            self.inner.record_span(span);
        }
        self.push(FlightRecordKind::Span(span.clone()));
    }

    fn record_event(&self, event: &EventRecord) {
        if self.forwards(&event.fields) {
            self.inner.record_event(event);
        }
        self.push(FlightRecordKind::Event(event.clone()));
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// FNV-1a over `bytes` — the same cheap stable hash the serve checksum
/// uses, good enough to spread trace IDs across sampling buckets.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::sink::{NullSink, RingSink};
    use std::time::Duration;

    fn span(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanRecord {
        SpanRecord {
            name,
            start: Duration::ZERO,
            duration: Duration::from_micros(5),
            fields,
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let rec = FlightRecorder::new(4, 1, Arc::new(NullSink));
        for i in 0..10u64 {
            rec.record_event(&EventRecord {
                name: "e",
                at: Duration::from_micros(i),
                fields: vec![("i", i.into())],
            });
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(rec.captured(), 10);
    }

    #[test]
    fn forwards_everything_at_sample_one() {
        let inner = Arc::new(RingSink::new(32));
        let rec = FlightRecorder::new(8, 1, inner.clone());
        rec.record_span(&span("s", vec![("trace", "ab".into())]));
        rec.record_event(&EventRecord {
            name: "e",
            at: Duration::ZERO,
            fields: vec![],
        });
        assert_eq!(inner.spans().len(), 1);
        assert_eq!(inner.events().len(), 1);
    }

    #[test]
    fn head_sampling_keeps_whole_traces_and_all_untraced() {
        let inner = Arc::new(RingSink::new(1024));
        let rec = FlightRecorder::new(8, 4, inner.clone());
        // Untraced records always forward.
        rec.record_span(&span("untraced", vec![]));
        assert_eq!(inner.spans().len(), 1);
        // A given trace is either fully kept or fully dropped.
        for t in 0..32u64 {
            let hex = format!("{t:032x}");
            let before = inner.spans().len();
            rec.record_span(&span("a", vec![("trace", hex.clone().into())]));
            rec.record_span(&span("b", vec![("trace", hex.into())]));
            let kept = inner.spans().len() - before;
            assert!(kept == 0 || kept == 2, "trace {t}: kept {kept} of 2");
        }
        // Roughly 1 in 4 traces survive; with 32 traces expect some of
        // each (the hash is deterministic, so this cannot flake).
        let total = inner.spans().len() - 1;
        assert!(total > 0 && total < 64, "kept {total} spans");
    }

    #[test]
    fn snapshot_survives_concurrent_writers() {
        let rec = Arc::new(FlightRecorder::new(64, 1, Arc::new(NullSink)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        rec.record_event(&EventRecord {
                            name: "w",
                            at: Duration::ZERO,
                            fields: vec![("i", i.into())],
                        });
                    }
                });
            }
        });
        assert_eq!(rec.captured(), 400);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 64);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn records_render_as_json_and_expose_trace() {
        let rec = FlightRecorder::new(4, 1, Arc::new(NullSink));
        rec.record_span(&span("exec.run", vec![("trace", "00ff".into())]));
        let snap = rec.snapshot();
        assert_eq!(snap[0].name(), "exec.run");
        assert_eq!(snap[0].trace_hex(), Some("00ff"));
        let json = snap[0].to_json();
        assert!(json.starts_with("{\"seq\":0"), "{json}");
        assert!(json.contains("\"trace\":\"00ff\""), "{json}");
        assert!(json.ends_with('}'), "{json}");
    }
}
