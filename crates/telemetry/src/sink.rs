//! Trace records and the pluggable sinks that receive them.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// One typed metadata value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned count.
    U64(u64),
    /// A measurement.
    F64(f64),
    /// A label.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// Renders the value as a JSON fragment (numbers bare, strings
    /// escaped; non-finite floats become JSON `null`).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => v.to_string(),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Str(v) => json_string(v),
        }
    }
}

/// A completed span: a named region of work with wall-clock extent.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (dotted hierarchy by convention, e.g. `exec.nlse_tree`).
    pub name: &'static str,
    /// Start offset from the tracer's epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// Attached metadata, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A one-shot event: a named instant with metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Offset from the tracer's epoch.
    pub at: Duration,
    /// Attached metadata, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Destination for trace records. Implementations must be cheap and
/// thread-safe: records arrive from worker threads mid-computation.
pub trait TraceSink: Send + Sync {
    /// Whether this sink actually keeps records. The tracer caches the
    /// answer at install time: a `false` here (the [`NullSink`]) turns
    /// every instrumentation site into a pair of relaxed atomic loads.
    fn wants_records(&self) -> bool {
        true
    }

    /// Receives one completed span.
    fn record_span(&self, span: &SpanRecord);

    /// Receives one event.
    fn record_event(&self, event: &EventRecord);

    /// Flushes any buffered output (file sinks). Default: nothing.
    fn flush(&self) {}
}

/// The do-nothing sink installed by default; reports itself inert.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn wants_records(&self) -> bool {
        false
    }

    fn record_span(&self, _span: &SpanRecord) {}

    fn record_event(&self, _event: &EventRecord) {}
}

/// Bounded in-memory sink: keeps the most recent records, dropping the
/// oldest on overflow. Useful for tests and for `tconv profile`.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    events: Mutex<VecDeque<EventRecord>>,
}

impl RingSink {
    /// A ring buffer holding at most `capacity` spans and events each.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the buffered spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock_clean(&self.spans).iter().cloned().collect()
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        lock_clean(&self.events).iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn record_span(&self, span: &SpanRecord) {
        let mut q = lock_clean(&self.spans);
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(span.clone());
    }

    fn record_event(&self, event: &EventRecord) {
        let mut q = lock_clean(&self.events);
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

/// Structured file sink: one JSON object per line (JSONL), suitable for
/// `jq` or downstream ingestion.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    fn write_line(&self, line: String) {
        let mut out = lock_clean(&self.out);
        // A full disk mid-trace must not take the traced computation
        // down with it; the final flush in `TraceSink::flush` is the
        // caller's chance to notice.
        let _ = writeln!(out, "{line}");
    }
}

impl TraceSink for JsonlSink {
    fn record_span(&self, span: &SpanRecord) {
        let mut line = format!(
            "{{\"type\":\"span\",\"name\":{},\"start_us\":{},\"duration_us\":{}",
            json_string(span.name),
            span.start.as_micros(),
            span.duration.as_micros()
        );
        append_fields(&mut line, &span.fields);
        line.push('}');
        self.write_line(line);
    }

    fn record_event(&self, event: &EventRecord) {
        let mut line = format!(
            "{{\"type\":\"event\",\"name\":{},\"at_us\":{}",
            json_string(event.name),
            event.at.as_micros()
        );
        append_fields(&mut line, &event.fields);
        line.push('}');
        self.write_line(line);
    }

    fn flush(&self) {
        let _ = lock_clean(&self.out).flush();
    }
}

/// Human-readable sink printing one line per record to stderr.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record_span(&self, span: &SpanRecord) {
        let mut line = format!(
            "[{:>12.3} ms] span  {:<24} {:>10.3} ms",
            span.start.as_secs_f64() * 1e3,
            span.name,
            span.duration.as_secs_f64() * 1e3
        );
        for (k, v) in &span.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }

    fn record_event(&self, event: &EventRecord) {
        let mut line = format!(
            "[{:>12.3} ms] event {:<24}",
            event.at.as_secs_f64() * 1e3,
            event.name
        );
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

fn append_fields(line: &mut String, fields: &[(&'static str, FieldValue)]) {
    for (k, v) in fields {
        line.push(',');
        line.push_str(&json_string(k));
        line.push(':');
        line.push_str(&v.to_json());
    }
}

/// Escapes `s` into a quoted JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Locks a mutex, recovering the data if a panicking holder poisoned it
/// (telemetry must never compound an unrelated failure).
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn field_value_json_forms() {
        assert_eq!(FieldValue::from(3u64).to_json(), "3");
        assert_eq!(FieldValue::from(2.5).to_json(), "2.5");
        assert_eq!(FieldValue::from(f64::NAN).to_json(), "null");
        assert_eq!(FieldValue::from("x\"y").to_json(), "\"x\\\"y\"");
    }

    #[test]
    fn ring_sink_drops_oldest() {
        let sink = RingSink::new(2);
        for i in 0..4u64 {
            sink.record_span(&SpanRecord {
                name: "s",
                start: Duration::from_micros(i),
                duration: Duration::ZERO,
                fields: vec![],
            });
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, Duration::from_micros(2));
        assert_eq!(spans[1].start, Duration::from_micros(3));
    }

    #[test]
    fn null_sink_is_inert() {
        assert!(!NullSink.wants_records());
        assert!(RingSink::new(4).wants_records());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("ta_telemetry_sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record_span(&SpanRecord {
            name: "exec.run",
            start: Duration::from_micros(10),
            duration: Duration::from_micros(250),
            fields: vec![("mode", "approx".into()), ("ops", 42u64.into())],
        });
        sink.record_event(&EventRecord {
            name: "retry",
            at: Duration::from_micros(11),
            fields: vec![],
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"span\",\"name\":\"exec.run\""));
        assert!(lines[0].contains("\"ops\":42"));
        assert!(lines[0].ends_with('}'));
        assert!(lines[1].contains("\"type\":\"event\""));
        std::fs::remove_file(&path).ok();
    }
}
