//! A strict parser for the Prometheus text exposition format (version
//! 0.0.4) — the grammar a real Prometheus scraper applies to
//! [`crate::Registry::to_prometheus`] output.
//!
//! Two consumers: the parse-back tests (every snapshot the registry
//! renders must be accepted verbatim), and `tconv top` (which scrapes a
//! running server's Metrics wire reply and needs the samples back as
//! numbers). The parser is strict on purpose: a malformed name, a bad
//! escape, or a dangling label brace is an error, not a best-effort
//! skip, so exporter regressions surface as test failures.

use std::collections::BTreeMap;
use std::fmt;

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name (family plus any `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`/`-Inf`/`NaN` are valid).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: samples plus the `# HELP`/`# TYPE` metadata.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// All samples in document order.
    pub samples: Vec<Sample>,
    /// `# HELP` text per family.
    pub help: BTreeMap<String, String>,
    /// `# TYPE` per family (`counter` | `gauge` | `histogram` | …).
    pub types: BTreeMap<String, String>,
}

impl Scrape {
    /// The value of the exactly-named series with exactly these labels
    /// (order-insensitive).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|(k, v)| s.label(k) == Some(v))
            })
            .map(|s| s.value)
    }

    /// The value of the unlabeled series `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.get(name, &[])
    }

    /// Sum over every series of family `name` (all label combinations).
    /// An absent family sums to positive zero (`Iterator::sum` on an
    /// empty `f64` iterator yields `-0.0`, which renders as `-0`).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .fold(0.0, |acc, s| acc + s.value)
    }

    /// All samples of family `name`.
    pub fn family(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

/// Why a document was rejected; carries the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What the parser expected or found.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prometheus text line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, what: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        what: what.into(),
    })
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if is_name_start(c)) && chars.all(is_name_char)
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a float the way Prometheus does (`+Inf`, `-Inf`, `NaN`
/// accepted case-insensitively alongside ordinary decimals).
fn parse_value(tok: &str) -> Option<f64> {
    match tok.to_ascii_lowercase().as_str() {
        "+inf" | "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        "nan" => Some(f64::NAN),
        _ => tok.parse().ok(),
    }
}

/// Parses a full exposition document.
///
/// # Errors
///
/// Returns the first grammar violation with its line number.
pub fn parse(text: &str) -> Result<Scrape, ParseError> {
    let mut scrape = Scrape::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = match rest.split_once(' ') {
                    Some((n, h)) => (n, h),
                    None => (rest, ""),
                };
                if !valid_metric_name(name) {
                    return err(lineno, format!("bad metric name in HELP: {name:?}"));
                }
                scrape.help.insert(name.to_string(), help.to_string());
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let Some((name, kind)) = rest.split_once(' ') else {
                    return err(lineno, "TYPE needs a name and a type");
                };
                if !valid_metric_name(name) {
                    return err(lineno, format!("bad metric name in TYPE: {name:?}"));
                }
                let kind = kind.trim();
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return err(lineno, format!("unknown metric type {kind:?}"));
                }
                if scrape.types.contains_key(name) {
                    return err(lineno, format!("duplicate TYPE for {name}"));
                }
                scrape.types.insert(name.to_string(), kind.to_string());
            }
            // Other comments are legal and ignored.
            continue;
        }
        scrape.samples.push(parse_sample(line, lineno)?);
    }
    Ok(scrape)
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, ParseError> {
    let mut chars = line.char_indices().peekable();
    // Metric name.
    let name_end = chars
        .find(|&(_, c)| !is_name_char(c))
        .map_or(line.len(), |(i, _)| i);
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return err(lineno, format!("bad metric name: {name:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let (labels, consumed) = parse_labels(body, lineno)?;
        (labels, &body[consumed..])
    } else {
        (Vec::new(), rest)
    };
    // Value, optionally followed by a timestamp.
    let mut toks = rest.split_whitespace();
    let Some(value_tok) = toks.next() else {
        return err(lineno, "sample line has no value");
    };
    let Some(value) = parse_value(value_tok) else {
        return err(lineno, format!("bad sample value: {value_tok:?}"));
    };
    if let Some(ts) = toks.next() {
        if ts.parse::<i64>().is_err() {
            return err(lineno, format!("bad timestamp: {ts:?}"));
        }
    }
    if toks.next().is_some() {
        return err(lineno, "trailing tokens after value/timestamp");
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses `name="value",…}` starting just past the opening `{`; returns
/// the labels and the byte offset just past the closing `}`.
#[allow(clippy::type_complexity)]
fn parse_labels(body: &str, lineno: usize) -> Result<(Vec<(String, String)>, usize), ParseError> {
    let mut labels = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0usize;
    loop {
        if i >= bytes.len() {
            return err(lineno, "unterminated label set");
        }
        if bytes[i] == b'}' {
            return Ok((labels, i + 1));
        }
        // Label name.
        let start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return err(lineno, "label missing '='");
        }
        let lname = &body[start..i];
        if !valid_label_name(lname) {
            return err(lineno, format!("bad label name: {lname:?}"));
        }
        i += 1; // past '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return err(lineno, "label value must be quoted");
        }
        i += 1; // past opening quote
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return err(lineno, "unterminated label value");
            }
            match bytes[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => {
                            return err(
                                lineno,
                                format!("bad escape \\{:?}", other.map(|&b| b as char)),
                            )
                        }
                    }
                    i += 1;
                }
                _ => {
                    // Copy the full UTF-8 character, not one byte.
                    let ch = body[i..].chars().next().unwrap_or('\u{FFFD}');
                    value.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        labels.push((lname.to_string(), value));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            _ => return err(lineno, "expected ',' or '}' after label"),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn parses_samples_labels_and_metadata() {
        let text = "\
# HELP req_total Requests served.
# TYPE req_total counter
req_total 41
req_total{tenant=\"acme\",zone=\"eu\"} 7
# TYPE lat histogram
lat_bucket{le=\"0.1\"} 2
lat_bucket{le=\"+Inf\"} 3
lat_sum 0.42
lat_count 3
";
        let s = parse(text).unwrap();
        assert_eq!(s.value("req_total"), Some(41.0));
        assert_eq!(
            s.get("req_total", &[("tenant", "acme"), ("zone", "eu")]),
            Some(7.0)
        );
        assert_eq!(s.sum("req_total"), 48.0);
        assert_eq!(s.help["req_total"], "Requests served.");
        assert_eq!(s.types["lat"], "histogram");
        let inf = s.family("lat_bucket");
        assert_eq!(inf.len(), 2);
        assert_eq!(inf[1].label("le"), Some("+Inf"));
        assert_eq!(inf[1].value, 3.0);
    }

    #[test]
    fn unescapes_label_values() {
        let s = parse("x{k=\"a\\\"b\\\\c\\nd\"} 1\n").unwrap();
        assert_eq!(s.samples[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn accepts_special_values_and_timestamps() {
        let s = parse("a +Inf 1700000000\nb -Inf\nc NaN\n").unwrap();
        assert_eq!(s.value("a"), Some(f64::INFINITY));
        assert_eq!(s.value("b"), Some(f64::NEG_INFINITY));
        assert!(s.value("c").unwrap().is_nan());
    }

    #[test]
    fn rejects_grammar_violations() {
        for (bad, why) in [
            ("1leading_digit 3\n", "name starts with digit"),
            ("name-with-dash 3\n", "dash in name"),
            ("x{9bad=\"v\"} 1\n", "label starts with digit"),
            ("x{k=\"v\" 1\n", "unterminated label set"),
            ("x{k=\"v\\q\"} 1\n", "bad escape"),
            ("x{k=unquoted} 1\n", "unquoted label value"),
            ("x\n", "no value"),
            ("x notanumber\n", "bad value"),
            ("x 1 2 3\n", "trailing tokens"),
            ("# TYPE x rainbow\n", "unknown type"),
            ("# TYPE x counter\n# TYPE x counter\n", "duplicate TYPE"),
        ] {
            assert!(parse(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn registry_snapshot_parses_back() {
        let r = crate::Registry::new();
        r.describe("f_total", "Frames.");
        r.counter("f_total").add(2);
        r.labeled_counter("f_total", "tenant", "a\"b\\c\nd").inc();
        r.gauge("energy_pj").set(1.25);
        let h = r.histogram_with("lat_seconds", &[0.01, 0.1]);
        h.observe(0.05);
        let s = parse(&r.to_prometheus()).unwrap();
        assert_eq!(s.value("f_total"), Some(2.0));
        assert_eq!(s.get("f_total", &[("tenant", "a\"b\\c\nd")]), Some(1.0));
        assert_eq!(s.value("energy_pj"), Some(1.25));
        assert_eq!(s.get("lat_seconds_bucket", &[("le", "+Inf")]), Some(1.0));
        assert_eq!(s.help["f_total"], "Frames.");
        assert_eq!(s.types["lat_seconds"], "histogram");
    }
}
