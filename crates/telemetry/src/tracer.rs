//! The span/event collector: active-flag gating, RAII guards, and sink
//! dispatch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::sink::{EventRecord, FieldValue, NullSink, SpanRecord, TraceSink};
use crate::trace_id::current_trace;

/// Appends the current thread's trace ID to `fields` (as a `trace` hex
/// string) when a [`crate::trace_id::TraceScope`] is active. Called only
/// on the already-active paths, so the disabled-tracer budget holds.
fn stamp_trace(fields: &mut Vec<(&'static str, FieldValue)>) {
    let id = current_trace();
    if !id.is_zero() {
        fields.push(("trace", FieldValue::Str(id.to_hex())));
    }
}

/// Thread-safe span/event collector.
///
/// The tracer is *inactive* until both hold: tracing is enabled and the
/// installed sink wants records (the default [`NullSink`] does not).
/// Inactive, every instrumentation site costs two relaxed atomic loads
/// and no clock reads — the property the `telemetry` bench enforces.
pub struct Tracer {
    epoch: Instant,
    enabled: AtomicBool,
    /// Cached `sink.wants_records()`, refreshed on install.
    sink_live: AtomicBool,
    /// Opt-in fine-grained stage timing (used by `exec` to decide whether
    /// to clock inner-loop stages; see `tconv profile`).
    profiling: AtomicBool,
    sink: RwLock<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("sink_live", &self.sink_live.load(Ordering::Relaxed))
            .field("profiling", &self.profiling.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A fresh tracer: null sink, disabled, not profiling.
    pub(crate) fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            enabled: AtomicBool::new(false),
            sink_live: AtomicBool::new(false),
            profiling: AtomicBool::new(false),
            sink: RwLock::new(Arc::new(NullSink)),
        }
    }

    /// Installs `sink` and enables tracing. Replaces any previous sink
    /// (which is flushed first).
    pub fn install(&self, sink: Arc<dyn TraceSink>) {
        let live = sink.wants_records();
        {
            let mut slot = match self.sink.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.flush();
            *slot = sink;
        }
        self.sink_live.store(live, Ordering::Release);
        self.enabled.store(true, Ordering::Release);
    }

    /// Enables or disables tracing without touching the sink.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Turns fine-grained stage profiling on or off.
    pub fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Release);
    }

    /// True when instrumented code should measure per-stage timings.
    pub fn profiling(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// True when records will actually reach a sink. Instrumentation
    /// sites check this before doing any measuring work.
    pub fn active(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) && self.sink_live.load(Ordering::Relaxed)
    }

    /// Offset of `at` from the tracer's epoch (zero if `at` predates it).
    fn offset(&self, at: Instant) -> Duration {
        at.saturating_duration_since(self.epoch)
    }

    fn with_sink(&self, f: impl FnOnce(&dyn TraceSink)) {
        let slot = match self.sink.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(slot.as_ref());
    }

    /// A handle to the currently installed sink. Lets a wrapper (the
    /// serve-mode flight recorder) capture and forward to whatever sink
    /// the operator installed first.
    pub fn current_sink(&self) -> Arc<dyn TraceSink> {
        let slot = match self.sink.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(&slot)
    }

    /// Opens an RAII span. When the tracer is inactive the guard is inert
    /// (no clock read, drops for free).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name,
            start: self.active().then(Instant::now),
            fields: Vec::new(),
        }
    }

    /// Records a span whose duration the caller measured itself — the
    /// aggregate-stage pattern: hot loops accumulate a `Duration` locally
    /// and emit one span per frame instead of thousands of guards.
    pub fn record_span(
        &self,
        name: &'static str,
        duration: Duration,
        mut fields: Vec<(&'static str, FieldValue)>,
    ) {
        if !self.active() {
            return;
        }
        stamp_trace(&mut fields);
        let end = Instant::now();
        let start = self.offset(end).saturating_sub(duration);
        let record = SpanRecord {
            name,
            start,
            duration,
            fields,
        };
        self.with_sink(|s| s.record_span(&record));
    }

    /// Records a one-shot event.
    pub fn event(&self, name: &'static str, mut fields: Vec<(&'static str, FieldValue)>) {
        if !self.active() {
            return;
        }
        stamp_trace(&mut fields);
        let record = EventRecord {
            name,
            at: self.offset(Instant::now()),
            fields,
        };
        self.with_sink(|s| s.record_event(&record));
    }

    /// Flushes the installed sink.
    pub fn flush(&self) {
        self.with_sink(|s| s.flush());
    }
}

/// RAII guard returned by [`Tracer::span`]; emits a [`SpanRecord`] with
/// the elapsed wall time when dropped (if the tracer was active when the
/// span opened).
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard<'_> {
    /// Attaches a metadata field (no-op on inert guards).
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// True when this guard will emit a record on drop.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let mut fields = std::mem::take(&mut self.fields);
        stamp_trace(&mut fields);
        let record = SpanRecord {
            name: self.name,
            start: self.tracer.offset(start),
            duration: start.elapsed(),
            fields,
        };
        self.tracer.with_sink(|s| s.record_span(&record));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn inactive_tracer_emits_nothing() {
        let tracer = Tracer::new();
        assert!(!tracer.active());
        {
            let mut g = tracer.span("quiet");
            assert!(!g.is_recording());
            g.add_field("ignored", 1u64);
        }
        tracer.event("quiet", vec![]);
        // Install a ring afterwards: it must start empty.
        let ring = Arc::new(RingSink::new(8));
        tracer.install(ring.clone());
        assert!(ring.spans().is_empty() && ring.events().is_empty());
    }

    #[test]
    fn spans_and_events_reach_the_sink() {
        let tracer = Tracer::new();
        let ring = Arc::new(RingSink::new(8));
        tracer.install(ring.clone());
        assert!(tracer.active());
        {
            let mut g = tracer.span("work");
            g.add_field("n", 7u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        tracer.record_span("agg", Duration::from_millis(5), vec![("k", 1.5.into())]);
        tracer.event("tick", vec![("what", "test".into())]);

        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "work");
        assert!(spans[0].duration >= Duration::from_millis(2));
        assert_eq!(spans[0].fields, vec![("n", FieldValue::U64(7))]);
        assert_eq!(spans[1].name, "agg");
        assert_eq!(spans[1].duration, Duration::from_millis(5));
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "tick");
    }

    #[test]
    fn disabling_stops_collection() {
        let tracer = Tracer::new();
        let ring = Arc::new(RingSink::new(8));
        tracer.install(ring.clone());
        tracer.set_enabled(false);
        assert!(!tracer.active());
        drop(tracer.span("off"));
        assert!(ring.spans().is_empty());
        tracer.set_enabled(true);
        drop(tracer.span("on"));
        assert_eq!(ring.spans().len(), 1);
    }

    #[test]
    fn records_carry_the_current_trace_scope() {
        use crate::trace_id::{TraceId, TraceScope};
        let tracer = Tracer::new();
        let ring = Arc::new(RingSink::new(8));
        tracer.install(ring.clone());
        let id = TraceId::generate();
        {
            let _scope = TraceScope::enter(id);
            drop(tracer.span("scoped"));
            tracer.event("scoped_event", vec![]);
            tracer.record_span("scoped_agg", Duration::from_millis(1), vec![]);
        }
        drop(tracer.span("unscoped"));
        let spans = ring.spans();
        let hex = FieldValue::Str(id.to_hex());
        assert!(spans[0].fields.contains(&("trace", hex.clone())));
        assert!(spans[1].fields.contains(&("trace", hex.clone())));
        assert!(spans[2].fields.is_empty(), "{:?}", spans[2]);
        assert!(ring.events()[0].fields.contains(&("trace", hex)));
    }

    #[test]
    fn current_sink_returns_the_installed_sink() {
        let tracer = Tracer::new();
        assert!(!tracer.current_sink().wants_records());
        let ring = Arc::new(RingSink::new(8));
        tracer.install(ring.clone());
        tracer.current_sink().record_event(&EventRecord {
            name: "direct",
            at: Duration::ZERO,
            fields: vec![],
        });
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn concurrent_spans_from_scoped_threads() {
        let tracer = Tracer::new();
        let ring = Arc::new(RingSink::new(1024));
        tracer.install(ring.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        drop(tracer.span("worker"));
                    }
                });
            }
        });
        assert_eq!(ring.spans().len(), 200);
    }
}
