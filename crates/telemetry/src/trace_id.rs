//! Request trace identity: a 16-byte ID carried on the wire, echoed in
//! replies and journal records, and attached to every span/event emitted
//! while the request is being served (DESIGN.md §5.14).
//!
//! The ID is opaque: the all-zero value means "absent" (a client that
//! does not care), anything else names one request end to end. Server
//! code propagates the ID through threads with [`TraceScope`], a
//! thread-local RAII scope; the tracer stamps the current scope's ID
//! onto every record it emits, so a flight-recorder dump can be filtered
//! to one request after the fact.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A 16-byte request trace identifier. All-zero means "no trace".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub [u8; 16]);

impl TraceId {
    /// The absent trace ID (all zero bytes).
    pub const ZERO: TraceId = TraceId([0; 16]);

    /// True when this is the absent (all-zero) ID.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 16]
    }

    /// Generates a fresh, effectively-unique ID without an RNG
    /// dependency: wall clock, process ID, and a process-global counter
    /// mixed through two rounds of splitmix64. Collision within one
    /// deployment would need the same nanosecond, pid, and counter value.
    pub fn generate() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ u64::from(std::process::id()).rotate_left(32));
        let lo = splitmix64(hi ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&hi.to_be_bytes());
        bytes[8..].copy_from_slice(&lo.to_be_bytes());
        // An astronomically unlucky all-zero draw must not alias "absent".
        if bytes == [0; 16] {
            bytes[15] = 1;
        }
        TraceId(bytes)
    }

    /// Renders the ID as 32 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(32);
        for b in self.0 {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Parses 32 hex characters back into an ID. Returns `None` for any
    /// other shape.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut bytes = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hex = std::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(hex, 16).ok()?;
        }
        Some(TraceId(bytes))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// The classic splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

thread_local! {
    static CURRENT: Cell<TraceId> = const { Cell::new(TraceId::ZERO) };
}

/// The trace ID active on this thread ([`TraceId::ZERO`] when none).
pub fn current_trace() -> TraceId {
    CURRENT.with(Cell::get)
}

/// RAII scope that makes `id` the current trace on this thread and
/// restores the previous one on drop. Scopes nest.
#[derive(Debug)]
pub struct TraceScope {
    previous: TraceId,
}

impl TraceScope {
    /// Enters `id` as the current trace on this thread.
    pub fn enter(id: TraceId) -> TraceScope {
        let previous = CURRENT.with(|c| c.replace(id));
        TraceScope { previous }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn zero_is_absent() {
        assert!(TraceId::ZERO.is_zero());
        assert!(TraceId::default().is_zero());
        assert!(!TraceId::generate().is_zero());
    }

    #[test]
    fn generated_ids_are_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
    }

    #[test]
    fn hex_round_trips() {
        let id = TraceId::generate();
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(TraceId::from_hex(&hex), Some(id));
        assert_eq!(TraceId::from_hex("short"), None);
        assert_eq!(TraceId::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(current_trace().is_zero());
        let a = TraceId::generate();
        let b = TraceId::generate();
        {
            let _outer = TraceScope::enter(a);
            assert_eq!(current_trace(), a);
            {
                let _inner = TraceScope::enter(b);
                assert_eq!(current_trace(), b);
            }
            assert_eq!(current_trace(), a);
        }
        assert!(current_trace().is_zero());
    }

    #[test]
    fn scope_is_thread_local() {
        let id = TraceId::generate();
        let _scope = TraceScope::enter(id);
        std::thread::spawn(|| assert!(current_trace().is_zero()))
            .join()
            .unwrap();
        assert_eq!(current_trace(), id);
    }
}
