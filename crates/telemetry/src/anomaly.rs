//! Anomaly reporting: a process-global hook that turns "something went
//! wrong" signals from any layer into counters, trace events, and (when
//! a server installs one) flight-recorder bundle dumps.
//!
//! The runtime and the server report anomalies through [`report`]; they
//! never know who is listening. Reporting is rare-path by construction —
//! every kind corresponds to a failure or a defensive action — so the
//! cost of the hook lookup is irrelevant.

use std::sync::{Arc, OnceLock, RwLock};

use crate::sink::FieldValue;
use crate::trace_id::current_trace;

/// The kinds of anomaly the stack reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnomalyKind {
    /// A supervised attempt blew its watchdog budget.
    WatchdogTimeout,
    /// A supervised attempt panicked (isolated by the supervisor).
    Panic,
    /// A frame completed only via fallback (degraded output).
    DegradedFrame,
    /// A frame produced no usable output.
    FailedFrame,
    /// A journal write or recovery step failed.
    JournalError,
    /// A connection was quarantined for repeated protocol violations.
    Quarantine,
    /// Load shedding crossed the burst threshold.
    ShedBurst,
}

impl AnomalyKind {
    /// Stable lowercase label, used in metrics and bundle files.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::WatchdogTimeout => "watchdog_timeout",
            AnomalyKind::Panic => "panic",
            AnomalyKind::DegradedFrame => "degraded_frame",
            AnomalyKind::FailedFrame => "failed_frame",
            AnomalyKind::JournalError => "journal_error",
            AnomalyKind::Quarantine => "quarantine",
            AnomalyKind::ShedBurst => "shed_burst",
        }
    }
}

/// One reported anomaly, handed to the installed hook.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// What went wrong.
    pub kind: AnomalyKind,
    /// The trace active on the reporting thread (zero when none).
    pub trace_hex: String,
    /// Reporter-supplied context fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

type Hook = Arc<dyn Fn(&Anomaly) + Send + Sync>;

fn hook_slot() -> &'static RwLock<Option<Hook>> {
    static SLOT: OnceLock<RwLock<Option<Hook>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs the process-global anomaly hook (replacing any previous
/// one). The serve layer installs a bundle-dumping hook at startup.
pub fn set_anomaly_hook(hook: Arc<dyn Fn(&Anomaly) + Send + Sync>) {
    let mut slot = match hook_slot().write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = Some(hook);
}

/// Removes the anomaly hook (counters and events still fire).
pub fn clear_anomaly_hook() {
    let mut slot = match hook_slot().write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = None;
}

/// Reports one anomaly: bumps `ta_anomalies_total{kind=...}`, emits an
/// `anomaly` trace event carrying `fields`, and invokes the installed
/// hook (if any) with the current thread's trace attached.
pub fn report(kind: AnomalyKind, fields: Vec<(&'static str, FieldValue)>) {
    crate::metrics()
        .labeled_counter("ta_anomalies_total", "kind", kind.label())
        .inc();
    let mut event_fields = vec![("kind", FieldValue::Str(kind.label().to_string()))];
    event_fields.extend(fields.iter().cloned());
    crate::tracer().event("anomaly", event_fields);
    let hook = {
        let slot = match hook_slot().read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.clone()
    };
    if let Some(hook) = hook {
        let trace = current_trace();
        hook(&Anomaly {
            kind,
            trace_hex: if trace.is_zero() {
                String::new()
            } else {
                trace.to_hex()
            },
            fields,
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::Mutex;

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            AnomalyKind::WatchdogTimeout,
            AnomalyKind::Panic,
            AnomalyKind::DegradedFrame,
            AnomalyKind::FailedFrame,
            AnomalyKind::JournalError,
            AnomalyKind::Quarantine,
            AnomalyKind::ShedBurst,
        ];
        let labels: std::collections::BTreeSet<&str> =
            kinds.iter().map(AnomalyKind::label).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn report_invokes_hook_with_trace_and_bumps_counter() {
        use crate::trace_id::{TraceId, TraceScope};
        let seen: Arc<Mutex<Vec<Anomaly>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        set_anomaly_hook(Arc::new(move |a: &Anomaly| {
            seen2.lock().unwrap().push(a.clone());
        }));
        let id = TraceId::generate();
        {
            let _scope = TraceScope::enter(id);
            report(AnomalyKind::Quarantine, vec![("strikes", 3u64.into())]);
        }
        report(AnomalyKind::JournalError, vec![]);
        clear_anomaly_hook();
        report(AnomalyKind::Panic, vec![]); // must not reach the hook
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].kind, AnomalyKind::Quarantine);
        assert_eq!(seen[0].trace_hex, id.to_hex());
        assert_eq!(seen[0].fields, vec![("strikes", FieldValue::U64(3))]);
        assert!(seen[1].trace_hex.is_empty());
        let snapshot = crate::metrics().to_prometheus();
        assert!(
            snapshot.contains("ta_anomalies_total{kind=\"quarantine\"}"),
            "{snapshot}"
        );
    }
}
