//! Observability for the temporal-computing stack (DESIGN.md §5.9).
//!
//! The paper's claims are quantitative — per-stage energy, delay-line
//! activity, latency under supervision — so the simulator needs a way to
//! *watch* a run, not just read a post-hoc report. This crate provides
//! that layer with zero external dependencies:
//!
//! * **Tracing** ([`tracer()`], [`span!`]): RAII span guards and one-shot
//!   events with wall-clock timing and typed metadata, delivered to a
//!   pluggable [`TraceSink`] — in-memory ring buffer ([`RingSink`]),
//!   JSONL file ([`JsonlSink`]), or human-readable stderr
//!   ([`StderrSink`]). With the default [`NullSink`] the tracer reports
//!   itself inactive and instrumented code skips all work.
//! * **Metrics** ([`metrics()`]): a process-global [`Registry`] of
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s, exported
//!   as Prometheus exposition text or a JSON snapshot.
//! * **Exact percentiles** ([`ExactHistogram`]): the nearest-rank
//!   percentile math shared with `ta-runtime`'s health reports.
//! * **Waveforms** ([`VcdBuilder`]): value-change-dump export of signal
//!   arrival times, viewable in GTKWave.
//!
//! Overhead budget: instrumented hot paths must stay within 2% of their
//! uninstrumented twins when no real sink is installed (enforced by the
//! `telemetry` criterion bench). The design keeps the disabled path to a
//! pair of relaxed atomic loads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod histogram;
pub mod metrics;
pub mod promtext;
pub mod recorder;
pub mod sink;
pub mod trace_id;
pub mod tracer;
pub mod vcd;

pub use anomaly::{
    clear_anomaly_hook, report as report_anomaly, set_anomaly_hook, Anomaly, AnomalyKind,
};
pub use histogram::{ExactHistogram, Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge, Registry};
pub use recorder::{FlightRecord, FlightRecordKind, FlightRecorder};
pub use sink::{
    EventRecord, FieldValue, JsonlSink, NullSink, RingSink, SpanRecord, StderrSink, TraceSink,
};
pub use trace_id::{current_trace, TraceId, TraceScope};
pub use tracer::{SpanGuard, Tracer};
pub use vcd::VcdBuilder;

use std::sync::OnceLock;

/// The process-global tracer. Inactive (null sink, disabled) until a sink
/// is installed with [`Tracer::install`].
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// The process-global metrics registry. Always live: recording into it is
/// a handful of atomic operations, so instrumented code updates it
/// unconditionally and `to_prometheus`/`to_json` snapshots reflect the
/// whole process.
pub fn metrics() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Opens an RAII span on the global tracer: `span!("name")` or
/// `span!("name", "pixels" => 4096u64)`. Fields are recorded only when
/// the tracer is active, so arguments should be cheap to evaluate.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::tracer().span($name)
    };
    ($name:expr, $($key:expr => $value:expr),+ $(,)?) => {{
        let mut guard = $crate::tracer().span($name);
        $(guard.add_field($key, $value);)+
        guard
    }};
}
