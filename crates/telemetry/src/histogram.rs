//! Histograms: a lock-free fixed-bucket histogram for live metrics, and
//! an exact sample-storing histogram for small-batch percentile reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fixed-bucket histogram with atomic counters.
///
/// Buckets are defined by ascending upper bounds (Prometheus `le`
/// semantics: a sample lands in the first bucket whose bound is ≥ the
/// value), plus an implicit `+Inf` overflow bucket. Quantiles are derived
/// by nearest-rank over the cumulative bucket counts, so they are upper
/// bounds accurate to one bucket width; the exact observed minimum and
/// maximum are tracked separately and clamp the estimate.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One counter per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (`+Inf` overflow implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, aligned with `bounds` plus one overflow slot.
    pub counts: Vec<u64>,
    /// Total samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds. Bounds are
    /// sorted and deduplicated defensively; non-finite bounds are
    /// dropped (the overflow bucket already covers `+Inf`).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// `count` geometrically spaced bounds starting at `start` (factor
    /// `factor` between neighbours) — the usual latency-histogram shape.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Records one sample. Non-finite samples are counted in the
    /// overflow bucket but excluded from sum/min/max.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.bounds.len());
        let idx = if v.is_finite() {
            idx
        } else {
            self.bounds.len()
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            fetch_update_f64(&self.sum_bits, |s| s + v);
            fetch_update_f64(&self.min_bits, |m| m.min(v));
            fetch_update_f64(&self.max_bits, |m| m.max(v));
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of all finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest finite sample (0 when empty).
    pub fn min(&self) -> f64 {
        let m = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Largest finite sample (0 when empty).
    pub fn max(&self) -> f64 {
        let m = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// holding the rank-`⌈q·n⌉` sample, clamped to the observed min/max
    /// (so a saturating bucket cannot report a value never seen).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let snap = self.snapshot();
        if snap.count == 0 {
            return 0.0;
        }
        let target = ((q * snap.count as f64).ceil() as u64).clamp(1, snap.count);
        let mut cumulative = 0u64;
        for (i, c) in snap.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let bound = snap.bounds.get(i).copied().unwrap_or(snap.max);
                return bound.clamp(snap.min, snap.max);
            }
        }
        snap.max
    }

    /// Copies out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// CAS loop updating an `f64` stored as bits in an `AtomicU64`.
fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Exact sample-storing histogram with nearest-rank percentiles — the
/// single definition of the percentile math previously duplicated in
/// `ta-runtime::health`. Suited to batch-sized sample sets where exact
/// answers matter more than constant memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactHistogram {
    samples: Vec<f64>,
}

impl ExactHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        ExactHistogram::default()
    }

    /// Builds from raw samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        ExactHistogram {
            samples: samples.to_vec(),
        }
    }

    /// Builds from durations (seconds).
    pub fn from_durations(durations: &[Duration]) -> Self {
        ExactHistogram {
            samples: durations.iter().map(Duration::as_secs_f64).collect(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 when empty).
    ///
    /// Uses Neumaier's compensated summation: a naive running sum loses
    /// the small samples entirely once the accumulator is dominated by
    /// large ones (mixing nanosecond and multi-second latencies spans
    /// ~1e10), whereas the compensated sum keeps the rounding error
    /// bounded independently of sample count and magnitude spread.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0_f64;
        let mut compensation = 0.0_f64;
        for &v in &self.samples {
            let t = sum + v;
            // Whichever operand was smaller had its low bits rounded
            // away in `t`; recover them into the compensation term.
            compensation += if sum.abs() >= v.abs() {
                (sum - t) + v
            } else {
                (v - t) + sum
            };
            sum = t;
        }
        (sum + compensation) / self.samples.len() as f64
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Nearest-rank percentiles for each quantile in `qs` (sorted once).
    /// Empty input yields zeros — matching the health-report convention.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return vec![0.0; qs.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        qs.iter()
            .map(|&q| {
                let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
                sorted[idx]
            })
            .collect()
    }

    /// Single nearest-rank percentile (see [`ExactHistogram::percentiles`]).
    pub fn percentile(&self, q: f64) -> f64 {
        self.percentiles(&[q])[0]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(7.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            // Bucket bound is 10, but min/max clamping recovers the
            // exact single sample.
            assert_eq!(h.quantile(q), 7.0, "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 7.0);
        assert_eq!(h.max(), 7.0);
    }

    #[test]
    fn bucket_boundaries_are_le_semantics() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // lands in the le=1 bucket
        h.observe(1.5); // le=2
        h.observe(2.0); // le=2
        h.observe(9.0); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1]);
        assert_eq!(snap.count, 4);
    }

    #[test]
    fn saturating_overflow_bucket_clamps_to_observed_max() {
        // Every sample overflows the largest bound: the quantile must
        // report the observed max, not infinity.
        let h = Histogram::new(&[0.001]);
        for v in [5.0, 6.0, 7.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 7.0);
        assert_eq!(h.quantile(0.99), 7.0);
        assert_eq!(h.max(), 7.0);
    }

    #[test]
    fn quantiles_track_nearest_rank_within_bucket_width() {
        let h = Histogram::exponential(0.001, 2.0, 12);
        for ms in 1..=100u64 {
            h.observe(ms as f64 / 1000.0);
        }
        // p50 over 1..=100 ms is 50 ms; the covering bucket bound is
        // 64 ms.
        let p50 = h.quantile(0.5);
        assert!((0.05..=0.064).contains(&p50), "p50={p50}");
        assert!(h.quantile(1.0) <= 0.1 + 1e-12);
        assert!((h.mean() - 0.0505).abs() < 1e-9);
    }

    #[test]
    fn non_finite_samples_count_but_do_not_poison_stats() {
        let h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe(f64::INFINITY);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 0.5);
        assert_eq!(h.max(), 0.5);
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = Histogram::exponential(1.0, 2.0, 8);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 % 37.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        let snap = h.snapshot();
        assert_eq!(snap.counts.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn exact_histogram_matches_manual_nearest_rank() {
        let mut e = ExactHistogram::new();
        for ms in 1..=100u64 {
            e.record(ms as f64 / 1000.0);
        }
        let ps = e.percentiles(&[0.5, 0.9, 0.99]);
        assert!((ps[0] - 0.050).abs() < 1e-12);
        assert!((ps[1] - 0.090).abs() < 1e-12);
        assert!((ps[2] - 0.099).abs() < 1e-12);
        assert!((e.max() - 0.100).abs() < 1e-12);
        assert!((e.mean() - 0.0505).abs() < 1e-12);
    }

    #[test]
    fn exact_histogram_mean_survives_magnitude_spread() {
        // Regression for the naive running sum: interleave ±1e8 pairs
        // (which cancel exactly) with many small samples ~8 orders of
        // magnitude down. Naively, each small sample is absorbed into an
        // accumulator sitting at 1e8 and loses its low bits; thousands
        // of repetitions accumulate an error far above 1e-12, which is
        // exactly what the compensated sum must not do.
        let small = 0.123_456_789_012_345_6;
        let mut e = ExactHistogram::new();
        let reps = 4000;
        for _ in 0..reps {
            e.record(1.0e8);
            e.record(small);
            e.record(-1.0e8);
        }
        let expected = small / 3.0;
        assert!(
            (e.mean() - expected).abs() < 1e-12,
            "mean {} expected {expected}",
            e.mean()
        );

        // Same data through a naive sum, to pin that the test would
        // actually catch the bug.
        let naive: f64 =
            (0..reps).flat_map(|_| [1.0e8, small, -1.0e8]).sum::<f64>() / (3 * reps) as f64;
        assert!(
            (naive - expected).abs() > 1e-12,
            "spread too small to distinguish naive from compensated"
        );
    }

    #[test]
    fn exact_histogram_edge_cases() {
        let empty = ExactHistogram::new();
        assert!(empty.is_empty());
        assert_eq!(empty.percentiles(&[0.5, 0.99]), vec![0.0, 0.0]);
        assert_eq!(empty.max(), 0.0);
        assert_eq!(empty.mean(), 0.0);

        let single = ExactHistogram::from_samples(&[4.2]);
        assert_eq!(single.len(), 1);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(single.percentile(q), 4.2);
        }
    }

    #[test]
    fn exact_histogram_from_durations_round_trips() {
        let d: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let e = ExactHistogram::from_durations(&d);
        assert_eq!(e.len(), 10);
        assert!((e.percentile(0.5) - 0.005).abs() < 1e-12);
    }
}
