//! Metrics registry: named counters, gauges, and histograms with
//! Prometheus-text and JSON snapshot exporters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::histogram::Histogram;
use crate::sink::{json_string, lock_clean};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Floating-point gauge (set to a level, or accumulated — e.g. energy in
/// picojoules, which is fractional and so does not fit [`Counter`]).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` to the gauge (CAS loop).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Name-keyed registry of metric instruments. Get-or-create lookups hand
/// out `Arc`s, so hot paths resolve a metric once and update it
/// lock-free thereafter.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Per-family `# HELP` text, registered via [`Registry::describe`].
    help: Mutex<BTreeMap<String, String>>,
}

/// Default latency-histogram bounds: 1 µs to ~65 s, geometric ×2.
fn default_latency_bounds() -> Histogram {
    Histogram::exponential(1e-6, 2.0, 27)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name`. Names should follow
    /// Prometheus conventions (`snake_case`, `_total` suffix for
    /// counters).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        lock_clean(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Gets or creates the counter `family{label="value"}` — one series
    /// per label value under a shared family (Prometheus dimensioned
    /// metrics, e.g. per-tenant or per-shed-reason counts). The label
    /// value is escaped for the exposition format; callers are expected
    /// to bound its cardinality (`ta-serve` sanitises tenant names and
    /// caps the distinct set).
    pub fn labeled_counter(&self, family: &str, label: &str, value: &str) -> Arc<Counter> {
        self.counter(&labeled_name(family, label, value))
    }

    /// Gets or creates the gauge `family{label="value"}`; see
    /// [`Registry::labeled_counter`].
    pub fn labeled_gauge(&self, family: &str, label: &str, value: &str) -> Arc<Gauge> {
        self.gauge(&labeled_name(family, label, value))
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        lock_clean(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Gets or creates the histogram `name` with default latency-shaped
    /// buckets (1 µs … ~65 s, ×2). The first caller's buckets win.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        lock_clean(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(default_latency_bounds()))
            .clone()
    }

    /// Gets or creates the histogram `name` with explicit bucket upper
    /// bounds (only used on first creation).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        lock_clean(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Convenience: observes `d` (in seconds) into histogram `name`.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.histogram(name).observe_duration(d);
    }

    /// Registers `# HELP` text for metric family `family` (the bare name,
    /// without labels). First registration wins; the exposition emits a
    /// generic fallback for families never described.
    pub fn describe(&self, family: &str, help: &str) {
        lock_clean(&self.help)
            .entry(family.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Labeled series (created via [`Registry::labeled_counter`]) share
    /// one `# TYPE` line per family: the `BTreeMap` key order places the
    /// bare family name (if any) and all its `family{…}` series
    /// contiguously, so the renderer emits the header on each family
    /// transition only.
    pub fn to_prometheus(&self) -> String {
        let help: BTreeMap<String, String> = lock_clean(&self.help).clone();
        let header = |out: &mut String, family: &str, kind: &str| {
            let text = help
                .get(family)
                .map(String::as_str)
                .unwrap_or("(no help registered)");
            out.push_str(&format!("# HELP {family} {}\n", escape_help(text)));
            out.push_str(&format!("# TYPE {family} {kind}\n"));
        };
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, c) in lock_clean(&self.counters).iter() {
            let family = family_of(name);
            if family != last_family {
                header(&mut out, family, "counter");
                last_family = family.to_string();
            }
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        last_family.clear();
        for (name, g) in lock_clean(&self.gauges).iter() {
            let family = family_of(name);
            if family != last_family {
                header(&mut out, family, "gauge");
                last_family = family.to_string();
            }
            out.push_str(&format!("{name} {}\n", g.get()));
        }
        for (name, h) in lock_clean(&self.histograms).iter() {
            let snap = h.snapshot();
            header(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (i, bound) in snap.bounds.iter().enumerate() {
                cumulative += snap.counts[i];
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
            out.push_str(&format!("{name}_sum {}\n", snap.sum));
            out.push_str(&format!("{name}_count {}\n", snap.count));
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}` with derived
    /// p50/p90/p99 per histogram.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let counters = lock_clean(&self.counters);
        for (i, (name, c)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(name), c.get()));
        }
        drop(counters);
        out.push_str("},\"gauges\":{");
        let gauges = lock_clean(&self.gauges);
        for (i, (name, g)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = g.get();
            let v = if v.is_finite() {
                v.to_string()
            } else {
                "null".to_string()
            };
            out.push_str(&format!("{}:{v}", json_string(name)));
        }
        drop(gauges);
        out.push_str("},\"histograms\":{");
        let histograms = lock_clean(&self.histograms);
        for (i, (name, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let snap = h.snapshot();
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_string(name),
                snap.count,
                snap.sum,
                snap.min,
                snap.max,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
        }
        drop(histograms);
        out.push_str("}}");
        out
    }
}

/// The metric family of a (possibly labeled) series name: everything
/// before the first `{`.
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Escapes `# HELP` text for the exposition format (`\` and newline).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Builds the canonical `family{label="value"}` series name, escaping the
/// label value for the Prometheus exposition format.
fn labeled_name(family: &str, label: &str, value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    format!("{family}{{{label}=\"{escaped}\"}}")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.counter("a_total").add(2);
        assert_eq!(r.counter("a_total").get(), 3);
        r.gauge("g").set(1.5);
        r.gauge("g").add(1.0);
        assert!((r.gauge("g").get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_counter_increments_from_scoped_workers() {
        let r = Registry::new();
        let c = r.counter("races_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("races_total").get(), 80_000);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("frames_total").add(3);
        r.gauge("energy_pj").set(12.5);
        let h = r.histogram_with("latency_seconds", &[0.01, 0.1]);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(5.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE frames_total counter\nframes_total 3\n"));
        assert!(text.contains("# TYPE energy_pj gauge\nenergy_pj 12.5\n"));
        assert!(text.contains("# TYPE latency_seconds histogram\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.01\"} 1\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.1\"} 2\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_seconds_count 3\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn labeled_series_group_under_one_type_header() {
        let r = Registry::new();
        r.counter("shed_total").add(5);
        r.labeled_counter("shed_total", "reason", "overloaded")
            .add(3);
        r.labeled_counter("shed_total", "reason", "draining").add(2);
        r.labeled_counter("tenant_frames_total", "tenant", "acme")
            .inc();
        r.labeled_gauge("depth", "queue", "a").set(2.0);
        let text = r.to_prometheus();
        assert_eq!(
            text.matches("# TYPE shed_total counter").count(),
            1,
            "one TYPE header per family:\n{text}"
        );
        assert!(text.contains("shed_total 5\n"));
        assert!(text.contains("shed_total{reason=\"overloaded\"} 3\n"));
        assert!(text.contains("shed_total{reason=\"draining\"} 2\n"));
        assert!(text.contains("# TYPE tenant_frames_total counter\n"));
        assert!(text.contains("tenant_frames_total{tenant=\"acme\"} 1\n"));
        assert!(text.contains("depth{queue=\"a\"} 2\n"));
        // The bare series precedes its labeled siblings, directly after
        // the family header.
        let bare = text.find("shed_total 5").unwrap();
        let labeled = text.find("shed_total{").unwrap();
        assert!(bare < labeled);
    }

    #[test]
    fn help_lines_precede_type_lines() {
        let r = Registry::new();
        r.describe("frames_total", "Frames processed end to end.");
        r.counter("frames_total").inc();
        r.labeled_counter("shed_total", "reason", "overloaded")
            .inc();
        r.gauge("depth").set(1.0);
        r.histogram_with("lat", &[0.1]).observe(0.05);
        let text = r.to_prometheus();
        assert!(
            text.contains(
                "# HELP frames_total Frames processed end to end.\n# TYPE frames_total counter\n"
            ),
            "{text}"
        );
        // Families never described still get a HELP line.
        for family in ["shed_total", "depth", "lat"] {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}:\n{text}"
            );
        }
        // Exactly one HELP per TYPE, always adjacent.
        let helps = text.matches("# HELP ").count();
        let types = text.matches("# TYPE ").count();
        assert_eq!(helps, types, "{text}");
    }

    #[test]
    fn described_family_with_only_labeled_series_keeps_its_help() {
        // The shape the gate-optimizer counters use: `describe` on the
        // bare family name, series created only under labels.
        let r = Registry::new();
        r.describe("gates_total", "Gate counts by phase.");
        r.labeled_counter("gates_total", "phase", "pre").add(444);
        r.labeled_counter("gates_total", "phase", "post").add(152);
        let text = r.to_prometheus();
        assert!(
            text.contains("# HELP gates_total Gate counts by phase.\n# TYPE gates_total counter\n"),
            "{text}"
        );
        assert_eq!(text.matches("# TYPE gates_total").count(), 1, "{text}");
        assert!(text.contains("gates_total{phase=\"pre\"} 444\n"));
        assert!(text.contains("gates_total{phase=\"post\"} 152\n"));
        // No bare `gates_total` series materialises from describe alone.
        assert!(!text.contains("\ngates_total "), "{text}");
    }

    #[test]
    fn help_text_is_escaped_and_first_registration_wins() {
        let r = Registry::new();
        r.describe("x_total", "line\nbreak \\ slash");
        r.describe("x_total", "second registration loses");
        r.counter("x_total").inc();
        let text = r.to_prometheus();
        assert!(
            text.contains("# HELP x_total line\\nbreak \\\\ slash\n"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.labeled_counter("x_total", "k", "a\"b\\c\nd").inc();
        let text = r.to_prometheus();
        assert!(
            text.contains("x_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn json_snapshot_contains_derived_percentiles() {
        let r = Registry::new();
        r.counter("n_total").inc();
        let h = r.histogram("lat");
        for ms in 1..=10u64 {
            h.observe(ms as f64 / 1000.0);
        }
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"n_total\":1"));
        assert!(json.contains("\"lat\":{\"count\":10"));
        assert!(json.contains("\"p50\":"));
    }
}
