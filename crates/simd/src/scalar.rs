//! Scalar reference forms of every vector kernel.
//!
//! Two families live here:
//!
//! 1. **Golden-semantics kernels** (`nlse_approx_one`, `nlse_exact_one`,
//!    `nlde_one`, `weighted_leaf_one`, `total_le`): these replicate, f64
//!    operation for f64 operation, what the scalar `DelayValue` engine in
//!    `ta-core` computes — including the `total_cmp` comparator flavor, the
//!    `units == 0.0` balance short-circuit, and the unconditional `+k`
//!    latency add of `NlseUnit::eval_ideal`. The vector tiers in identical
//!    mode are pinned bit-for-bit against these.
//!
//! 2. **Polynomial transcendentals** (`exp_one`, `ln_one`, `ln_1p_one`):
//!    Cephes-style rational approximations evaluated in exactly the same
//!    f64 operation order as the vector lanes (no FMA anywhere), so a
//!    remainder tail handled here produces the same bits as a full lane —
//!    tolerant-mode results do not depend on where the lane boundary falls
//!    or which ISA tier ran. They are *tolerant-grade*: accurate to a few
//!    ulp against libm, with documented flush-to-zero below
//!    `exp(-745.133)`.
//!
//! These functions operate on raw `f64` delays (the caller guarantees
//! non-NaN where the golden engine guarantees it) so that `ta-simd` stays
//! dependency-free and usable from any crate in the workspace.

/// IEEE-754 total-order `<=` on f64, as `f64::total_cmp` defines it.
///
/// This is the comparator behind `DelayValue`'s `Ord` and therefore behind
/// every `if x <= y` operand sort in the delay-space kernels. For the
/// non-NaN inputs the delay engine produces it differs from the IEEE `<=`
/// only on signed zeros: `total_le(+0.0, -0.0)` is `false`.
#[inline]
#[must_use]
pub fn total_le(a: f64, b: f64) -> bool {
    a.total_cmp(&b) != std::cmp::Ordering::Greater
}

/// One weighted leaf: `pixel + weight`, truncated to never (`+∞`) when the
/// result exceeds `truncate_at`. Mirrors the planned executor's leaf fill.
#[inline]
#[must_use]
pub fn weighted_leaf_one(pixel: f64, weight: f64, truncate_at: f64) -> f64 {
    let leaf = pixel + weight;
    if leaf > truncate_at {
        f64::INFINITY
    } else {
        leaf
    }
}

/// One min-of-max approximate nLSE evaluation with balance units and
/// unit latency, exactly as the scalar engine composes
/// `TreeOps::balance` + `NlseUnit::eval_ideal`:
///
/// * operands gain their balance units unless the unit count is exactly
///   `0.0` (the balance short-circuit that preserves `-0.0`); a never
///   operand passes through unchanged because `+∞ + units = +∞`;
/// * operands are sorted with the total-order comparator;
/// * each term is `last_arrival(hi + c, lo + d)` and the result is the
///   `first_arrival` over terms (IEEE selects returning the first argument
///   on ties, like `DelayValue::{last_arrival, first_arrival}`);
/// * the unit's completion-detect latency `k` is added unconditionally —
///   even `k == 0.0` flattens `-0.0` to `+0.0`, exactly like
///   `DelayValue::delayed(0.0)`.
#[inline]
#[must_use]
pub fn nlse_approx_one(
    x: f64,
    x_units: f64,
    y: f64,
    y_units: f64,
    terms: &[(f64, f64)],
    k: f64,
) -> f64 {
    let x = if x_units == 0.0 { x } else { x + x_units };
    let y = if y_units == 0.0 { y } else { y + y_units };
    let (lo, hi) = if total_le(x, y) { (x, y) } else { (y, x) };
    let mut best = lo;
    for &(c, d) in terms {
        let th = hi + c;
        let tl = lo + d;
        let term = if th >= tl { th } else { tl };
        best = if best <= term { best } else { term };
    }
    best + k
}

/// One exact nLSE with balance units, replicating `ops::nlse` bit-for-bit
/// (libm `exp`/`ln_1p`, identical guard order). Used by the identical-mode
/// exact path, which stays scalar because it is transcendental-bound.
#[inline]
#[must_use]
pub fn nlse_exact_one(x: f64, x_units: f64, y: f64, y_units: f64) -> f64 {
    let x = if x_units == 0.0 { x } else { x + x_units };
    let y = if y_units == 0.0 { y } else { y + y_units };
    let (m, big) = if total_le(x, y) { (x, y) } else { (y, x) };
    if m == f64::INFINITY {
        return f64::INFINITY;
    }
    if big == f64::INFINITY {
        return m;
    }
    if m == f64::NEG_INFINITY {
        return m;
    }
    let d = big - m;
    m - (-d).exp().ln_1p()
}

/// Tolerant-grade variant of [`nlse_exact_one`] on the polynomial
/// transcendentals — the scalar-tail / scalar-tier companion of the
/// vectorized exact kernel, same operation order as the lanes.
#[inline]
#[must_use]
pub fn nlse_exact_one_tolerant(x: f64, x_units: f64, y: f64, y_units: f64) -> f64 {
    let x = if x_units == 0.0 { x } else { x + x_units };
    let y = if y_units == 0.0 { y } else { y + y_units };
    let (m, big) = if total_le(x, y) { (x, y) } else { (y, x) };
    if big == f64::INFINITY {
        // Covers m == +∞ too (then big == +∞ as well and the result is m).
        return m;
    }
    if m == f64::NEG_INFINITY {
        return m;
    }
    let d = big - m;
    m - ln_1p_one(exp_one(-d))
}

/// One exact nLDE, replicating `ops::nlde` bit-for-bit including its mixed
/// comparator semantics: the dominance check `x > y` uses the *total*
/// order (so `(+0.0, -0.0)` is an error), while the equal-operands check
/// uses *numeric* equality (so `(-0.0, +0.0)` returns never).
///
/// Returns `Err(())` where `ops::nlde` returns its `NormalizeError`.
///
/// # Errors
///
/// When `y` is total-order earlier than `x` (the difference would be
/// negative and has no delay-space image).
// The unit error is deliberate: this leaf only signals "dominant operand
// second"; the public batch API (`crate::nlde_rows`) wraps it in a typed
// error, and `ta-core` maps it onto its own `NormalizeError`.
#[allow(clippy::result_unit_err)]
#[inline]
pub fn nlde_one(x: f64, y: f64) -> Result<f64, ()> {
    if !total_le(x, y) {
        return Err(());
    }
    if x == y {
        return Ok(f64::INFINITY);
    }
    if y == f64::INFINITY {
        return Ok(x);
    }
    let d = y - x;
    Ok(x - (-(-d).exp()).ln_1p())
}

/// Tolerant-grade [`nlde_one`] on the polynomial transcendentals.
///
/// # Errors
///
/// Same dominance rule as [`nlde_one`].
#[allow(clippy::result_unit_err)]
#[inline]
pub fn nlde_one_tolerant(x: f64, y: f64) -> Result<f64, ()> {
    if !total_le(x, y) {
        return Err(());
    }
    if x == y {
        return Ok(f64::INFINITY);
    }
    if y == f64::INFINITY {
        return Ok(x);
    }
    let d = y - x;
    Ok(x - ln_1p_one(-exp_one(-d)))
}

/// SSE-semantics scalar minimum: `if a < b { a } else { b }` (returns the
/// *second* operand on ties, like `minpd`). Used so scalar tails match
/// vector lanes bitwise on signed-zero ties.
#[inline]
#[must_use]
pub fn min_sse(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// SSE-semantics scalar maximum: `if a > b { a } else { b }`.
#[inline]
#[must_use]
pub fn max_sse(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// One VTC ideal-encode step in the tolerant contract: clamp to `[0, 1]`
/// with SSE select semantics, floor at `min_pixel`, then `-ln` via the
/// polynomial [`ln_one`]. The caller asserts the pixel is finite.
#[inline]
#[must_use]
pub fn vtc_encode_one(pixel: f64, min_pixel: f64) -> f64 {
    let v = max_sse(pixel, 0.0);
    let v = min_sse(v, 1.0);
    let v = max_sse(v, min_pixel);
    -ln_one(v)
}

// --- Polynomial transcendentals (Cephes rational approximations) -------

/// `floor` restricted to `|x| < 2^31`, matching the SSE2 truncate-and-
/// adjust sequence bitwise (exact for this range in every tier).
#[inline]
#[must_use]
pub fn floor_small(x: f64) -> f64 {
    x.floor()
}

/// Builds `2^n` from an integer-valued f64 `n ∈ [-1022, 1024]` by direct
/// exponent-field construction; `n == 1024` yields `+∞` (mantissa zero,
/// exponent all-ones), which the exp kernel exploits for its overflow
/// step-down.
#[inline]
#[must_use]
fn to_pow2(n: f64) -> f64 {
    f64::from_bits((((n as i64) + 1023) as u64) << 52)
}

/// `x * log2(e)` split constants for exp's argument reduction.
const EXP_C1: f64 = 6.931_457_519_531_25E-1;
const EXP_C2: f64 = 1.428_606_820_309_417_2E-6;
// Cephes coefficients kept digit-for-digit; the trailing digits are
// value-preserving but document the published tables.
#[allow(clippy::excessive_precision)]
const EXP_P: [f64; 3] = [
    1.261_771_930_748_105_9E-4,
    3.029_944_077_074_419_6E-2,
    9.999_999_999_999_999_9E-1,
];
#[allow(clippy::excessive_precision)]
const EXP_Q: [f64; 4] = [
    3.001_985_051_386_644_6E-6,
    2.524_483_403_496_841E-3,
    2.272_655_482_081_550_3E-1,
    2.000_000_000_000_000_2E0,
];
/// Above this, `exp` overflows `f64::MAX` and returns `+∞`.
const EXP_HI: f64 = 709.782_712_893_384;
/// Below this (`ln(2^-1075)`), `exp` rounds to exactly `+0.0`.
const EXP_LO: f64 = -745.133_219_101_941_2;
/// Stepping stone for subnormal results: `2^-54`.
const TWO_NEG_54: f64 = 5.551_115_123_125_783e-17;

/// Tolerant-grade `exp(x)`: Cephes rational approximation, a few ulp from
/// libm over the normal range. Results denormal in libm are produced via a
/// two-step scale (one extra rounding); `x < -745.133` flushes to `+0.0`
/// and `x > 709.783` to `+∞`. NaN propagates.
///
/// Evaluated in exactly the lane operation order, so tails match lanes.
#[inline]
#[must_use]
pub fn exp_one(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_HI {
        return f64::INFINITY;
    }
    if x < EXP_LO {
        return 0.0;
    }
    let n = floor_small(x * std::f64::consts::LOG2_E + 0.5);
    let r = x - n * EXP_C1;
    let r = r - n * EXP_C2;
    let xx = r * r;
    let p = r * ((EXP_P[0] * xx + EXP_P[1]) * xx + EXP_P[2]);
    let q = ((EXP_Q[0] * xx + EXP_Q[1]) * xx + EXP_Q[2]) * xx + EXP_Q[3];
    let e = p / (q - p);
    let y = (e + e) + 1.0;
    // Overflow step-down: n == 1024 exceeds the exponent field, so scale
    // by 2^(n-1) and double. Underflow step-up: n < -1022 would be a
    // subnormal scale factor, so scale by 2^(n+54) and step down by 2^-54.
    if n >= 1024.0 {
        let y = y * to_pow2(n - 1.0);
        y + y
    } else if n < -1022.0 {
        (y * to_pow2(n + 54.0)) * TWO_NEG_54
    } else {
        y * to_pow2(n)
    }
}

const LN_P: [f64; 6] = [
    1.018_756_638_045_809_3E-4,
    4.974_949_949_767_47E-1,
    4.705_791_198_788_817E0,
    1.449_892_253_416_109_3E1,
    1.793_686_785_078_198_2E1,
    7.708_387_337_558_854E0,
];
const LN_Q: [f64; 5] = [
    1.128_735_871_891_674_5E1,
    4.522_791_458_375_322E1,
    8.298_752_669_127_766E1,
    7.115_447_506_185_639E1,
    2.312_516_201_267_653_4E1,
];
/// `sqrt(1/2)`: the mantissa-range split point of the log reduction.
const SQRTH: f64 = std::f64::consts::FRAC_1_SQRT_2;
/// Low/high split of `ln(2)` used to reassemble the exponent term.
const LN2_LO: f64 = 2.121_944_400_546_905_8E-4;
const LN2_HI: f64 = 0.693_359_375;
/// `2^52`, the magic constant for float→int lane tricks.
pub(crate) const TWO_POW_52: f64 = 4_503_599_627_370_496.0;
/// `2^54`, the subnormal-input prescale for ln.
const TWO_POW_54: f64 = 18_014_398_509_481_984.0;

/// Tolerant-grade `ln(x)`: Cephes rational approximation. `±0 → -∞`,
/// negative `→ NaN`, `+∞ → +∞`, NaN propagates; subnormal inputs are
/// prescaled by `2^54`. Evaluated in exactly the lane operation order.
#[inline]
#[must_use]
pub fn ln_one(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x < 0.0 {
        return f64::NAN;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    let (xs, e_adj) = if x < f64::MIN_POSITIVE {
        (x * TWO_POW_54, -54.0)
    } else {
        (x, 0.0)
    };
    let bits = xs.to_bits();
    let e_raw = ((bits >> 52) & 0x7ff) as i64;
    // Exponent such that the mantissa f sits in [0.5, 1).
    let e = f64::from_bits((e_raw as u64) | TWO_POW_52.to_bits()) - TWO_POW_52 - 1022.0 + e_adj;
    let f = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FE0_0000_0000_0000);
    let (e, z) = if f < SQRTH {
        (e - 1.0, (f + f) - 1.0)
    } else {
        (e, f - 1.0)
    };
    let zz = z * z;
    let py = ((((LN_P[0] * z + LN_P[1]) * z + LN_P[2]) * z + LN_P[3]) * z + LN_P[4]) * z + LN_P[5];
    let qy = ((((z + LN_Q[0]) * z + LN_Q[1]) * z + LN_Q[2]) * z + LN_Q[3]) * z + LN_Q[4];
    let y = z * (zz * py / qy);
    let y = y - e * LN2_LO;
    let y = y - 0.5 * zz;
    let r = z + y;
    r + e * LN2_HI
}

/// Tolerant-grade `ln(1 + x)` via the compensated quotient
/// `ln(u) * x / (u - 1)` with `u = 1 + x` (exact when `u == 1`). `±0`
/// round-trips bit-exactly, `x == -1 → -∞`, `x < -1 → NaN`, `+∞ → +∞`.
/// Evaluated in exactly the lane operation order.
#[inline]
#[must_use]
pub fn ln_1p_one(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x == f64::INFINITY {
        return x;
    }
    let u = 1.0 + x;
    if u == 1.0 {
        return x;
    }
    let d = u - 1.0;
    ln_one(u) * (x / d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_le_orders_signed_zero() {
        assert!(total_le(-0.0, 0.0));
        assert!(!total_le(0.0, -0.0));
        assert!(total_le(0.0, 0.0));
        assert!(total_le(f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    fn exp_one_matches_libm_closely() {
        for i in -200..=200 {
            let x = f64::from(i) * 3.37;
            let got = exp_one(x);
            let want = x.exp();
            if want == 0.0 || want.is_infinite() {
                assert_eq!(got, want, "x={x}");
            } else {
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-14, "x={x} got={got} want={want} rel={rel}");
            }
        }
        assert_eq!(exp_one(0.0), 1.0);
        assert_eq!(exp_one(-0.0), 1.0);
        assert_eq!(exp_one(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_one(f64::INFINITY), f64::INFINITY);
        assert!(exp_one(f64::NAN).is_nan());
    }

    #[test]
    fn exp_one_subnormal_and_overflow_steps() {
        // Denormal-result region: within 2 ulp of libm via the two-step scale.
        for &x in &[-709.0, -720.0, -740.0, -744.4, -745.0, -745.1] {
            let got = exp_one(x);
            let want = x.exp();
            let ulps = (got.to_bits() as i64 - want.to_bits() as i64).abs();
            assert!(ulps <= 2, "x={x} got={got:e} want={want:e} ulps={ulps}");
        }
        // Near-overflow region stays finite until libm overflows.
        let x = 709.7827;
        assert!(exp_one(x).is_finite(), "exp({x}) = {}", exp_one(x));
        assert_eq!(exp_one(709.7828), f64::INFINITY);
        assert_eq!(exp_one(-745.2), 0.0);
    }

    #[test]
    fn ln_one_matches_libm_closely() {
        for i in 1..=400 {
            let x = f64::from(i) * 0.737;
            let got = ln_one(x);
            let want = x.ln();
            let tol = 1e-15 * want.abs().max(1.0);
            assert!((got - want).abs() < tol, "x={x} got={got} want={want}");
        }
        assert_eq!(ln_one(1.0), 0.0);
        assert_eq!(ln_one(0.0), f64::NEG_INFINITY);
        assert_eq!(ln_one(-0.0), f64::NEG_INFINITY);
        assert!(ln_one(-1.0).is_nan());
        assert_eq!(ln_one(f64::INFINITY), f64::INFINITY);
        assert!(ln_one(f64::NAN).is_nan());
        // Subnormal input goes through the prescale.
        let tiny = f64::MIN_POSITIVE / 1024.0;
        let rel = ((ln_one(tiny) - tiny.ln()) / tiny.ln()).abs();
        assert!(rel < 1e-15, "rel={rel}");
    }

    #[test]
    fn ln_1p_one_matches_libm_closely() {
        for &x in &[1e-300, 1e-18, 1e-9, 0.1, 0.5, 1.0, 10.0, -0.5, -0.999] {
            let got = ln_1p_one(x);
            let want = x.ln_1p();
            let tol = 1e-14 * want.abs().max(1e-300);
            assert!((got - want).abs() <= tol, "x={x} got={got} want={want}");
        }
        assert_eq!(ln_1p_one(0.0).to_bits(), 0.0_f64.to_bits());
        assert_eq!(ln_1p_one(-0.0).to_bits(), (-0.0_f64).to_bits());
        assert_eq!(ln_1p_one(-1.0), f64::NEG_INFINITY);
        assert!(ln_1p_one(-1.5).is_nan());
        assert_eq!(ln_1p_one(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn golden_kernels_reject_nothing_on_inf() {
        // never (+∞) operands flow through every kernel without NaN.
        let inf = f64::INFINITY;
        assert_eq!(
            nlse_approx_one(inf, 0.0, inf, 0.0, &[(0.5, 0.7)], 0.25),
            inf
        );
        assert_eq!(nlse_exact_one(inf, 0.0, inf, 0.0), inf);
        assert_eq!(nlse_exact_one(1.0, 0.0, inf, 0.0), 1.0);
        assert_eq!(nlde_one(1.0, inf), Ok(1.0));
        assert_eq!(nlde_one(inf, inf), Ok(inf));
        assert_eq!(nlde_one(0.0, -0.0), Err(()));
        assert_eq!(nlde_one(-0.0, 0.0), Ok(inf));
    }
}
