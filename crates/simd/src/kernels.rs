//! Generic lane kernels over the [`Lanes`] abstraction.
//!
//! Every kernel here is written once against the `Lanes` trait and
//! monomorphized per backend inside a `#[target_feature]` wrapper (see
//! `x86.rs` / `neon.rs`), the rten-simd pattern: all trait methods are
//! `#[inline(always)]`, so the intrinsics inline into the feature-enabled
//! wrapper and codegen with the wrapper's ISA.
//!
//! Bit-level contracts:
//!
//! * Identical-mode kernels (`nlse_approx_rows_raw`, `weighted_leaves_raw`,
//!   `add_units_raw`, `total_min_raw`) use only IEEE add/compare/select,
//!   which are correctly rounded and therefore produce the same bits in
//!   every tier *and* the same bits as the scalar `DelayValue` engine.
//!   The comparator is the total-order `<=` (see [`Lanes::total_le`]).
//! * Tolerant-mode kernels (`nlse_exact_rows_tolerant_raw`,
//!   `nlde_rows_tolerant_raw`, `vtc_encode_raw`, `exp_sum_striped_raw`,
//!   and the `vexp`/`vln`/`vln_1p` slice maps) use the polynomial
//!   transcendentals of [`crate::scalar`] evaluated in the identical f64
//!   operation order, so lanes and remainder tails still agree bitwise
//!   across tiers; only the contract *against libm* is a tolerance.
//!
//! Raw pointers are used (rather than slices) so the in-place forms can
//! alias an input row with the output row without violating `&`/`&mut`
//! aliasing rules; every kernel reads an element before writing it.

use crate::scalar;

const SIGN_BIT: u64 = 0x8000_0000_0000_0000;
const NEG_ZERO_BITS: u64 = SIGN_BIT;
const POS_ZERO_BITS: u64 = 0;
/// `1.5 · 2^52` — see [`Lanes::to_pow2`].
const POW2_MAGIC: f64 = 6_755_399_441_055_744.0;

/// One SIMD register of f64 lanes plus the operations the kernels need.
///
/// Mask-producing operations (`le`, `eq`, `total_le`, …) return a value of
/// the same register type whose lanes are all-ones or all-zero bit
/// patterns, consumed by [`Lanes::blend`].
///
/// # Safety
///
/// Implementations map methods directly onto ISA intrinsics; callers must
/// only invoke them (transitively, via the kernels) from a context where
/// the backend's ISA is known to be available.
pub(crate) trait Lanes: Copy {
    /// Number of f64 lanes per register.
    const LANES: usize;

    /// Broadcast a value to all lanes.
    unsafe fn splat(x: f64) -> Self;
    /// Broadcast a raw bit pattern to all lanes.
    unsafe fn splat_bits(b: u64) -> Self;
    /// Unaligned load of `LANES` values.
    unsafe fn loadu(p: *const f64) -> Self;
    /// Unaligned store of `LANES` values.
    unsafe fn storeu(self, p: *mut f64);
    /// Lanewise `self + o`.
    unsafe fn add(self, o: Self) -> Self;
    /// Lanewise `self - o`.
    unsafe fn sub(self, o: Self) -> Self;
    /// Lanewise `self * o`.
    unsafe fn mul(self, o: Self) -> Self;
    /// Lanewise `self / o`.
    unsafe fn div(self, o: Self) -> Self;
    /// IEEE `self <= o` mask.
    unsafe fn le(self, o: Self) -> Self;
    /// IEEE `self < o` mask.
    unsafe fn lt(self, o: Self) -> Self;
    /// IEEE `self >= o` mask.
    unsafe fn ge(self, o: Self) -> Self;
    /// IEEE `self > o` mask.
    unsafe fn gt(self, o: Self) -> Self;
    /// IEEE `self == o` mask (numeric: `+0 == -0`, NaN never equal).
    unsafe fn eq(self, o: Self) -> Self;
    /// Bitwise AND.
    unsafe fn and(self, o: Self) -> Self;
    /// Bitwise OR.
    unsafe fn or(self, o: Self) -> Self;
    /// Bitwise XOR.
    unsafe fn xor(self, o: Self) -> Self;
    /// Bitwise `(!self) & o`, matching `_mm_andnot_pd` operand order.
    unsafe fn andnot(self, o: Self) -> Self;
    /// Per-lane `mask ? a : b`; mask lanes must be all-ones or all-zero.
    unsafe fn blend(mask: Self, a: Self, b: Self) -> Self;
    /// Lanewise 64-bit integer add on the raw bits.
    unsafe fn i64_add(self, o: Self) -> Self;
    /// Lanewise 64-bit integer subtract on the raw bits.
    unsafe fn i64_sub(self, o: Self) -> Self;
    /// Lanewise logical shift left by 52 on the raw bits.
    unsafe fn shl52(self) -> Self;
    /// Lanewise logical shift right by 52 on the raw bits.
    unsafe fn shr52(self) -> Self;
    /// Lanewise 64-bit integer equality mask on the raw bits.
    unsafe fn i64_eq(self, o: Self) -> Self;
    /// Lanewise `floor`, exact for `|x| < 2^31` (garbage lanes allowed —
    /// never a fault — outside that range; callers mask them).
    unsafe fn floor_small(self) -> Self;
    /// True if any mask lane is set.
    unsafe fn any(self) -> bool;

    /// Lanewise negation by sign-bit flip (`-0.0` semantics of unary `-`).
    #[inline(always)]
    unsafe fn neg(self) -> Self {
        unsafe { self.xor(Self::splat_bits(SIGN_BIT)) }
    }

    /// Bitwise NOT of a mask.
    #[inline(always)]
    unsafe fn not(self) -> Self {
        unsafe { self.andnot(Self::splat_bits(u64::MAX)) }
    }

    /// Total-order `self <= o` for non-NaN lanes: IEEE `<=` corrected on
    /// the one case where it disagrees with `f64::total_cmp`, namely
    /// `(+0.0, -0.0)`, detected by exact bit-pattern comparison.
    #[inline(always)]
    unsafe fn total_le(self, o: Self) -> Self {
        unsafe {
            let ieee = self.le(o);
            let bad = self
                .i64_eq(Self::splat_bits(POS_ZERO_BITS))
                .and(o.i64_eq(Self::splat_bits(NEG_ZERO_BITS)));
            bad.andnot(ieee)
        }
    }

    /// `2^n` for integer-valued lanes `n ∈ [-1022, 1024]` via direct
    /// exponent-field construction (the `+1.5·2^52` float→int magic —
    /// the extra half-binade keeps `n + magic` inside `[2^52, 2^53)` for
    /// negative `n`, so the bit subtraction recovers `n` in two's
    /// complement); `1024` yields `+∞`, which the exp kernel's overflow
    /// step-down exploits.
    #[inline(always)]
    unsafe fn to_pow2(self) -> Self {
        unsafe {
            let t = self.add(Self::splat(POW2_MAGIC));
            let n = t.i64_sub(Self::splat_bits(POW2_MAGIC.to_bits()));
            n.i64_add(Self::splat_bits(1023)).shl52()
        }
    }
}

// --- lane transcendentals (same operation order as crate::scalar) ------

const EXP_C1: f64 = 6.931_457_519_531_25E-1;
const EXP_C2: f64 = 1.428_606_820_309_417_2E-6;
// Cephes coefficients kept digit-for-digit; the trailing digits are
// value-preserving but document the published tables.
#[allow(clippy::excessive_precision)]
const EXP_P: [f64; 3] = [
    1.261_771_930_748_105_9E-4,
    3.029_944_077_074_419_6E-2,
    9.999_999_999_999_999_9E-1,
];
#[allow(clippy::excessive_precision)]
const EXP_Q: [f64; 4] = [
    3.001_985_051_386_644_6E-6,
    2.524_483_403_496_841E-3,
    2.272_655_482_081_550_3E-1,
    2.000_000_000_000_000_2E0,
];
const EXP_HI: f64 = 709.782_712_893_384;
const EXP_LO: f64 = -745.133_219_101_941_2;
const TWO_NEG_54: f64 = 5.551_115_123_125_783e-17;
const LN_P: [f64; 6] = [
    1.018_756_638_045_809_3E-4,
    4.974_949_949_767_47E-1,
    4.705_791_198_788_817E0,
    1.449_892_253_416_109_3E1,
    1.793_686_785_078_198_2E1,
    7.708_387_337_558_854E0,
];
const LN_Q: [f64; 5] = [
    1.128_735_871_891_674_5E1,
    4.522_791_458_375_322E1,
    8.298_752_669_127_766E1,
    7.115_447_506_185_639E1,
    2.312_516_201_267_653_4E1,
];
const SQRTH: f64 = std::f64::consts::FRAC_1_SQRT_2;
const LN2_LO: f64 = 2.121_944_400_546_905_8E-4;
const LN2_HI: f64 = 0.693_359_375;
const TWO_POW_54: f64 = 18_014_398_509_481_984.0;

/// Lane `exp`, mirroring [`scalar::exp_one`] operation for operation.
#[inline(always)]
unsafe fn exp_lanes<V: Lanes>(x: V) -> V {
    unsafe {
        let hi_mask = x.gt(V::splat(EXP_HI));
        let lo_mask = x.lt(V::splat(EXP_LO));
        let not_nan = x.eq(x);
        let n = x
            .mul(V::splat(std::f64::consts::LOG2_E))
            .add(V::splat(0.5))
            .floor_small();
        let r = x.sub(n.mul(V::splat(EXP_C1)));
        let r = r.sub(n.mul(V::splat(EXP_C2)));
        let xx = r.mul(r);
        let p = r.mul(
            V::splat(EXP_P[0])
                .mul(xx)
                .add(V::splat(EXP_P[1]))
                .mul(xx)
                .add(V::splat(EXP_P[2])),
        );
        let q = V::splat(EXP_Q[0])
            .mul(xx)
            .add(V::splat(EXP_Q[1]))
            .mul(xx)
            .add(V::splat(EXP_Q[2]))
            .mul(xx)
            .add(V::splat(EXP_Q[3]));
        let e = p.div(q.sub(p));
        let y = e.add(e).add(V::splat(1.0));
        // Overflow step-down (n == 1024) and subnormal step-up (n < -1022),
        // as in the scalar companion. Garbage lanes (|x| outside the
        // cutoffs) are masked below and integer ops never fault.
        let n_hi = n.ge(V::splat(1024.0));
        let n_lo = n.lt(V::splat(-1022.0));
        let n_adj = V::blend(
            n_hi,
            n.sub(V::splat(1.0)),
            V::blend(n_lo, n.add(V::splat(54.0)), n),
        );
        let y = y.mul(n_adj.to_pow2());
        let y = V::blend(
            n_hi,
            y.add(y),
            V::blend(n_lo, y.mul(V::splat(TWO_NEG_54)), y),
        );
        let y = V::blend(hi_mask, V::splat(f64::INFINITY), y);
        let y = V::blend(lo_mask, V::splat(0.0), y);
        V::blend(not_nan, y, x)
    }
}

/// Lane `ln`, mirroring [`scalar::ln_one`] operation for operation.
#[inline(always)]
unsafe fn ln_lanes<V: Lanes>(x: V) -> V {
    unsafe {
        let zero_mask = x.eq(V::splat(0.0));
        let neg_mask = x.lt(V::splat(0.0));
        let inf_mask = x.eq(V::splat(f64::INFINITY));
        let not_nan = x.eq(x);
        let tiny = x.lt(V::splat(f64::MIN_POSITIVE)).and(x.gt(V::splat(0.0)));
        let xs = V::blend(tiny, x.mul(V::splat(TWO_POW_54)), x);
        let e_adj = V::blend(tiny, V::splat(-54.0), V::splat(0.0));
        let e_raw = xs.shr52().and(V::splat_bits(0x7ff));
        let e = e_raw
            .or(V::splat_bits(scalar::TWO_POW_52.to_bits()))
            .sub(V::splat(scalar::TWO_POW_52))
            .sub(V::splat(1022.0))
            .add(e_adj);
        let f = xs
            .and(V::splat_bits(0x000F_FFFF_FFFF_FFFF))
            .or(V::splat_bits(0x3FE0_0000_0000_0000));
        let small = f.lt(V::splat(SQRTH));
        let e = e.sub(V::blend(small, V::splat(1.0), V::splat(0.0)));
        let z = V::blend(small, f.add(f).sub(V::splat(1.0)), f.sub(V::splat(1.0)));
        let zz = z.mul(z);
        let py = V::splat(LN_P[0])
            .mul(z)
            .add(V::splat(LN_P[1]))
            .mul(z)
            .add(V::splat(LN_P[2]))
            .mul(z)
            .add(V::splat(LN_P[3]))
            .mul(z)
            .add(V::splat(LN_P[4]))
            .mul(z)
            .add(V::splat(LN_P[5]));
        let qy = z
            .add(V::splat(LN_Q[0]))
            .mul(z)
            .add(V::splat(LN_Q[1]))
            .mul(z)
            .add(V::splat(LN_Q[2]))
            .mul(z)
            .add(V::splat(LN_Q[3]))
            .mul(z)
            .add(V::splat(LN_Q[4]));
        let y = z.mul(zz.mul(py).div(qy));
        let y = y.sub(e.mul(V::splat(LN2_LO)));
        let y = y.sub(V::splat(0.5).mul(zz));
        let r = z.add(y);
        let r = r.add(e.mul(V::splat(LN2_HI)));
        let r = V::blend(zero_mask, V::splat(f64::NEG_INFINITY), r);
        let r = V::blend(neg_mask, V::splat(f64::NAN), r);
        let r = V::blend(inf_mask, V::splat(f64::INFINITY), r);
        V::blend(not_nan, r, x)
    }
}

/// Lane `ln(1 + x)`, mirroring [`scalar::ln_1p_one`].
#[inline(always)]
unsafe fn ln_1p_lanes<V: Lanes>(x: V) -> V {
    unsafe {
        let u = V::splat(1.0).add(x);
        let eq1 = u.eq(V::splat(1.0));
        let d = u.sub(V::splat(1.0));
        let r = ln_lanes(u).mul(x.div(d));
        let r = V::blend(eq1, x, r);
        let r = V::blend(x.eq(V::splat(f64::INFINITY)), V::splat(f64::INFINITY), r);
        V::blend(x.eq(x), r, x)
    }
}

// --- slice kernels ------------------------------------------------------

/// In-place `xs[i] += delta` (the unconditional `DelayValue::delayed`
/// semantics: `+0.0` flattens `-0.0`). Identical-mode safe.
#[inline(always)]
pub(crate) unsafe fn add_units_raw<V: Lanes>(p: *mut f64, delta: f64, n: usize) {
    unsafe {
        let dv = V::splat(delta);
        let mut i = 0;
        while i + V::LANES <= n {
            V::loadu(p.add(i)).add(dv).storeu(p.add(i));
            i += V::LANES;
        }
        while i < n {
            *p.add(i) += delta;
            i += 1;
        }
    }
}

/// Weighted leaf fill: `out[i] = px[i * stride] + w`, truncated to `+∞`
/// above `truncate_at`. Strides > 1 use a scalar gather with the same
/// formula. Identical-mode safe.
#[inline(always)]
pub(crate) unsafe fn weighted_leaves_raw<V: Lanes>(
    px: *const f64,
    stride: usize,
    w: f64,
    truncate_at: f64,
    out: *mut f64,
    n: usize,
) {
    unsafe {
        if stride == 1 {
            let wv = V::splat(w);
            let tv = V::splat(truncate_at);
            let inf = V::splat(f64::INFINITY);
            let mut i = 0;
            while i + V::LANES <= n {
                let v = V::loadu(px.add(i)).add(wv);
                V::blend(v.gt(tv), inf, v).storeu(out.add(i));
                i += V::LANES;
            }
            while i < n {
                *out.add(i) = scalar::weighted_leaf_one(*px.add(i), w, truncate_at);
                i += 1;
            }
        } else {
            for i in 0..n {
                *out.add(i) = scalar::weighted_leaf_one(*px.add(i * stride), w, truncate_at);
            }
        }
    }
}

/// Batched min-of-max approximate nLSE with balance units and unit
/// latency `k`: `out[i] = eval(a[i] ⊕ au, b[i] ⊕ bu) + k`, where `⊕`
/// applies the balance add unless the unit count is exactly `0.0`.
/// `out` may alias `a` or `b` (in-place spine accumulate).
/// Identical-mode safe: add/compare/select only.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) unsafe fn nlse_approx_rows_raw<V: Lanes>(
    a: *const f64,
    au: f64,
    b: *const f64,
    bu: f64,
    terms: &[(f64, f64)],
    k: f64,
    out: *mut f64,
    n: usize,
) {
    unsafe {
        let kv = V::splat(k);
        let mut i = 0;
        while i + V::LANES <= n {
            let mut x = V::loadu(a.add(i));
            let mut y = V::loadu(b.add(i));
            if au != 0.0 {
                x = x.add(V::splat(au));
            }
            if bu != 0.0 {
                y = y.add(V::splat(bu));
            }
            let m = x.total_le(y);
            let lo = V::blend(m, x, y);
            let hi = V::blend(m, y, x);
            let mut best = lo;
            for &(c, d) in terms {
                let th = hi.add(V::splat(c));
                let tl = lo.add(V::splat(d));
                let term = V::blend(th.ge(tl), th, tl);
                best = V::blend(best.le(term), best, term);
            }
            best.add(kv).storeu(out.add(i));
            i += V::LANES;
        }
        while i < n {
            *out.add(i) = scalar::nlse_approx_one(*a.add(i), au, *b.add(i), bu, terms, k);
            i += 1;
        }
    }
}

/// Batched exact nLSE in the tolerant contract (polynomial `exp`/`ln_1p`
/// lanes). `out` may alias `a` or `b`.
#[inline(always)]
pub(crate) unsafe fn nlse_exact_rows_tolerant_raw<V: Lanes>(
    a: *const f64,
    au: f64,
    b: *const f64,
    bu: f64,
    out: *mut f64,
    n: usize,
) {
    unsafe {
        let inf = V::splat(f64::INFINITY);
        let ninf = V::splat(f64::NEG_INFINITY);
        let mut i = 0;
        while i + V::LANES <= n {
            let mut x = V::loadu(a.add(i));
            let mut y = V::loadu(b.add(i));
            if au != 0.0 {
                x = x.add(V::splat(au));
            }
            if bu != 0.0 {
                y = y.add(V::splat(bu));
            }
            let mk = x.total_le(y);
            let m = V::blend(mk, x, y);
            let big = V::blend(mk, y, x);
            let d = big.sub(m);
            let l = ln_1p_lanes(exp_lanes(d.neg()));
            let r = m.sub(l);
            let r = V::blend(big.eq(inf), m, r);
            let r = V::blend(m.eq(ninf), m, r);
            r.storeu(out.add(i));
            i += V::LANES;
        }
        while i < n {
            *out.add(i) = scalar::nlse_exact_one_tolerant(*a.add(i), au, *b.add(i), bu);
            i += 1;
        }
    }
}

/// Batched exact nLDE in the tolerant contract. Returns `true` if any
/// element had its dominant operand second (the `ops::nlde` error case,
/// checked with the total-order comparator *before* the numeric-equality
/// never shortcut, exactly like the scalar operator). Output lanes for
/// erroneous elements are unspecified; callers discard the row on error.
#[inline(always)]
pub(crate) unsafe fn nlde_rows_tolerant_raw<V: Lanes>(
    xs: *const f64,
    ys: *const f64,
    out: *mut f64,
    n: usize,
) -> bool {
    unsafe {
        let inf = V::splat(f64::INFINITY);
        let mut err = V::splat_bits(0);
        let mut i = 0;
        while i + V::LANES <= n {
            let x = V::loadu(xs.add(i));
            let y = V::loadu(ys.add(i));
            err = err.or(x.total_le(y).not());
            let d = y.sub(x);
            let l = ln_1p_lanes(exp_lanes(d.neg()).neg());
            let r = x.sub(l);
            let r = V::blend(y.eq(inf), x, r);
            let r = V::blend(x.eq(y), inf, r);
            r.storeu(out.add(i));
            i += V::LANES;
        }
        let mut any_err = err.any();
        while i < n {
            match scalar::nlde_one_tolerant(*xs.add(i), *ys.add(i)) {
                Ok(v) => *out.add(i) = v,
                Err(()) => {
                    *out.add(i) = f64::INFINITY;
                    any_err = true;
                }
            }
            i += 1;
        }
        any_err
    }
}

/// Total-order minimum of a slice; `+∞` (never) for the empty slice.
/// Bit-exact in any association order because total-order ties are
/// bit-identical. Identical-mode safe: this is the `nlse_many` pivot.
#[inline(always)]
pub(crate) unsafe fn total_min_raw<V: Lanes>(p: *const f64, n: usize) -> f64 {
    unsafe {
        let mut acc = V::splat(f64::INFINITY);
        let mut i = 0;
        while i + V::LANES <= n {
            let v = V::loadu(p.add(i));
            acc = V::blend(v.total_le(acc), v, acc);
            i += V::LANES;
        }
        let mut buf = [f64::INFINITY; 8];
        acc.storeu(buf.as_mut_ptr());
        let mut m = f64::INFINITY;
        for &lane in buf.iter().take(V::LANES) {
            if scalar::total_le(lane, m) {
                m = lane;
            }
        }
        while i < n {
            let v = *p.add(i);
            if scalar::total_le(v, m) {
                m = v;
            }
            i += 1;
        }
        m
    }
}

/// The tolerant `nlse_many` accumulation: `Σ exp(pivot - v)` over lanes,
/// striped into **four** fixed accumulators regardless of tier (lane `i`
/// feeds stripe `i % 4`), so the reassociation — and therefore the bits —
/// is the same for scalar, SSE2 and AVX2 runs of the same data. Terms with
/// `pivot - v < cutoff` contribute exactly `+0.0` (never operands fall out
/// of the same test: their spread is `-∞`).
#[inline(always)]
pub(crate) unsafe fn exp_sum_striped_raw<V: Lanes>(
    p: *const f64,
    n: usize,
    pivot: f64,
    cutoff: f64,
) -> [f64; 4] {
    unsafe {
        debug_assert!(V::LANES <= 4 && 4 % V::LANES == 0);
        let regs = 4 / V::LANES;
        let mut accs = [V::splat(0.0); 4];
        let pv = V::splat(pivot);
        let cv = V::splat(cutoff);
        let zero = V::splat(0.0);
        let mut i = 0;
        while i + 4 <= n {
            for (r, acc) in accs.iter_mut().enumerate().take(regs) {
                let v = V::loadu(p.add(i + r * V::LANES));
                let d = pv.sub(v);
                let e = V::blend(d.ge(cv), exp_lanes(d), zero);
                *acc = acc.add(e);
            }
            i += 4;
        }
        let mut stripes = [0.0_f64; 4];
        for (r, acc) in accs.iter().enumerate().take(regs) {
            acc.storeu(stripes.as_mut_ptr().add(r * V::LANES));
        }
        while i < n {
            let d = pivot - *p.add(i);
            if d >= cutoff {
                stripes[i % 4] += scalar::exp_one(d);
            }
            i += 1;
        }
        stripes
    }
}

/// Batched VTC ideal encode in the tolerant contract: clamp to `[0, 1]`
/// (SSE select semantics), floor at `min_pixel`, `-ln` via lanes.
#[inline(always)]
pub(crate) unsafe fn vtc_encode_raw<V: Lanes>(
    px: *const f64,
    min_pixel: f64,
    out: *mut f64,
    n: usize,
) {
    unsafe {
        let lo = V::splat(0.0);
        let hi = V::splat(1.0);
        let mp = V::splat(min_pixel);
        let mut i = 0;
        while i + V::LANES <= n {
            let v = V::loadu(px.add(i));
            // max_sse(v, 0): v > 0 ? v : 0 — second operand on ties.
            let v = V::blend(v.gt(lo), v, lo);
            let v = V::blend(v.lt(hi), v, hi);
            let v = V::blend(v.gt(mp), v, mp);
            ln_lanes(v).neg().storeu(out.add(i));
            i += V::LANES;
        }
        while i < n {
            *out.add(i) = scalar::vtc_encode_one(*px.add(i), min_pixel);
            i += 1;
        }
    }
}

/// Slice map `out[i] = exp(xs[i])` (tolerant contract).
#[inline(always)]
pub(crate) unsafe fn vexp_raw<V: Lanes>(xs: *const f64, out: *mut f64, n: usize) {
    unsafe {
        let mut i = 0;
        while i + V::LANES <= n {
            exp_lanes(V::loadu(xs.add(i))).storeu(out.add(i));
            i += V::LANES;
        }
        while i < n {
            *out.add(i) = scalar::exp_one(*xs.add(i));
            i += 1;
        }
    }
}

/// Slice map `out[i] = ln(xs[i])` (tolerant contract).
#[inline(always)]
pub(crate) unsafe fn vln_raw<V: Lanes>(xs: *const f64, out: *mut f64, n: usize) {
    unsafe {
        let mut i = 0;
        while i + V::LANES <= n {
            ln_lanes(V::loadu(xs.add(i))).storeu(out.add(i));
            i += V::LANES;
        }
        while i < n {
            *out.add(i) = scalar::ln_one(*xs.add(i));
            i += 1;
        }
    }
}

/// The scalar fallback backend: one f64 per "register", masks carried as
/// all-ones / all-zero bit patterns. This is the tier every other backend
/// is pinned against, and the tier used on architectures without a vector
/// backend.
impl Lanes for f64 {
    const LANES: usize = 1;

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        x
    }

    #[inline(always)]
    unsafe fn splat_bits(b: u64) -> Self {
        f64::from_bits(b)
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f64) -> Self {
        unsafe { *p }
    }

    #[inline(always)]
    unsafe fn storeu(self, p: *mut f64) {
        unsafe { *p = self }
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        self + o
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        self - o
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        self * o
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        self / o
    }

    #[inline(always)]
    unsafe fn le(self, o: Self) -> Self {
        mask1(self <= o)
    }

    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        mask1(self < o)
    }

    #[inline(always)]
    unsafe fn ge(self, o: Self) -> Self {
        mask1(self >= o)
    }

    #[inline(always)]
    unsafe fn gt(self, o: Self) -> Self {
        mask1(self > o)
    }

    #[inline(always)]
    unsafe fn eq(self, o: Self) -> Self {
        mask1(self == o)
    }

    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        f64::from_bits(self.to_bits() & o.to_bits())
    }

    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        f64::from_bits(self.to_bits() | o.to_bits())
    }

    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        f64::from_bits(self.to_bits() ^ o.to_bits())
    }

    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        f64::from_bits(!self.to_bits() & o.to_bits())
    }

    #[inline(always)]
    unsafe fn blend(mask: Self, a: Self, b: Self) -> Self {
        if mask.to_bits() != 0 {
            a
        } else {
            b
        }
    }

    #[inline(always)]
    unsafe fn i64_add(self, o: Self) -> Self {
        f64::from_bits((self.to_bits() as i64).wrapping_add(o.to_bits() as i64) as u64)
    }

    #[inline(always)]
    unsafe fn i64_sub(self, o: Self) -> Self {
        f64::from_bits((self.to_bits() as i64).wrapping_sub(o.to_bits() as i64) as u64)
    }

    #[inline(always)]
    unsafe fn shl52(self) -> Self {
        f64::from_bits(self.to_bits() << 52)
    }

    #[inline(always)]
    unsafe fn shr52(self) -> Self {
        f64::from_bits(self.to_bits() >> 52)
    }

    #[inline(always)]
    unsafe fn i64_eq(self, o: Self) -> Self {
        mask1(self.to_bits() == o.to_bits())
    }

    #[inline(always)]
    unsafe fn floor_small(self) -> Self {
        self.floor()
    }

    #[inline(always)]
    unsafe fn any(self) -> bool {
        self.to_bits() != 0
    }
}

#[inline(always)]
fn mask1(b: bool) -> f64 {
    f64::from_bits(if b { u64::MAX } else { 0 })
}

/// Slice map `out[i] = ln_1p(xs[i])` (tolerant contract).
#[inline(always)]
pub(crate) unsafe fn vln_1p_raw<V: Lanes>(xs: *const f64, out: *mut f64, n: usize) {
    unsafe {
        let mut i = 0;
        while i + V::LANES <= n {
            ln_1p_lanes(V::loadu(xs.add(i))).storeu(out.add(i));
            i += V::LANES;
        }
        while i < n {
            *out.add(i) = scalar::ln_1p_one(*xs.add(i));
            i += 1;
        }
    }
}
