//! x86-64 backends: SSE2 (baseline, statically available on every x86-64
//! target) and AVX2 (runtime-detected, entered through
//! `#[target_feature]` trampolines so the generic kernels monomorphize
//! with the wider ISA).
//!
//! `unused_unsafe` is allowed module-wide: which vendor intrinsics count
//! as safe-to-call depends on the enclosing function's statically enabled
//! features and has shifted across rustc versions, so every intrinsic call
//! is wrapped uniformly instead of tracking the classification.
#![allow(unused_unsafe)]

use core::arch::x86_64::*;

use crate::kernels::{self, Lanes};

impl Lanes for __m128d {
    const LANES: usize = 2;

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        unsafe { _mm_set1_pd(x) }
    }

    #[inline(always)]
    unsafe fn splat_bits(b: u64) -> Self {
        unsafe { _mm_castsi128_pd(_mm_set1_epi64x(b as i64)) }
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f64) -> Self {
        unsafe { _mm_loadu_pd(p) }
    }

    #[inline(always)]
    unsafe fn storeu(self, p: *mut f64) {
        unsafe { _mm_storeu_pd(p, self) }
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        unsafe { _mm_add_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        unsafe { _mm_sub_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        unsafe { _mm_mul_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        unsafe { _mm_div_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn le(self, o: Self) -> Self {
        unsafe { _mm_cmple_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        unsafe { _mm_cmplt_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn ge(self, o: Self) -> Self {
        unsafe { _mm_cmpge_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn gt(self, o: Self) -> Self {
        unsafe { _mm_cmpgt_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn eq(self, o: Self) -> Self {
        unsafe { _mm_cmpeq_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        unsafe { _mm_and_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        unsafe { _mm_or_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        unsafe { _mm_xor_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        unsafe { _mm_andnot_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn blend(mask: Self, a: Self, b: Self) -> Self {
        unsafe { _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b)) }
    }

    #[inline(always)]
    unsafe fn i64_add(self, o: Self) -> Self {
        unsafe { _mm_castsi128_pd(_mm_add_epi64(_mm_castpd_si128(self), _mm_castpd_si128(o))) }
    }

    #[inline(always)]
    unsafe fn i64_sub(self, o: Self) -> Self {
        unsafe { _mm_castsi128_pd(_mm_sub_epi64(_mm_castpd_si128(self), _mm_castpd_si128(o))) }
    }

    #[inline(always)]
    unsafe fn shl52(self) -> Self {
        unsafe { _mm_castsi128_pd(_mm_slli_epi64::<52>(_mm_castpd_si128(self))) }
    }

    #[inline(always)]
    unsafe fn shr52(self) -> Self {
        unsafe { _mm_castsi128_pd(_mm_srli_epi64::<52>(_mm_castpd_si128(self))) }
    }

    #[inline(always)]
    unsafe fn i64_eq(self, o: Self) -> Self {
        // SSE2 has no 64-bit lane equality; compose it from the 32-bit one
        // by AND-ing each half's result with its pair-swapped shuffle.
        unsafe {
            let t = _mm_cmpeq_epi32(_mm_castpd_si128(self), _mm_castpd_si128(o));
            let s = _mm_shuffle_epi32::<0b1011_0001>(t);
            _mm_castsi128_pd(_mm_and_si128(t, s))
        }
    }

    #[inline(always)]
    unsafe fn floor_small(self) -> Self {
        // SSE2 has no roundpd: truncate through i32 (exact for |x| < 2^31)
        // and subtract one where truncation rounded up.
        unsafe {
            let t = _mm_cvtepi32_pd(_mm_cvttpd_epi32(self));
            let adj = _mm_and_pd(_mm_cmpgt_pd(t, self), _mm_set1_pd(1.0));
            _mm_sub_pd(t, adj)
        }
    }

    #[inline(always)]
    unsafe fn any(self) -> bool {
        unsafe { _mm_movemask_pd(self) != 0 }
    }
}

impl Lanes for __m256d {
    const LANES: usize = 4;

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        unsafe { _mm256_set1_pd(x) }
    }

    #[inline(always)]
    unsafe fn splat_bits(b: u64) -> Self {
        unsafe { _mm256_castsi256_pd(_mm256_set1_epi64x(b as i64)) }
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f64) -> Self {
        unsafe { _mm256_loadu_pd(p) }
    }

    #[inline(always)]
    unsafe fn storeu(self, p: *mut f64) {
        unsafe { _mm256_storeu_pd(p, self) }
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        unsafe { _mm256_add_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        unsafe { _mm256_sub_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        unsafe { _mm256_mul_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        unsafe { _mm256_div_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn le(self, o: Self) -> Self {
        unsafe { _mm256_cmp_pd::<_CMP_LE_OQ>(self, o) }
    }

    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        unsafe { _mm256_cmp_pd::<_CMP_LT_OQ>(self, o) }
    }

    #[inline(always)]
    unsafe fn ge(self, o: Self) -> Self {
        unsafe { _mm256_cmp_pd::<_CMP_GE_OQ>(self, o) }
    }

    #[inline(always)]
    unsafe fn gt(self, o: Self) -> Self {
        unsafe { _mm256_cmp_pd::<_CMP_GT_OQ>(self, o) }
    }

    #[inline(always)]
    unsafe fn eq(self, o: Self) -> Self {
        unsafe { _mm256_cmp_pd::<_CMP_EQ_OQ>(self, o) }
    }

    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        unsafe { _mm256_and_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        unsafe { _mm256_or_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        unsafe { _mm256_xor_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        unsafe { _mm256_andnot_pd(self, o) }
    }

    #[inline(always)]
    unsafe fn blend(mask: Self, a: Self, b: Self) -> Self {
        // blendv selects the second source where the mask sign bit is set.
        unsafe { _mm256_blendv_pd(b, a, mask) }
    }

    #[inline(always)]
    unsafe fn i64_add(self, o: Self) -> Self {
        unsafe {
            _mm256_castsi256_pd(_mm256_add_epi64(
                _mm256_castpd_si256(self),
                _mm256_castpd_si256(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn i64_sub(self, o: Self) -> Self {
        unsafe {
            _mm256_castsi256_pd(_mm256_sub_epi64(
                _mm256_castpd_si256(self),
                _mm256_castpd_si256(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn shl52(self) -> Self {
        unsafe { _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_castpd_si256(self))) }
    }

    #[inline(always)]
    unsafe fn shr52(self) -> Self {
        unsafe { _mm256_castsi256_pd(_mm256_srli_epi64::<52>(_mm256_castpd_si256(self))) }
    }

    #[inline(always)]
    unsafe fn i64_eq(self, o: Self) -> Self {
        unsafe {
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(
                _mm256_castpd_si256(self),
                _mm256_castpd_si256(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn floor_small(self) -> Self {
        unsafe { _mm256_floor_pd(self) }
    }

    #[inline(always)]
    unsafe fn any(self) -> bool {
        unsafe { _mm256_movemask_pd(self) != 0 }
    }
}

/// Generates `#[target_feature(enable = "avx2")]` trampolines that
/// monomorphize a generic kernel with the AVX2 backend. The trampoline is
/// what lets the `#[inline(always)]` kernel body codegen with AVX2.
macro_rules! avx2_trampolines {
    ($(fn $name:ident = $kernel:ident ( $($arg:ident : $ty:ty),* $(,)? ) $(-> $ret:ty)?;)+) => {
        $(
            #[target_feature(enable = "avx2")]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn $name($($arg: $ty),*) $(-> $ret)? {
                // SAFETY: the dispatcher only routes here when AVX2 was
                // runtime-detected (or explicitly forced after an
                // availability check).
                unsafe { kernels::$kernel::<__m256d>($($arg),*) }
            }
        )+
    };
}

avx2_trampolines! {
    fn add_units_avx2 = add_units_raw(p: *mut f64, delta: f64, n: usize);
    fn weighted_leaves_avx2 = weighted_leaves_raw(
        px: *const f64, stride: usize, w: f64, truncate_at: f64, out: *mut f64, n: usize);
    fn nlse_approx_rows_avx2 = nlse_approx_rows_raw(
        a: *const f64, au: f64, b: *const f64, bu: f64,
        terms: &[(f64, f64)], k: f64, out: *mut f64, n: usize);
    fn nlse_exact_rows_tolerant_avx2 = nlse_exact_rows_tolerant_raw(
        a: *const f64, au: f64, b: *const f64, bu: f64, out: *mut f64, n: usize);
    fn nlde_rows_tolerant_avx2 = nlde_rows_tolerant_raw(
        xs: *const f64, ys: *const f64, out: *mut f64, n: usize) -> bool;
    fn total_min_avx2 = total_min_raw(p: *const f64, n: usize) -> f64;
    fn exp_sum_striped_avx2 = exp_sum_striped_raw(
        p: *const f64, n: usize, pivot: f64, cutoff: f64) -> [f64; 4];
    fn vtc_encode_avx2 = vtc_encode_raw(
        px: *const f64, min_pixel: f64, out: *mut f64, n: usize);
    fn vexp_avx2 = vexp_raw(xs: *const f64, out: *mut f64, n: usize);
    fn vln_avx2 = vln_raw(xs: *const f64, out: *mut f64, n: usize);
    fn vln_1p_avx2 = vln_1p_raw(xs: *const f64, out: *mut f64, n: usize);
}
