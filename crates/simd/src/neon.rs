//! AArch64 NEON backend. NEON is baseline on aarch64, so no runtime
//! detection or `#[target_feature]` trampolines are needed — the
//! dispatcher monomorphizes the generic kernels with `float64x2_t`
//! directly. Masks are carried as `float64x2_t` reinterpretations of the
//! `uint64x2_t` compare results so the backend presents the same
//! all-ones/all-zero mask convention as the x86 tiers.
//!
//! This tier is compiled only on aarch64 hosts (this workspace's CI runs
//! x86-64); it is deliberately a minimal, mechanical mirror of the SSE2
//! backend. Note `min`/`max`-style selects are built from compare+bsl, not
//! `vminq_f64`, to keep the x86 tie semantics (second operand on ties).
#![allow(unused_unsafe)]

use core::arch::aarch64::*;

use crate::kernels::Lanes;

#[inline(always)]
unsafe fn mask_f64(m: uint64x2_t) -> float64x2_t {
    unsafe { vreinterpretq_f64_u64(m) }
}

impl Lanes for float64x2_t {
    const LANES: usize = 2;

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        unsafe { vdupq_n_f64(x) }
    }

    #[inline(always)]
    unsafe fn splat_bits(b: u64) -> Self {
        unsafe { vreinterpretq_f64_u64(vdupq_n_u64(b)) }
    }

    #[inline(always)]
    unsafe fn loadu(p: *const f64) -> Self {
        unsafe { vld1q_f64(p) }
    }

    #[inline(always)]
    unsafe fn storeu(self, p: *mut f64) {
        unsafe { vst1q_f64(p, self) }
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        unsafe { vaddq_f64(self, o) }
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        unsafe { vsubq_f64(self, o) }
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        unsafe { vmulq_f64(self, o) }
    }

    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        unsafe { vdivq_f64(self, o) }
    }

    #[inline(always)]
    unsafe fn le(self, o: Self) -> Self {
        unsafe { mask_f64(vcleq_f64(self, o)) }
    }

    #[inline(always)]
    unsafe fn lt(self, o: Self) -> Self {
        unsafe { mask_f64(vcltq_f64(self, o)) }
    }

    #[inline(always)]
    unsafe fn ge(self, o: Self) -> Self {
        unsafe { mask_f64(vcgeq_f64(self, o)) }
    }

    #[inline(always)]
    unsafe fn gt(self, o: Self) -> Self {
        unsafe { mask_f64(vcgtq_f64(self, o)) }
    }

    #[inline(always)]
    unsafe fn eq(self, o: Self) -> Self {
        unsafe { mask_f64(vceqq_f64(self, o)) }
    }

    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        unsafe {
            vreinterpretq_f64_u64(vandq_u64(
                vreinterpretq_u64_f64(self),
                vreinterpretq_u64_f64(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        unsafe {
            vreinterpretq_f64_u64(vorrq_u64(
                vreinterpretq_u64_f64(self),
                vreinterpretq_u64_f64(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        unsafe {
            vreinterpretq_f64_u64(veorq_u64(
                vreinterpretq_u64_f64(self),
                vreinterpretq_u64_f64(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        // vbicq(a, b) computes a & !b; the trait contract is (!self) & o.
        unsafe {
            vreinterpretq_f64_u64(vbicq_u64(
                vreinterpretq_u64_f64(o),
                vreinterpretq_u64_f64(self),
            ))
        }
    }

    #[inline(always)]
    unsafe fn blend(mask: Self, a: Self, b: Self) -> Self {
        unsafe { vbslq_f64(vreinterpretq_u64_f64(mask), a, b) }
    }

    #[inline(always)]
    unsafe fn i64_add(self, o: Self) -> Self {
        unsafe {
            vreinterpretq_f64_s64(vaddq_s64(
                vreinterpretq_s64_f64(self),
                vreinterpretq_s64_f64(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn i64_sub(self, o: Self) -> Self {
        unsafe {
            vreinterpretq_f64_s64(vsubq_s64(
                vreinterpretq_s64_f64(self),
                vreinterpretq_s64_f64(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn shl52(self) -> Self {
        unsafe { vreinterpretq_f64_u64(vshlq_n_u64::<52>(vreinterpretq_u64_f64(self))) }
    }

    #[inline(always)]
    unsafe fn shr52(self) -> Self {
        unsafe { vreinterpretq_f64_u64(vshrq_n_u64::<52>(vreinterpretq_u64_f64(self))) }
    }

    #[inline(always)]
    unsafe fn i64_eq(self, o: Self) -> Self {
        unsafe {
            mask_f64(vceqq_u64(
                vreinterpretq_u64_f64(self),
                vreinterpretq_u64_f64(o),
            ))
        }
    }

    #[inline(always)]
    unsafe fn floor_small(self) -> Self {
        unsafe { vrndmq_f64(self) }
    }

    #[inline(always)]
    unsafe fn any(self) -> bool {
        unsafe {
            let m = vreinterpretq_u64_f64(self);
            (vgetq_lane_u64::<0>(m) | vgetq_lane_u64::<1>(m)) != 0
        }
    }
}
