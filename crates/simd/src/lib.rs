//! Runtime-dispatched SIMD kernels for delay-space arithmetic.
//!
//! This crate is the workspace's one home for `unsafe` vector code (every
//! other library crate carries `#![forbid(unsafe_code)]`). It exposes
//! batch forms of the hot delay-space kernels — weighted leaf fills,
//! min-of-max approximate nLSE, exact nLSE/nLDE, the `nlse_many` pivot
//! fold, VTC encode — plus slice transcendentals (`vexp`, `vln`,
//! `vln_1p`), dispatched at runtime over ISA tiers:
//!
//! | tier | ISA | lanes | availability |
//! |------|-----|-------|--------------|
//! | `Scalar` | portable | 1 | always |
//! | `Sse2`   | x86-64 SSE2 | 2 | x86-64 baseline (always there) |
//! | `Avx2`   | x86-64 AVX2 | 4 | runtime-detected |
//! | `Neon`   | AArch64 NEON | 2 | aarch64 baseline |
//!
//! # Bit-identity vs. tolerant contract
//!
//! Kernels come in two families (see [`kernels`](self) internals and
//! [`scalar`] for the reference forms):
//!
//! * **Identical**: kernels built only from IEEE add/compare/select
//!   ([`nlse_approx_rows`], [`weighted_leaves`], [`add_units`],
//!   [`total_min`], and the identical flavors of [`nlse_exact_rows`] /
//!   [`nlde_rows`] / [`nlse_fold`], which keep their transcendentals
//!   scalar and in scalar order). These produce bit-for-bit the results
//!   of the golden scalar `DelayValue` engine on **every** tier,
//!   including the `f64::total_cmp` comparator flavor on signed zeros.
//! * **Tolerant**: kernels that vectorize `exp`/`ln`/`ln_1p` with
//!   Cephes-style polynomials (a few ulp from libm, flush-to-zero below
//!   `exp(-745.133)`) or reassociate reductions ([`nlse_fold`] with
//!   `tolerant = true` stripes the sum into four fixed accumulators).
//!   Tolerant results still match bit-for-bit *across tiers and tail
//!   positions* — the polynomial evaluation order is identical in lanes
//!   and scalar tails, and the stripe count is tier-independent — but
//!   match libm-based scalar results only to a tolerance.
//!
//! # Selecting a tier and a mode
//!
//! The active tier is runtime-detected, can be pinned programmatically
//! with [`force_tier`], and is seeded from the `TA_SIMD_TIER` environment
//! variable (`scalar` | `sse2` | `avx2` | `neon`; unavailable or invalid
//! values fall back to detection). The executor-facing mode —
//! [`SimdMode::Off`] / [`SimdMode::Identical`] / [`SimdMode::Tolerant`] —
//! is process-global ([`mode`] / [`set_mode`]), seeded from `TA_SIMD`
//! (default `identical`), and surfaced on the CLI as `--simd` /
//! `--simd-tier`.
//!
//! Every kernel also has a `*_in` variant taking an explicit tier, used by
//! the parity proptests and benches to pin a specific backend without
//! touching the process-global state.

#![forbid(clippy::todo)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod kernels;
#[cfg(target_arch = "aarch64")]
mod neon;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::atomic::{AtomicU8, Ordering};

/// An ISA tier the dispatcher can route kernels to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar fallback (always available; the golden backend).
    Scalar,
    /// x86-64 SSE2, 2 × f64 lanes (baseline on every x86-64 target).
    Sse2,
    /// x86-64 AVX2, 4 × f64 lanes (runtime-detected).
    Avx2,
    /// AArch64 NEON, 2 × f64 lanes (baseline on every aarch64 target).
    Neon,
}

impl SimdTier {
    /// Whether this tier can run on the current host.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdTier::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The canonical lower-case name (`scalar`, `sse2`, `avx2`, `neon`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
            SimdTier::Neon => "neon",
        }
    }

    fn encode(self) -> u8 {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Sse2 => 2,
            SimdTier::Avx2 => 3,
            SimdTier::Neon => 4,
        }
    }

    fn decode(v: u8) -> Option<SimdTier> {
        match v {
            1 => Some(SimdTier::Scalar),
            2 => Some(SimdTier::Sse2),
            3 => Some(SimdTier::Avx2),
            4 => Some(SimdTier::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SimdTier {
    type Err = TierParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimdTier::Scalar),
            "sse2" => Ok(SimdTier::Sse2),
            "avx2" => Ok(SimdTier::Avx2),
            "neon" => Ok(SimdTier::Neon),
            _ => Err(TierParseError),
        }
    }
}

/// A tier name failed to parse (expected `scalar`/`sse2`/`avx2`/`neon`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierParseError;

impl std::fmt::Display for TierParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("unknown SIMD tier (expected scalar, sse2, avx2 or neon)")
    }
}

impl std::error::Error for TierParseError {}

/// A requested tier cannot run on this host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierUnavailable {
    /// The tier that was requested.
    pub requested: SimdTier,
}

impl std::fmt::Display for TierUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SIMD tier {} is not available on this host",
            self.requested
        )
    }
}

impl std::error::Error for TierUnavailable {}

/// The executor-facing vectorization mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Never take a vector path; byte-for-byte the pre-SIMD executor.
    Off,
    /// Vector paths restricted to the bit-identity contract (default).
    #[default]
    Identical,
    /// Additionally allow lane-reassociated transcendental kernels,
    /// pinned by nRMSE tolerance rather than bit equality.
    Tolerant,
}

impl SimdMode {
    /// The canonical lower-case name (`off`, `identical`, `tolerant`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimdMode::Off => "off",
            SimdMode::Identical => "identical",
            SimdMode::Tolerant => "tolerant",
        }
    }

    fn encode(self) -> u8 {
        match self {
            SimdMode::Off => 1,
            SimdMode::Identical => 2,
            SimdMode::Tolerant => 3,
        }
    }

    fn decode(v: u8) -> Option<SimdMode> {
        match v {
            1 => Some(SimdMode::Off),
            2 => Some(SimdMode::Identical),
            3 => Some(SimdMode::Tolerant),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SimdMode {
    type Err = ModeParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Ok(SimdMode::Off),
            "identical" => Ok(SimdMode::Identical),
            "tolerant" => Ok(SimdMode::Tolerant),
            _ => Err(ModeParseError),
        }
    }
}

/// A mode name failed to parse (expected `off`/`identical`/`tolerant`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModeParseError;

impl std::fmt::Display for ModeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("unknown SIMD mode (expected off, identical or tolerant)")
    }
}

impl std::error::Error for ModeParseError {}

/// 0 = uninitialized (consult `TA_SIMD_TIER` / detection on first use).
static TIER: AtomicU8 = AtomicU8::new(0);
/// 0 = uninitialized (consult `TA_SIMD` on first use).
static MODE: AtomicU8 = AtomicU8::new(0);

/// The widest tier the host supports, ignoring overrides.
#[must_use]
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            SimdTier::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdTier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdTier::Scalar
    }
}

/// The tier kernels currently dispatch to: a [`force_tier`] override if
/// one is in effect, else `TA_SIMD_TIER` from the environment (invalid or
/// unavailable values are ignored), else [`detected_tier`].
#[must_use]
pub fn active_tier() -> SimdTier {
    if let Some(t) = SimdTier::decode(TIER.load(Ordering::Relaxed)) {
        return t;
    }
    let t = std::env::var("TA_SIMD_TIER")
        .ok()
        .and_then(|s| s.parse::<SimdTier>().ok())
        .filter(|t| t.is_available())
        .unwrap_or_else(detected_tier);
    TIER.store(t.encode(), Ordering::Relaxed);
    t
}

/// Pins the dispatcher to a specific tier (`Some`) or reverts to
/// environment/detection (`None`). Process-global.
///
/// # Errors
///
/// [`TierUnavailable`] if the requested tier cannot run on this host; the
/// active tier is left unchanged.
pub fn force_tier(tier: Option<SimdTier>) -> Result<(), TierUnavailable> {
    match tier {
        Some(t) if !t.is_available() => Err(TierUnavailable { requested: t }),
        Some(t) => {
            TIER.store(t.encode(), Ordering::Relaxed);
            Ok(())
        }
        None => {
            TIER.store(0, Ordering::Relaxed);
            Ok(())
        }
    }
}

/// The process-global executor mode: the last [`set_mode`], else the
/// `TA_SIMD` environment variable, else [`SimdMode::Identical`].
#[must_use]
pub fn mode() -> SimdMode {
    if let Some(m) = SimdMode::decode(MODE.load(Ordering::Relaxed)) {
        return m;
    }
    let m = std::env::var("TA_SIMD")
        .ok()
        .and_then(|s| s.parse::<SimdMode>().ok())
        .unwrap_or_default();
    MODE.store(m.encode(), Ordering::Relaxed);
    m
}

/// Sets the process-global executor mode.
pub fn set_mode(m: SimdMode) {
    MODE.store(m.encode(), Ordering::Relaxed);
}

/// Routes a kernel to the backend for `tier`. The caller (the public
/// `*_in` wrappers) asserts tier availability first, which is what makes
/// entering the `#[target_feature]` AVX2 trampolines sound.
macro_rules! dispatch {
    ($tier:expr, $kernel:ident, $avx2fn:ident, ($($arg:expr),* $(,)?)) => {{
        match $tier {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability asserted by the caller.
            SimdTier::Avx2 => unsafe { crate::x86::$avx2fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is baseline on x86-64.
            SimdTier::Sse2 => unsafe {
                crate::kernels::$kernel::<core::arch::x86_64::__m128d>($($arg),*)
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64.
            SimdTier::Neon => unsafe {
                crate::kernels::$kernel::<core::arch::aarch64::float64x2_t>($($arg),*)
            },
            // SAFETY: the scalar backend has no ISA requirements; the raw
            // pointers come from live slices sized by the caller.
            _ => unsafe { crate::kernels::$kernel::<f64>($($arg),*) },
        }
    }};
}

#[inline]
fn check_tier(tier: SimdTier) -> SimdTier {
    assert!(
        tier.is_available(),
        "SIMD tier {tier} is not available on this host"
    );
    tier
}

/// In-place `xs[i] += delta` — the unconditional `DelayValue::delayed`
/// semantics (`+0.0` flattens `-0.0`). Identical contract.
pub fn add_units(xs: &mut [f64], delta: f64) {
    add_units_in(active_tier(), xs, delta);
}

/// [`add_units`] pinned to an explicit tier.
///
/// # Panics
///
/// If `tier` is not available on this host.
pub fn add_units_in(tier: SimdTier, xs: &mut [f64], delta: f64) {
    let tier = check_tier(tier);
    dispatch!(
        tier,
        add_units_raw,
        add_units_avx2,
        (xs.as_mut_ptr(), delta, xs.len())
    );
}

/// Weighted leaf fill: `out[i] = px[i * stride] + w`, truncated to never
/// (`+∞`) when the sum exceeds `truncate_at`. Identical contract.
///
/// # Panics
///
/// If `px` is shorter than the `(out.len() - 1) * stride + 1` elements the
/// gather reads.
pub fn weighted_leaves(px: &[f64], stride: usize, w: f64, truncate_at: f64, out: &mut [f64]) {
    weighted_leaves_in(active_tier(), px, stride, w, truncate_at, out);
}

/// [`weighted_leaves`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`weighted_leaves`], plus if `tier` is unavailable.
pub fn weighted_leaves_in(
    tier: SimdTier,
    px: &[f64],
    stride: usize,
    w: f64,
    truncate_at: f64,
    out: &mut [f64],
) {
    let tier = check_tier(tier);
    if out.is_empty() {
        return;
    }
    assert!(stride > 0, "stride must be positive");
    assert!(
        px.len() > (out.len() - 1) * stride,
        "pixel row too short for leaf fill: {} pixels, need {}",
        px.len(),
        (out.len() - 1) * stride + 1
    );
    dispatch!(
        tier,
        weighted_leaves_raw,
        weighted_leaves_avx2,
        (
            px.as_ptr(),
            stride,
            w,
            truncate_at,
            out.as_mut_ptr(),
            out.len()
        )
    );
}

/// Batched min-of-max approximate nLSE:
/// `out[i] = approx_eval(a[i] ⊕ au, b[i] ⊕ bu) + k` with `⊕` the balance
/// add (skipped when the unit count is exactly `0.0`) and `k` the unit's
/// completion-detect latency, added unconditionally. Identical contract:
/// bit-for-bit the scalar `TreeOps::balance` + `NlseUnit::eval_ideal`
/// composition on every tier.
///
/// # Panics
///
/// If `a`, `b` and `out` differ in length.
pub fn nlse_approx_rows(
    a: &[f64],
    au: f64,
    b: &[f64],
    bu: f64,
    terms: &[(f64, f64)],
    k: f64,
    out: &mut [f64],
) {
    nlse_approx_rows_in(active_tier(), a, au, b, bu, terms, k, out);
}

/// [`nlse_approx_rows`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`nlse_approx_rows`], plus if `tier` is unavailable.
#[allow(clippy::too_many_arguments)]
pub fn nlse_approx_rows_in(
    tier: SimdTier,
    a: &[f64],
    au: f64,
    b: &[f64],
    bu: f64,
    terms: &[(f64, f64)],
    k: f64,
    out: &mut [f64],
) {
    let tier = check_tier(tier);
    assert_eq!(a.len(), out.len(), "operand/output length mismatch");
    assert_eq!(b.len(), out.len(), "operand/output length mismatch");
    dispatch!(
        tier,
        nlse_approx_rows_raw,
        nlse_approx_rows_avx2,
        (
            a.as_ptr(),
            au,
            b.as_ptr(),
            bu,
            terms,
            k,
            out.as_mut_ptr(),
            out.len()
        )
    );
}

/// In-place accumulate form of [`nlse_approx_rows`]:
/// `acc[i] = approx_eval(x[i] ⊕ xu, acc[i] ⊕ acc_units) + k` — the spine
/// combine step of the planned executor. Identical contract.
///
/// # Panics
///
/// If `x` and `acc` differ in length.
pub fn nlse_approx_rows_inplace(
    x: &[f64],
    xu: f64,
    acc: &mut [f64],
    acc_units: f64,
    terms: &[(f64, f64)],
    k: f64,
) {
    nlse_approx_rows_inplace_in(active_tier(), x, xu, acc, acc_units, terms, k);
}

/// [`nlse_approx_rows_inplace`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`nlse_approx_rows_inplace`], plus if `tier` is unavailable.
pub fn nlse_approx_rows_inplace_in(
    tier: SimdTier,
    x: &[f64],
    xu: f64,
    acc: &mut [f64],
    acc_units: f64,
    terms: &[(f64, f64)],
    k: f64,
) {
    let tier = check_tier(tier);
    assert_eq!(x.len(), acc.len(), "operand/accumulator length mismatch");
    dispatch!(
        tier,
        nlse_approx_rows_raw,
        nlse_approx_rows_avx2,
        (
            x.as_ptr(),
            xu,
            acc.as_ptr(),
            acc_units,
            terms,
            k,
            acc.as_mut_ptr(),
            acc.len()
        )
    );
}

/// Batched exact nLSE with balance units.
///
/// With `tolerant = false` this replicates `ops::nlse` bit-for-bit (libm
/// transcendentals, scalar on every tier — the exact operator is
/// transcendental-bound, so the batch form exists for layout uniformity
/// and the skip-free guard order, not lane parallelism). With
/// `tolerant = true` the spread's `exp`/`ln_1p` vectorize with the
/// polynomial lanes.
///
/// # Panics
///
/// If `a`, `b` and `out` differ in length.
pub fn nlse_exact_rows(a: &[f64], au: f64, b: &[f64], bu: f64, tolerant: bool, out: &mut [f64]) {
    nlse_exact_rows_in(active_tier(), a, au, b, bu, tolerant, out);
}

/// [`nlse_exact_rows`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`nlse_exact_rows`], plus if `tier` is unavailable.
pub fn nlse_exact_rows_in(
    tier: SimdTier,
    a: &[f64],
    au: f64,
    b: &[f64],
    bu: f64,
    tolerant: bool,
    out: &mut [f64],
) {
    let tier = check_tier(tier);
    assert_eq!(a.len(), out.len(), "operand/output length mismatch");
    assert_eq!(b.len(), out.len(), "operand/output length mismatch");
    if tolerant {
        dispatch!(
            tier,
            nlse_exact_rows_tolerant_raw,
            nlse_exact_rows_tolerant_avx2,
            (a.as_ptr(), au, b.as_ptr(), bu, out.as_mut_ptr(), out.len())
        );
    } else {
        for i in 0..out.len() {
            out[i] = scalar::nlse_exact_one(a[i], au, b[i], bu);
        }
    }
}

/// In-place accumulate form of [`nlse_exact_rows`] (exact-mode spine
/// combine): `acc[i] = nlse(x[i] ⊕ xu, acc[i] ⊕ acc_units)`.
///
/// # Panics
///
/// If `x` and `acc` differ in length.
pub fn nlse_exact_rows_inplace(
    x: &[f64],
    xu: f64,
    acc: &mut [f64],
    acc_units: f64,
    tolerant: bool,
) {
    nlse_exact_rows_inplace_in(active_tier(), x, xu, acc, acc_units, tolerant);
}

/// [`nlse_exact_rows_inplace`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`nlse_exact_rows_inplace`], plus if `tier` is unavailable.
pub fn nlse_exact_rows_inplace_in(
    tier: SimdTier,
    x: &[f64],
    xu: f64,
    acc: &mut [f64],
    acc_units: f64,
    tolerant: bool,
) {
    let tier = check_tier(tier);
    assert_eq!(x.len(), acc.len(), "operand/accumulator length mismatch");
    if tolerant {
        dispatch!(
            tier,
            nlse_exact_rows_tolerant_raw,
            nlse_exact_rows_tolerant_avx2,
            (
                x.as_ptr(),
                xu,
                acc.as_ptr(),
                acc_units,
                acc.as_mut_ptr(),
                acc.len()
            )
        );
    } else {
        for (i, &xi) in x.iter().enumerate() {
            acc[i] = scalar::nlse_exact_one(xi, xu, acc[i], acc_units);
        }
    }
}

/// An element of a batched nLDE had its dominant operand second — the
/// batch-level image of `ops::nlde`'s `NormalizeError`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NldeDominanceError;

impl std::fmt::Display for NldeDominanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("nLDE row contains an element whose dominant operand is second")
    }
}

impl std::error::Error for NldeDominanceError {}

/// Batched exact nLDE: `out[i] = nlde(xs[i], ys[i])`, with `ops::nlde`'s
/// mixed comparator semantics (total-order dominance check first, numeric
/// equality shortcut second). With `tolerant = false` this replicates
/// `ops::nlde` bit-for-bit (scalar, libm); with `tolerant = true` the
/// transcendentals vectorize. On error the contents of `out` are
/// unspecified.
///
/// # Errors
///
/// [`NldeDominanceError`] if any element's dominant operand is second.
///
/// # Panics
///
/// If `xs`, `ys` and `out` differ in length.
pub fn nlde_rows(
    xs: &[f64],
    ys: &[f64],
    tolerant: bool,
    out: &mut [f64],
) -> Result<(), NldeDominanceError> {
    nlde_rows_in(active_tier(), xs, ys, tolerant, out)
}

/// [`nlde_rows`] pinned to an explicit tier.
///
/// # Errors
///
/// As [`nlde_rows`].
///
/// # Panics
///
/// As [`nlde_rows`], plus if `tier` is unavailable.
pub fn nlde_rows_in(
    tier: SimdTier,
    xs: &[f64],
    ys: &[f64],
    tolerant: bool,
    out: &mut [f64],
) -> Result<(), NldeDominanceError> {
    let tier = check_tier(tier);
    assert_eq!(xs.len(), out.len(), "operand/output length mismatch");
    assert_eq!(ys.len(), out.len(), "operand/output length mismatch");
    let any_err = if tolerant {
        dispatch!(
            tier,
            nlde_rows_tolerant_raw,
            nlde_rows_tolerant_avx2,
            (xs.as_ptr(), ys.as_ptr(), out.as_mut_ptr(), out.len())
        )
    } else {
        let mut err = false;
        for i in 0..out.len() {
            match scalar::nlde_one(xs[i], ys[i]) {
                Ok(v) => out[i] = v,
                Err(()) => {
                    err = true;
                    break;
                }
            }
        }
        err
    };
    if any_err {
        Err(NldeDominanceError)
    } else {
        Ok(())
    }
}

/// Total-order minimum of a slice of delays; `+∞` (never) when empty.
/// Identical contract in any tier and association order — total-order
/// ties are bit-identical, so the lattice meet has one representation.
#[must_use]
pub fn total_min(xs: &[f64]) -> f64 {
    total_min_in(active_tier(), xs)
}

/// [`total_min`] pinned to an explicit tier.
///
/// # Panics
///
/// If `tier` is unavailable.
#[must_use]
pub fn total_min_in(tier: SimdTier, xs: &[f64]) -> f64 {
    let tier = check_tier(tier);
    dispatch!(tier, total_min_raw, total_min_avx2, (xs.as_ptr(), xs.len()))
}

/// The `ops::nlse_many` pivot fold over raw delays.
///
/// With `tolerant = false` the pivot scan vectorizes (bit-exact, see
/// [`total_min`]) while the `Σ exp(pivot − v)` accumulation stays scalar
/// and in slice order with libm `exp` — bit-for-bit `ops::nlse_many`,
/// including the `underflow_cutoff` skip and the `acc == 1.0`
/// min-domination shortcut. With `tolerant = true` the accumulation runs
/// in four fixed stripes of polynomial-`exp` lanes (tier-independent
/// reassociation) and the final `ln` is polynomial.
#[must_use]
pub fn nlse_fold(delays: &[f64], underflow_cutoff: f64, tolerant: bool) -> f64 {
    nlse_fold_in(active_tier(), delays, underflow_cutoff, tolerant)
}

/// [`nlse_fold`] pinned to an explicit tier.
///
/// # Panics
///
/// If `tier` is unavailable.
#[must_use]
pub fn nlse_fold_in(tier: SimdTier, delays: &[f64], underflow_cutoff: f64, tolerant: bool) -> f64 {
    let tier = check_tier(tier);
    let m = dispatch!(
        tier,
        total_min_raw,
        total_min_avx2,
        (delays.as_ptr(), delays.len())
    );
    if m == f64::INFINITY {
        return f64::INFINITY;
    }
    if m == f64::NEG_INFINITY {
        return m;
    }
    if delays.len() == 1 {
        return m;
    }
    if tolerant {
        let stripes = dispatch!(
            tier,
            exp_sum_striped_raw,
            exp_sum_striped_avx2,
            (delays.as_ptr(), delays.len(), m, underflow_cutoff)
        );
        let acc = ((stripes[0] + stripes[1]) + stripes[2]) + stripes[3];
        if acc == 1.0 {
            return m;
        }
        m - scalar::ln_one(acc)
    } else {
        let mut acc = 0.0_f64;
        for &v in delays {
            if v != f64::INFINITY {
                let d = m - v;
                if d >= underflow_cutoff {
                    acc += d.exp();
                }
            }
        }
        if acc == 1.0 {
            return m;
        }
        m - acc.ln()
    }
}

/// Batched VTC ideal encode (tolerant contract): clamp each pixel to
/// `[0, 1]`, floor at `min_pixel`, then `-ln` via the polynomial lanes.
/// The identical-mode executor keeps the per-pixel libm transfer instead.
///
/// # Panics
///
/// If any pixel is non-finite (the same contract the scalar
/// `VtcModel::convert_ideal` asserts per pixel), or on length mismatch.
pub fn vtc_encode_rows(px: &[f64], min_pixel: f64, out: &mut [f64]) {
    vtc_encode_rows_in(active_tier(), px, min_pixel, out);
}

/// [`vtc_encode_rows`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`vtc_encode_rows`], plus if `tier` is unavailable.
pub fn vtc_encode_rows_in(tier: SimdTier, px: &[f64], min_pixel: f64, out: &mut [f64]) {
    let tier = check_tier(tier);
    assert_eq!(px.len(), out.len(), "pixel/output length mismatch");
    for &p in px {
        assert!(p.is_finite(), "pixel intensities must be finite, got {p}");
    }
    dispatch!(
        tier,
        vtc_encode_raw,
        vtc_encode_avx2,
        (px.as_ptr(), min_pixel, out.as_mut_ptr(), out.len())
    );
}

/// Slice map `out[i] = exp(xs[i])` (tolerant contract: polynomial lanes,
/// a few ulp from libm, flush-to-zero below `exp(-745.133)`).
///
/// # Panics
///
/// On length mismatch.
pub fn vexp(xs: &[f64], out: &mut [f64]) {
    vexp_in(active_tier(), xs, out);
}

/// [`vexp`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`vexp`], plus if `tier` is unavailable.
pub fn vexp_in(tier: SimdTier, xs: &[f64], out: &mut [f64]) {
    let tier = check_tier(tier);
    assert_eq!(xs.len(), out.len(), "input/output length mismatch");
    dispatch!(
        tier,
        vexp_raw,
        vexp_avx2,
        (xs.as_ptr(), out.as_mut_ptr(), out.len())
    );
}

/// Slice map `out[i] = ln(xs[i])` (tolerant contract).
///
/// # Panics
///
/// On length mismatch.
pub fn vln(xs: &[f64], out: &mut [f64]) {
    vln_in(active_tier(), xs, out);
}

/// [`vln`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`vln`], plus if `tier` is unavailable.
pub fn vln_in(tier: SimdTier, xs: &[f64], out: &mut [f64]) {
    let tier = check_tier(tier);
    assert_eq!(xs.len(), out.len(), "input/output length mismatch");
    dispatch!(
        tier,
        vln_raw,
        vln_avx2,
        (xs.as_ptr(), out.as_mut_ptr(), out.len())
    );
}

/// Slice map `out[i] = ln_1p(xs[i])` (tolerant contract).
///
/// # Panics
///
/// On length mismatch.
pub fn vln_1p(xs: &[f64], out: &mut [f64]) {
    vln_1p_in(active_tier(), xs, out);
}

/// [`vln_1p`] pinned to an explicit tier.
///
/// # Panics
///
/// As [`vln_1p`], plus if `tier` is unavailable.
pub fn vln_1p_in(tier: SimdTier, xs: &[f64], out: &mut [f64]) {
    let tier = check_tier(tier);
    assert_eq!(xs.len(), out.len(), "input/output length mismatch");
    dispatch!(
        tier,
        vln_1p_raw,
        vln_1p_avx2,
        (xs.as_ptr(), out.as_mut_ptr(), out.len())
    );
}

/// Every tier available on this host, scalar first — the sweep the parity
/// suites iterate.
#[must_use]
pub fn available_tiers() -> Vec<SimdTier> {
    [
        SimdTier::Scalar,
        SimdTier::Sse2,
        SimdTier::Avx2,
        SimdTier::Neon,
    ]
    .into_iter()
    .filter(|t| t.is_available())
    .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn tier_parse_and_display_round_trip() {
        for t in [
            SimdTier::Scalar,
            SimdTier::Sse2,
            SimdTier::Avx2,
            SimdTier::Neon,
        ] {
            assert_eq!(t.as_str().parse::<SimdTier>().unwrap(), t);
        }
        assert!("mmx".parse::<SimdTier>().is_err());
        for m in [SimdMode::Off, SimdMode::Identical, SimdMode::Tolerant] {
            assert_eq!(m.as_str().parse::<SimdMode>().unwrap(), m);
        }
        assert!("fast".parse::<SimdMode>().is_err());
    }

    #[test]
    fn scalar_tier_is_always_available() {
        assert!(SimdTier::Scalar.is_available());
        assert!(available_tiers().contains(&SimdTier::Scalar));
        assert!(detected_tier().is_available());
    }

    #[test]
    fn force_tier_rejects_unavailable() {
        let unavailable = [SimdTier::Sse2, SimdTier::Avx2, SimdTier::Neon]
            .into_iter()
            .find(|t| !t.is_available());
        if let Some(t) = unavailable {
            assert_eq!(force_tier(Some(t)), Err(TierUnavailable { requested: t }));
        }
    }

    #[test]
    fn add_units_matches_plain_add_everywhere() {
        let src: Vec<f64> = (0..13).map(|i| f64::from(i) * 0.37 - 2.0).collect();
        for &tier in &available_tiers() {
            let mut xs = src.clone();
            add_units_in(tier, &mut xs, 1.25);
            for (i, (&got, &s)) in xs.iter().zip(&src).enumerate() {
                assert_eq!(got.to_bits(), (s + 1.25).to_bits(), "tier {tier} idx {i}");
            }
        }
        // The +0.0 delta flattens -0.0, like DelayValue::delayed(0.0).
        let mut xs = [-0.0_f64; 5];
        add_units(&mut xs, 0.0);
        for &x in &xs {
            assert_eq!(x.to_bits(), 0.0_f64.to_bits());
        }
    }

    #[test]
    fn approx_rows_cross_tier_bit_identity_smoke() {
        let terms = [
            (0.470_116, 0.102_893),
            (1.091_035, 0.008_747),
            (2.3, 0.000_1),
        ];
        let a: Vec<f64> = (0..17).map(|i| f64::from(i).mul_add(0.61, -1.5)).collect();
        let b: Vec<f64> = (0..17).map(|i| f64::from(i).mul_add(-0.23, 3.0)).collect();
        let mut want = vec![0.0; a.len()];
        nlse_approx_rows_in(SimdTier::Scalar, &a, 0.5, &b, 0.0, &terms, 0.25, &mut want);
        for (i, w) in want.iter().enumerate() {
            let one = scalar::nlse_approx_one(a[i], 0.5, b[i], 0.0, &terms, 0.25);
            assert_eq!(w.to_bits(), one.to_bits());
        }
        for &tier in &available_tiers() {
            let mut got = vec![0.0; a.len()];
            nlse_approx_rows_in(tier, &a, 0.5, &b, 0.0, &terms, 0.25, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tier {tier}"
            );
            // In-place form agrees with the out-of-place form.
            let mut acc = b.clone();
            nlse_approx_rows_inplace_in(tier, &a, 0.5, &mut acc, 0.0, &terms, 0.25);
            assert_eq!(
                acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tier {tier} inplace"
            );
        }
    }

    #[test]
    fn total_min_is_total_order() {
        let xs = [3.0, -0.0, 0.0, 7.5];
        for &tier in &available_tiers() {
            let m = total_min_in(tier, &xs);
            assert_eq!(m.to_bits(), (-0.0_f64).to_bits(), "tier {tier}");
        }
        assert_eq!(total_min(&[]), f64::INFINITY);
        let ys = [f64::INFINITY, 2.0, f64::NEG_INFINITY];
        assert_eq!(total_min(&ys), f64::NEG_INFINITY);
    }

    #[test]
    fn fold_identical_matches_manual_loop() {
        let xs = [0.4, 1.9, 0.4, 800.9, f64::INFINITY];
        let cutoff = -745.2;
        for &tier in &available_tiers() {
            let got = nlse_fold_in(tier, &xs, cutoff, false);
            let m = 0.4;
            let mut acc = 0.0;
            for &v in &xs {
                if v != f64::INFINITY {
                    let d: f64 = m - v;
                    if d >= cutoff {
                        acc += d.exp();
                    }
                }
            }
            assert_eq!(got.to_bits(), (m - acc.ln()).to_bits(), "tier {tier}");
        }
        // Tolerant stays within a tight relative tolerance of identical.
        let id = nlse_fold(&xs, cutoff, false);
        let tol = nlse_fold(&xs, cutoff, true);
        assert!(((tol - id) / id).abs() < 1e-12, "id={id} tol={tol}");
    }

    #[test]
    fn vexp_matches_scalar_companion_on_negative_lanes() {
        // Regression: the to_pow2 exponent magic must hold for negative n,
        // and slices longer than any lane width keep this on the lane path.
        let xs: Vec<f64> = (0..64).map(|i| -f64::from(i) * 0.37).collect();
        for &tier in &available_tiers() {
            let mut out = vec![0.0; xs.len()];
            vexp_in(tier, &xs, &mut out);
            for (i, (&got, &x)) in out.iter().zip(&xs).enumerate() {
                let want = scalar::exp_one(x);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "tier {tier} idx {i}: exp({x}) = {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn vexp_vln_round_trip_all_tiers() {
        let xs: Vec<f64> = (1..40).map(|i| f64::from(i) * 0.73).collect();
        for &tier in &available_tiers() {
            let mut l = vec![0.0; xs.len()];
            vln_in(tier, &xs, &mut l);
            let mut back = vec![0.0; xs.len()];
            vexp_in(tier, &l, &mut back);
            for (i, (&b, &x)) in back.iter().zip(&xs).enumerate() {
                assert!(
                    ((b - x) / x).abs() < 1e-13,
                    "tier {tier} idx {i}: {b} vs {x}"
                );
            }
        }
    }
}
