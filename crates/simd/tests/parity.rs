//! Property tests pinning the vector tiers against the scalar golden
//! semantics (bit-for-bit in the identical contract, bounded error vs
//! libm in the tolerant contract) over adversarial inputs: subnormals,
//! `±∞`, signed zeros, never-delays, mixed lengths with remainder tails,
//! and spreads straddling the `EXP_UNDERFLOW` cutoff used by
//! `ops::nlse_many`.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use ta_simd::{scalar, SimdTier};

/// The same cutoff `ta-delay-space` uses for its `nlse_many` skip.
const EXP_UNDERFLOW: f64 = -745.2;

/// One adversarial delay value: finite delays of all magnitudes plus the
/// special values the delay engine actually produces (`+∞` = never, `±0`,
/// subnormals) and a few it never should but the kernels must not corrupt
/// (`-∞` from a log-of-zero pixel).
fn delay() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -50.0..800.0_f64,
        2 => -1e-3..1e-3_f64,
        1 => Just(0.0_f64),
        1 => Just(-0.0_f64),
        2 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::MIN_POSITIVE / 8.0), // subnormal
        1 => Just(-f64::MIN_POSITIVE / 8.0),
        // Values a pivot-relative spread lands within ±1 ulp of the
        // underflow cutoff, where skip-vs-accumulate must not flip
        // between scalar and vector paths.
        1 => Just(-EXP_UNDERFLOW),
        1 => Just(-EXP_UNDERFLOW + f64::EPSILON * 745.2),
        1 => Just(-EXP_UNDERFLOW - f64::EPSILON * 745.2),
    ]
}

/// Rows long enough to exercise full lanes, 4-blocks, and ragged tails on
/// every tier (AVX2 needs > 4 for a lane + tail).
fn row() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(delay(), 0..23)
}

fn units() -> impl Strategy<Value = f64> {
    prop_oneof![
        3 => Just(0.0_f64),
        5 => 0.0..4.0_f64,
        1 => Just(0.25_f64),
    ]
}

fn approx_terms() -> Vec<(f64, f64)> {
    vec![(0.470_116, 0.102_893), (1.091_035, 0.008_747), (2.5, 1e-4)]
}

fn tiers() -> Vec<SimdTier> {
    ta_simd::available_tiers()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #[test]
    fn add_units_bitwise_matches_scalar_add(xs in row(), delta in units()) {
        let want: Vec<f64> = xs.iter().map(|&x| x + delta).collect();
        for &tier in &tiers() {
            let mut got = xs.clone();
            ta_simd::add_units_in(tier, &mut got, delta);
            prop_assert_eq!(bits(&got), bits(&want), "tier {}", tier);
        }
    }

    #[test]
    fn weighted_leaves_bitwise_matches_scalar(
        px in row(),
        w in -2.0..12.0_f64,
        truncate_at in prop_oneof![Just(f64::INFINITY), 0.0..20.0_f64],
    ) {
        let want: Vec<f64> = px
            .iter()
            .map(|&p| scalar::weighted_leaf_one(p, w, truncate_at))
            .collect();
        for &tier in &tiers() {
            let mut got = vec![0.0; px.len()];
            ta_simd::weighted_leaves_in(tier, &px, 1, w, truncate_at, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "tier {}", tier);
        }
    }

    #[test]
    fn weighted_leaves_strided_gather_matches(
        px in proptest::collection::vec(delay(), 1..40),
        stride in 1..4_usize,
        w in -2.0..12.0_f64,
    ) {
        let n = (px.len() - 1) / stride + 1;
        let want: Vec<f64> = (0..n)
            .map(|i| scalar::weighted_leaf_one(px[i * stride], w, f64::INFINITY))
            .collect();
        for &tier in &tiers() {
            let mut got = vec![0.0; n];
            ta_simd::weighted_leaves_in(tier, &px, stride, w, f64::INFINITY, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "tier {}", tier);
        }
    }

    #[test]
    fn nlse_approx_rows_bitwise_matches_scalar(
        pairs in proptest::collection::vec((delay(), delay()), 0..23),
        au in units(),
        bu in units(),
        k in units(),
    ) {
        let terms = approx_terms();
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let want: Vec<f64> = pairs
            .iter()
            .map(|&(x, y)| scalar::nlse_approx_one(x, au, y, bu, &terms, k))
            .collect();
        for &tier in &tiers() {
            let mut got = vec![0.0; a.len()];
            ta_simd::nlse_approx_rows_in(tier, &a, au, &b, bu, &terms, k, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "tier {}", tier);
            // In-place aliasing form must agree with the out-of-place form.
            let mut acc = b.clone();
            ta_simd::nlse_approx_rows_inplace_in(tier, &a, au, &mut acc, bu, &terms, k);
            prop_assert_eq!(bits(&acc), bits(&want), "tier {} inplace", tier);
        }
    }

    #[test]
    fn nlse_exact_rows_identical_matches_scalar(
        pairs in proptest::collection::vec((delay(), delay()), 0..23),
        au in units(),
        bu in units(),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let want: Vec<f64> = pairs
            .iter()
            .map(|&(x, y)| scalar::nlse_exact_one(x, au, y, bu))
            .collect();
        for &tier in &tiers() {
            let mut got = vec![0.0; a.len()];
            ta_simd::nlse_exact_rows_in(tier, &a, au, &b, bu, false, &mut got);
            prop_assert_eq!(bits(&got), bits(&want), "tier {}", tier);
        }
    }

    #[test]
    fn nlse_exact_rows_tolerant_cross_tier_bit_identical_and_close(
        pairs in proptest::collection::vec((delay(), delay()), 1..23),
        au in units(),
        bu in units(),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        // The scalar-tier tolerant result is the cross-tier reference.
        let mut reference = vec![0.0; a.len()];
        ta_simd::nlse_exact_rows_in(SimdTier::Scalar, &a, au, &b, bu, true, &mut reference);
        for &tier in &tiers() {
            let mut got = vec![0.0; a.len()];
            ta_simd::nlse_exact_rows_in(tier, &a, au, &b, bu, true, &mut got);
            prop_assert_eq!(bits(&got), bits(&reference), "tier {}", tier);
        }
        // And the tolerant result stays close to the libm identical one.
        let mut exact = vec![0.0; a.len()];
        ta_simd::nlse_exact_rows_in(SimdTier::Scalar, &a, au, &b, bu, false, &mut exact);
        for (i, (&t, &e)) in reference.iter().zip(&exact).enumerate() {
            if e.is_finite() && e.abs() > 1e-300 {
                prop_assert!(
                    ((t - e) / e).abs() < 1e-12,
                    "idx {}: tolerant {} vs exact {}",
                    i, t, e
                );
            } else {
                prop_assert_eq!(t.to_bits(), e.to_bits(), "idx {}", i);
            }
        }
    }

    #[test]
    fn nlde_rows_identical_matches_scalar(
        pairs in proptest::collection::vec((delay(), delay()), 0..23),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        // Bias toward the Ok branch but keep genuine error rows: sort each
        // pair except when the raw order already errs about half the time.
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let want: Vec<Result<f64, ()>> = pairs
            .iter()
            .map(|&(x, y)| scalar::nlde_one(x, y))
            .collect();
        let want_err = want.iter().any(|r| r.is_err());
        for &tier in &tiers() {
            let mut got = vec![0.0; xs.len()];
            let res = ta_simd::nlde_rows_in(tier, &xs, &ys, false, &mut got);
            prop_assert_eq!(res.is_err(), want_err, "tier {}", tier);
            if !want_err {
                let want_vals: Vec<u64> =
                    want.iter().map(|r| r.unwrap().to_bits()).collect();
                prop_assert_eq!(bits(&got), want_vals, "tier {}", tier);
            }
        }
    }

    #[test]
    fn nlde_rows_tolerant_error_detection_matches(
        pairs in proptest::collection::vec((delay(), delay()), 0..23),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let want_err = pairs.iter().any(|&(x, y)| !scalar::total_le(x, y));
        let mut reference: Option<Vec<u64>> = None;
        for &tier in &tiers() {
            let mut got = vec![0.0; xs.len()];
            let res = ta_simd::nlde_rows_in(tier, &xs, &ys, true, &mut got);
            prop_assert_eq!(res.is_err(), want_err, "tier {}", tier);
            if !want_err {
                let gb = bits(&got);
                // Tolerant lanes are still bit-identical across tiers.
                match &reference {
                    None => reference = Some(gb),
                    Some(r) => prop_assert_eq!(&gb, r, "tier {}", tier),
                }
            }
        }
    }

    #[test]
    fn total_min_matches_total_order_iterator_min(xs in row()) {
        let want = xs
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .unwrap_or(f64::INFINITY);
        for &tier in &tiers() {
            let got = ta_simd::total_min_in(tier, &xs);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "tier {}", tier);
        }
    }

    #[test]
    fn nlse_fold_identical_matches_ops_loop(xs in row()) {
        // Replicate ops::nlse_many on raw delays (never = +inf).
        let m = xs
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .unwrap_or(f64::INFINITY);
        let want = if m == f64::INFINITY {
            f64::INFINITY
        } else if m == f64::NEG_INFINITY || xs.len() == 1 {
            m
        } else {
            let mut acc = 0.0_f64;
            for &v in &xs {
                if v != f64::INFINITY {
                    let d = m - v;
                    if d >= EXP_UNDERFLOW {
                        acc += d.exp();
                    }
                }
            }
            if acc == 1.0 { m } else { m - acc.ln() }
        };
        for &tier in &tiers() {
            let got = ta_simd::nlse_fold_in(tier, &xs, EXP_UNDERFLOW, false);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "tier {}", tier);
        }
    }

    #[test]
    fn nlse_fold_tolerant_cross_tier_bit_identical_and_close(xs in row()) {
        let reference = ta_simd::nlse_fold_in(SimdTier::Scalar, &xs, EXP_UNDERFLOW, true);
        for &tier in &tiers() {
            let got = ta_simd::nlse_fold_in(tier, &xs, EXP_UNDERFLOW, true);
            prop_assert_eq!(got.to_bits(), reference.to_bits(), "tier {}", tier);
        }
        let exact = ta_simd::nlse_fold_in(SimdTier::Scalar, &xs, EXP_UNDERFLOW, false);
        if exact.is_finite() && exact.abs() > 1e-300 {
            prop_assert!(
                ((reference - exact) / exact).abs() < 1e-11,
                "tolerant {} vs identical {}",
                reference, exact
            );
        } else {
            prop_assert_eq!(reference.to_bits(), exact.to_bits());
        }
    }

    #[test]
    fn fold_spreads_within_one_ulp_of_cutoff(
        base in -10.0..10.0_f64,
        ulps in -1..2_i64,
        n in 2..9_usize,
    ) {
        // Construct a row whose non-pivot spread lands exactly at, one ulp
        // below, and one ulp above the underflow cutoff.
        let spread = {
            let exact = -EXP_UNDERFLOW;
            let b = exact.to_bits() as i64 + ulps;
            #[allow(clippy::cast_sign_loss)]
            f64::from_bits(b as u64)
        };
        let mut xs = vec![base + spread; n];
        xs[0] = base;
        let m = xs
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .unwrap();
        let mut acc = 0.0_f64;
        for &v in &xs {
            let d = m - v;
            if d >= EXP_UNDERFLOW {
                acc += d.exp();
            }
        }
        let want = if acc == 1.0 { m } else { m - acc.ln() };
        for &tier in &tiers() {
            let got = ta_simd::nlse_fold_in(tier, &xs, EXP_UNDERFLOW, false);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "tier {}", tier);
        }
    }

    #[test]
    fn vexp_close_to_libm_and_cross_tier_identical(
        xs in proptest::collection::vec(
            prop_oneof![
                5 => -745.5..710.0_f64,
                1 => Just(0.0_f64),
                1 => Just(f64::INFINITY),
                1 => Just(f64::NEG_INFINITY),
                1 => Just(709.782_712_893_384_f64),
                1 => Just(-745.133_219_101_941_2_f64),
            ],
            1..23,
        ),
    ) {
        let mut reference = vec![0.0; xs.len()];
        ta_simd::vexp_in(SimdTier::Scalar, &xs, &mut reference);
        for &tier in &tiers() {
            let mut got = vec![0.0; xs.len()];
            ta_simd::vexp_in(tier, &xs, &mut got);
            prop_assert_eq!(bits(&got), bits(&reference), "tier {}", tier);
        }
        for (i, (&r, &x)) in reference.iter().zip(&xs).enumerate() {
            let libm = x.exp();
            if libm.is_finite() && libm > 1e-300 {
                prop_assert!(
                    ((r - libm) / libm).abs() < 1e-13,
                    "idx {}: exp({}) = {} vs libm {}",
                    i, x, r, libm
                );
            }
        }
    }

    #[test]
    fn vln_close_to_libm_and_cross_tier_identical(
        xs in proptest::collection::vec(
            prop_oneof![
                5 => 1e-6..1e6_f64,
                1 => Just(f64::MIN_POSITIVE / 8.0),
                1 => Just(1.0_f64),
                1 => Just(f64::INFINITY),
                1 => Just(0.0_f64),
            ],
            1..23,
        ),
    ) {
        let mut reference = vec![0.0; xs.len()];
        ta_simd::vln_in(SimdTier::Scalar, &xs, &mut reference);
        for &tier in &tiers() {
            let mut got = vec![0.0; xs.len()];
            ta_simd::vln_in(tier, &xs, &mut got);
            prop_assert_eq!(bits(&got), bits(&reference), "tier {}", tier);
        }
        for (i, (&r, &x)) in reference.iter().zip(&xs).enumerate() {
            let libm = x.ln();
            if libm.is_finite() && libm.abs() > 1e-12 {
                prop_assert!(
                    ((r - libm) / libm).abs() < 1e-13,
                    "idx {}: ln({}) = {} vs libm {}",
                    i, x, r, libm
                );
            } else {
                prop_assert!(
                    (r - libm).abs() < 1e-13 || r.to_bits() == libm.to_bits(),
                    "idx {}: ln({}) = {} vs libm {}",
                    i, x, r, libm
                );
            }
        }
    }

    #[test]
    fn vln_1p_close_to_libm_and_preserves_signed_zero(
        xs in proptest::collection::vec(
            prop_oneof![
                5 => -0.999..1e3_f64,
                1 => Just(0.0_f64),
                1 => Just(-0.0_f64),
                1 => Just(f64::INFINITY),
                1 => Just(f64::MIN_POSITIVE / 8.0),
            ],
            1..23,
        ),
    ) {
        let mut reference = vec![0.0; xs.len()];
        ta_simd::vln_1p_in(SimdTier::Scalar, &xs, &mut reference);
        for &tier in &tiers() {
            let mut got = vec![0.0; xs.len()];
            ta_simd::vln_1p_in(tier, &xs, &mut got);
            prop_assert_eq!(bits(&got), bits(&reference), "tier {}", tier);
        }
        for (i, (&r, &x)) in reference.iter().zip(&xs).enumerate() {
            let libm = x.ln_1p();
            if x == 0.0 {
                // ln_1p(±0) must round-trip the zero's sign bit, like libm.
                prop_assert_eq!(r.to_bits(), x.to_bits(), "idx {}", i);
            } else if libm.is_finite() && libm.abs() > 1e-12 {
                prop_assert!(
                    ((r - libm) / libm).abs() < 1e-12,
                    "idx {}: ln_1p({}) = {} vs libm {}",
                    i, x, r, libm
                );
            }
        }
    }

    #[test]
    fn vtc_encode_cross_tier_identical_and_close_to_libm(
        px in proptest::collection::vec(
            prop_oneof![
                6 => -0.2..1.2_f64,
                1 => Just(0.0_f64),
                1 => Just(1.0_f64),
                1 => Just(-0.0_f64),
            ],
            1..23,
        ),
        min_pixel in prop_oneof![Just(1e-3_f64), Just(1e-6_f64)],
    ) {
        let mut reference = vec![0.0; px.len()];
        ta_simd::vtc_encode_rows_in(SimdTier::Scalar, &px, min_pixel, &mut reference);
        for &tier in &tiers() {
            let mut got = vec![0.0; px.len()];
            ta_simd::vtc_encode_rows_in(tier, &px, min_pixel, &mut got);
            prop_assert_eq!(bits(&got), bits(&reference), "tier {}", tier);
        }
        for (i, (&r, &p)) in reference.iter().zip(&px).enumerate() {
            let libm = -p.clamp(min_pixel, 1.0).ln();
            prop_assert!(
                (r - libm).abs() < 1e-12 * libm.abs().max(1.0),
                "idx {}: encode({}) = {} vs libm {}",
                i, p, r, libm
            );
        }
    }
}
