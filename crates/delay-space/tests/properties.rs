//! Property-based tests of the delay-space ring invariants (paper §2).

use proptest::prelude::*;
use ta_delay_space::{ops, ring, DelayValue, SplitValue};

/// Importance-space values spanning ten orders of magnitude plus zero.
fn importance() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => 1e-6..1e4_f64,
        1 => Just(0.0),
        1 => 1e-12..1e-6_f64,
    ]
}

/// Signed importance-space values.
fn signed() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0..100.0_f64,
        1 => Just(0.0),
    ]
}

/// Raw delays (bounded so exp() does not fully underflow in comparisons).
fn delay() -> impl Strategy<Value = f64> {
    -50.0..50.0_f64
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(x in importance()) {
        let v = DelayValue::encode(x).unwrap();
        let back = v.decode();
        prop_assert!((back - x).abs() <= 1e-9 * (1.0 + x.abs()));
    }

    #[test]
    fn multiplication_is_delay_addition(a in importance(), b in importance()) {
        prop_assert!(ring::mul_homomorphic(a, b, ring::DEFAULT_TOLERANCE));
    }

    #[test]
    fn addition_is_nlse(a in importance(), b in importance()) {
        prop_assert!(ring::add_homomorphic(a, b, ring::DEFAULT_TOLERANCE));
    }

    #[test]
    fn subtraction_is_nlde(a in importance(), b in importance()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert!(ring::sub_homomorphic(hi, lo, 1e-6));
    }

    #[test]
    fn nlse_associative(x in delay(), y in delay(), z in delay()) {
        prop_assert!(ring::nlse_associative(x, y, z, 1e-9));
    }

    #[test]
    fn nlse_commutative(x in delay(), y in delay()) {
        prop_assert!(ring::nlse_commutative(x, y));
    }

    #[test]
    fn nlse_shift_invariant(x in delay(), y in delay(), d in delay()) {
        prop_assert!(ring::nlse_shift_invariant(x, y, d, 1e-9));
    }

    #[test]
    fn nlse_bounded_by_min_and_min_minus_ln2(x in delay(), y in delay()) {
        let (dx, dy) = (DelayValue::from_delay(x), DelayValue::from_delay(y));
        let s = ops::nlse(dx, dy).delay();
        let m = x.min(y);
        prop_assert!(s <= m + 1e-12);
        prop_assert!(s >= m - 2f64.ln() - 1e-12);
    }

    #[test]
    fn nlse_monotone_in_each_argument(x in delay(), y in delay(), bump in 0.0..5.0f64) {
        let base = ops::nlse(DelayValue::from_delay(x), DelayValue::from_delay(y));
        let later = ops::nlse(DelayValue::from_delay(x + bump), DelayValue::from_delay(y));
        prop_assert!(later >= base);
    }

    #[test]
    fn nlse_many_agrees_with_fold(xs in prop::collection::vec(delay(), 1..8)) {
        let vals: Vec<_> = xs.iter().map(|&d| DelayValue::from_delay(d)).collect();
        let flat = ops::nlse_many(&vals);
        let folded = vals[1..]
            .iter()
            .fold(vals[0], |acc, &v| ops::nlse(acc, v));
        prop_assert!((flat.delay() - folded.delay()).abs() < 1e-9);
    }

    #[test]
    fn split_ring_addition(a in signed(), b in signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();
        let got = (sa + sb).normalize().decode_signed();
        prop_assert!((got - (a + b)).abs() <= 1e-9 * (1.0 + (a + b).abs()));
    }

    #[test]
    fn split_ring_multiplication(a in signed(), b in signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();
        let got = (sa * sb).normalize().decode_signed();
        prop_assert!((got - a * b).abs() <= 1e-9 * (1.0 + (a * b).abs()));
    }

    #[test]
    fn split_ring_distributive(a in signed(), b in signed(), c in signed()) {
        prop_assert!(ring::split_distributive(a, b, c, 1e-8));
    }

    #[test]
    fn split_subtraction_roundtrip(a in signed(), b in signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();
        let got = (sa - sb).normalize().decode_signed();
        prop_assert!((got - (a - b)).abs() <= 1e-9 * (1.0 + (a - b).abs()));
    }

    #[test]
    fn normalization_idempotent(a in signed(), b in signed()) {
        let d = SplitValue::encode_signed(a).unwrap() + SplitValue::encode_signed(b).unwrap();
        let once = d.normalize();
        let twice = once.normalize();
        prop_assert!(once.is_normalized());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn inhibit_matches_spec(d in delay(), i in delay()) {
        let data = DelayValue::from_delay(d);
        let inhib = DelayValue::from_delay(i);
        let out = data.inhibited_by(inhib);
        if d < i {
            prop_assert_eq!(out, data);
        } else {
            prop_assert!(out.is_never());
        }
    }
}
