//! Property-based tests of the delay-space ring invariants (paper §2).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use ta_delay_space::{ops, ring, DelayValue, SplitValue};

/// Importance-space values spanning ten orders of magnitude plus zero.
fn importance() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => 1e-6..1e4_f64,
        1 => Just(0.0),
        1 => 1e-12..1e-6_f64,
    ]
}

/// Signed importance-space values.
fn signed() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0..100.0_f64,
        1 => Just(0.0),
    ]
}

/// Raw delays (bounded so exp() does not fully underflow in comparisons).
fn delay() -> impl Strategy<Value = f64> {
    -50.0..50.0_f64
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(x in importance()) {
        let v = DelayValue::encode(x).unwrap();
        let back = v.decode();
        prop_assert!((back - x).abs() <= 1e-9 * (1.0 + x.abs()));
    }

    #[test]
    fn multiplication_is_delay_addition(a in importance(), b in importance()) {
        prop_assert!(ring::mul_homomorphic(a, b, ring::DEFAULT_TOLERANCE));
    }

    #[test]
    fn addition_is_nlse(a in importance(), b in importance()) {
        prop_assert!(ring::add_homomorphic(a, b, ring::DEFAULT_TOLERANCE));
    }

    #[test]
    fn subtraction_is_nlde(a in importance(), b in importance()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert!(ring::sub_homomorphic(hi, lo, 1e-6));
    }

    #[test]
    fn nlse_associative(x in delay(), y in delay(), z in delay()) {
        prop_assert!(ring::nlse_associative(x, y, z, 1e-9));
    }

    #[test]
    fn nlse_commutative(x in delay(), y in delay()) {
        prop_assert!(ring::nlse_commutative(x, y));
    }

    #[test]
    fn nlse_shift_invariant(x in delay(), y in delay(), d in delay()) {
        prop_assert!(ring::nlse_shift_invariant(x, y, d, 1e-9));
    }

    #[test]
    fn nlse_bounded_by_min_and_min_minus_ln2(x in delay(), y in delay()) {
        let (dx, dy) = (DelayValue::from_delay(x), DelayValue::from_delay(y));
        let s = ops::nlse(dx, dy).delay();
        let m = x.min(y);
        prop_assert!(s <= m + 1e-12);
        prop_assert!(s >= m - 2f64.ln() - 1e-12);
    }

    #[test]
    fn nlse_monotone_in_each_argument(x in delay(), y in delay(), bump in 0.0..5.0f64) {
        let base = ops::nlse(DelayValue::from_delay(x), DelayValue::from_delay(y));
        let later = ops::nlse(DelayValue::from_delay(x + bump), DelayValue::from_delay(y));
        prop_assert!(later >= base);
    }

    #[test]
    fn nlse_many_agrees_with_fold(xs in prop::collection::vec(delay(), 1..8)) {
        let vals: Vec<_> = xs.iter().map(|&d| DelayValue::from_delay(d)).collect();
        let flat = ops::nlse_many(&vals);
        let folded = vals[1..]
            .iter()
            .fold(vals[0], |acc, &v| ops::nlse(acc, v));
        prop_assert!((flat.delay() - folded.delay()).abs() < 1e-9);
    }

    #[test]
    fn split_ring_addition(a in signed(), b in signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();
        let got = (sa + sb).normalize().decode_signed();
        prop_assert!((got - (a + b)).abs() <= 1e-9 * (1.0 + (a + b).abs()));
    }

    #[test]
    fn split_ring_multiplication(a in signed(), b in signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();
        let got = (sa * sb).normalize().decode_signed();
        prop_assert!((got - a * b).abs() <= 1e-9 * (1.0 + (a * b).abs()));
    }

    #[test]
    fn split_ring_distributive(a in signed(), b in signed(), c in signed()) {
        prop_assert!(ring::split_distributive(a, b, c, 1e-8));
    }

    #[test]
    fn split_subtraction_roundtrip(a in signed(), b in signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();
        let got = (sa - sb).normalize().decode_signed();
        prop_assert!((got - (a - b)).abs() <= 1e-9 * (1.0 + (a - b).abs()));
    }

    #[test]
    fn normalization_idempotent(a in signed(), b in signed()) {
        let d = SplitValue::encode_signed(a).unwrap() + SplitValue::encode_signed(b).unwrap();
        let once = d.normalize();
        let twice = once.normalize();
        prop_assert!(once.is_normalized());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn inhibit_matches_spec(d in delay(), i in delay()) {
        let data = DelayValue::from_delay(d);
        let inhib = DelayValue::from_delay(i);
        let out = data.inhibited_by(inhib);
        if d < i {
            prop_assert_eq!(out, data);
        } else {
            prop_assert!(out.is_never());
        }
    }
}

/// Edge-of-representation importance values: signed zeros, infinities,
/// subnormals, extreme magnitudes. Everything a hostile frame or an
/// upstream bug could push through the encoder.
fn edge_signed() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE), // smallest normal
        Just(-f64::MIN_POSITIVE),
        Just(5e-324), // smallest subnormal
        Just(-5e-324),
        Just(f64::MIN_POSITIVE / 8.0), // mid-range subnormal
        Just(f64::MAX),
        Just(-f64::MAX),
        1e-320..1e-300_f64,
        -1.0..1.0_f64,
    ]
}

/// No rail of `v` may hold a NaN delay.
fn rails_not_nan(v: SplitValue) -> bool {
    !v.pos().delay().is_nan() && !v.neg().delay().is_nan()
}

proptest! {
    // The satellite guarantee: ±0.0, infinities and subnormals survive
    // encode → nLSE/nLDE → renormalise without a panic and without
    // manufacturing NaN. (Infinite importance legitimately decodes back
    // to ±∞; what must never appear is NaN.)

    #[test]
    fn edge_values_encode_without_panic_or_nan(x in edge_signed()) {
        let v = SplitValue::encode_signed(x).unwrap();
        prop_assert!(rails_not_nan(v));
        prop_assert!(!v.decode_signed().is_nan());
        // Signed zeros land exactly on the canonical zero.
        if x == 0.0 {
            prop_assert!(v.pos().is_never() && v.neg().is_never());
            prop_assert_eq!(v.decode_signed(), 0.0);
        }
    }

    #[test]
    fn edge_values_survive_nlse_nlde_renormalise(a in edge_signed(), b in edge_signed()) {
        let sa = SplitValue::encode_signed(a).unwrap();
        let sb = SplitValue::encode_signed(b).unwrap();

        // Rail-level exact ops: nLSE on every rail pairing, nLDE on the
        // ordered pairings it is defined for.
        for (x, y) in [
            (sa.pos(), sb.pos()),
            (sa.pos(), sb.neg()),
            (sa.neg(), sb.pos()),
            (sa.neg(), sb.neg()),
        ] {
            prop_assert!(!ops::nlse(x, y).delay().is_nan());
            prop_assert!(!ops::nlse_many(&[x, y, x]).delay().is_nan());
            if let Ok(d) = ops::nlde(x, y) {
                prop_assert!(!d.delay().is_nan());
            }
        }

        // Split-level pipeline: add, multiply, renormalise.
        let sum = sa.add_denorm(sb);
        prop_assert!(rails_not_nan(sum));
        let prod = sa.mul_denorm(sb);
        prop_assert!(rails_not_nan(prod));
        for v in [sum, prod] {
            let norm = v.normalize();
            prop_assert!(norm.is_normalized());
            prop_assert!(rails_not_nan(norm));
            prop_assert!(!norm.decode_signed().is_nan());
        }
    }

    #[test]
    fn infinite_importance_absorbs_in_nlse(x in edge_signed()) {
        // ∞ + anything = ∞ on a single rail (the guard that keeps
        // −∞ delays from turning into NaN spreads).
        let inf = DelayValue::encode(f64::INFINITY).unwrap();
        let v = SplitValue::encode_signed(x).unwrap();
        prop_assert_eq!(ops::nlse(inf, v.pos()), inf);
        prop_assert_eq!(ops::nlse(v.pos(), inf), inf);
        prop_assert_eq!(ops::nlse_many(&[inf, v.pos(), inf]), inf);
    }

    #[test]
    fn subnormals_roundtrip_within_float_error(x in prop_oneof![Just(5e-324), Just(f64::MIN_POSITIVE), 1e-320..1e-300_f64]) {
        // Subnormal importance encodes to a large finite delay and decodes
        // back to the same magnitude bucket: never 0-collapsed to NaN,
        // never a panic.
        let v = DelayValue::encode(x).unwrap();
        prop_assert!(v.delay().is_finite());
        let back = v.decode();
        prop_assert!(back > 0.0 && back.is_finite());
        // ln/exp of subnormals is lossy, but stays within a factor of 2.
        prop_assert!(back / x > 0.5 && back / x < 2.0);
    }
}

/// The plain unskipped fold `nlse_many` used before its underflow and
/// min-dominated shortcuts — the bit-exactness oracle for them.
fn nlse_many_unskipped(values: &[DelayValue]) -> DelayValue {
    let Some(&m) = values.iter().min() else {
        return DelayValue::ZERO;
    };
    if m.is_never() {
        return DelayValue::ZERO;
    }
    if m.delay() == f64::NEG_INFINITY {
        return m;
    }
    let mut acc = 0.0_f64;
    for &v in values {
        if !v.is_never() {
            acc += (m.delay() - v.delay()).exp();
        }
    }
    DelayValue::from_delay(m.delay() - acc.ln())
}

/// Operands that exercise every `nlse_many` shortcut: ordinary delays,
/// delays so late their term underflows against any ordinary pivot
/// (spread > 745), and never-values.
fn shortcut_value() -> impl Strategy<Value = DelayValue> {
    prop_oneof![
        4 => (-50.0..50.0_f64).prop_map(DelayValue::from_delay),
        2 => (700.0..900.0_f64).prop_map(DelayValue::from_delay),
        1 => Just(DelayValue::ZERO),
    ]
}

proptest! {
    #[test]
    fn nlse_many_shortcuts_are_bit_identical(
        vals in proptest::collection::vec(shortcut_value(), 1..12)
    ) {
        let fast = ops::nlse_many(&vals);
        let slow = nlse_many_unskipped(&vals);
        prop_assert_eq!(fast.delay().to_bits(), slow.delay().to_bits());
        prop_assert_eq!(fast.is_never(), slow.is_never());
    }
}

/// Operands for the batch-vs-scalar parity tests: everything
/// `shortcut_value` covers plus signed zeros, subnormal-delay values, and
/// spreads landing within ±1 ulp of the `EXP_UNDERFLOW` cutoff (−745.2)
/// relative to a zero pivot, where skip-vs-accumulate must not flip
/// between the scalar and vectorized paths.
fn batch_value() -> impl Strategy<Value = DelayValue> {
    let cutoff = 745.2_f64;
    prop_oneof![
        6 => (-50.0..800.0_f64).prop_map(DelayValue::from_delay),
        1 => Just(DelayValue::ZERO),
        1 => Just(DelayValue::from_delay(0.0)),
        1 => Just(DelayValue::from_delay(-0.0)),
        1 => Just(DelayValue::from_delay(f64::MIN_POSITIVE / 8.0)),
        1 => Just(DelayValue::from_delay(cutoff)),
        1 => Just(DelayValue::from_delay(f64::from_bits(cutoff.to_bits() + 1))),
        1 => Just(DelayValue::from_delay(f64::from_bits(cutoff.to_bits() - 1))),
    ]
}

proptest! {
    #[test]
    fn nlse_many_batch_identical_is_bit_identical(
        vals in proptest::collection::vec(batch_value(), 0..16)
    ) {
        let scalar = ops::nlse_many(&vals);
        let batch = ops::nlse_many_batch(&vals, false);
        prop_assert_eq!(scalar.delay().to_bits(), batch.delay().to_bits());
    }

    #[test]
    fn nlse_many_batch_tolerant_stays_close(
        vals in proptest::collection::vec(batch_value(), 1..16)
    ) {
        let scalar = ops::nlse_many(&vals);
        let batch = ops::nlse_many_batch(&vals, true);
        if scalar.is_never() {
            prop_assert!(batch.is_never());
        } else if scalar.delay().abs() > 1e-300 && scalar.delay().is_finite() {
            let rel = ((batch.delay() - scalar.delay()) / scalar.delay()).abs();
            prop_assert!(rel < 1e-11, "batch {} vs scalar {}", batch.delay(), scalar.delay());
        } else {
            prop_assert!((batch.delay() - scalar.delay()).abs() < 1e-11);
        }
    }

    #[test]
    fn nlde_rows_identical_matches_elementwise(
        pairs in proptest::collection::vec((batch_value(), batch_value()), 0..16)
    ) {
        // Order each pair so most rows are valid, but keep the raw order
        // for a fraction to exercise the error path.
        let xs: Vec<DelayValue> = pairs.iter().map(|&(a, b)| a.min(b)).collect();
        let ys: Vec<DelayValue> = pairs.iter().map(|&(a, b)| a.max(b)).collect();
        let want: Vec<DelayValue> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| ops::nlde(x, y).unwrap())
            .collect();
        let got = ops::nlde_rows(&xs, &ys, false).unwrap();
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.delay().to_bits(), w.delay().to_bits());
        }

        // The unsorted raw order must error exactly when elementwise does.
        let raw_x: Vec<DelayValue> = pairs.iter().map(|p| p.0).collect();
        let raw_y: Vec<DelayValue> = pairs.iter().map(|p| p.1).collect();
        let scalar_err = raw_x
            .iter()
            .zip(&raw_y)
            .any(|(&x, &y)| ops::nlde(x, y).is_err());
        let batch = ops::nlde_rows(&raw_x, &raw_y, false);
        prop_assert_eq!(batch.is_err(), scalar_err);
    }

    #[test]
    fn nlde_rows_tolerant_stays_close(
        pairs in proptest::collection::vec((batch_value(), batch_value()), 1..16)
    ) {
        let xs: Vec<DelayValue> = pairs.iter().map(|&(a, b)| a.min(b)).collect();
        let ys: Vec<DelayValue> = pairs.iter().map(|&(a, b)| a.max(b)).collect();
        let got = ops::nlde_rows(&xs, &ys, true).unwrap();
        for ((&x, &y), g) in xs.iter().zip(&ys).zip(&got) {
            let want = ops::nlde(x, y).unwrap();
            if want.is_never() {
                prop_assert!(g.is_never());
            } else if want.delay().abs() > 1e-300 && want.delay().is_finite() {
                let rel = ((g.delay() - want.delay()) / want.delay()).abs();
                prop_assert!(rel < 1e-11, "batch {} vs scalar {}", g.delay(), want.delay());
            } else {
                prop_assert!((g.delay() - want.delay()).abs() < 1e-11);
            }
        }
    }
}
