//! Negative-log *delay space*: the temporal number encoding at the heart of
//! "Energy Efficient Convolutions with Temporal Arithmetic" (ASPLOS 2024).
//!
//! A non-negative real `x` in ordinary *importance space* is encoded as a
//! rising edge occurring after a delay
//!
//! ```text
//! x' = -ln(x)
//! ```
//!
//! Under this mapping (Eqs. 1–5 of the paper):
//!
//! * multiplication becomes **addition of delays** (`x·y ↦ x' + y'`),
//! * addition becomes the **negative log-sum-exp** `nLSE(x', y') =
//!   -ln(e^-x' + e^-y')`,
//! * subtraction becomes the **negative log-difference-exp** `nLDE(x', y') =
//!   -ln(e^-x' - e^-y')`.
//!
//! Larger values map to *shorter* delays ("important values early"), zero
//! maps to an infinite delay (an edge that never fires), and the encoding is
//! a bijective ring homomorphism between `([0, ∞), +, ·)` and delay space.
//!
//! Negative numbers are handled by the dual-rail [`SplitValue`]
//! representation `⟨x_pos, x_neg⟩` of §2.2 of the paper.
//!
//! # Quick example
//!
//! ```
//! use ta_delay_space::{DelayValue, ops};
//!
//! let a = DelayValue::encode(0.25)?;
//! let b = DelayValue::encode(0.5)?;
//!
//! // Multiplication is addition of delays.
//! let prod = a + b;
//! assert!((prod.decode() - 0.125).abs() < 1e-12);
//!
//! // Addition is nLSE.
//! let sum = ops::nlse(a, b);
//! assert!((sum.decode() - 0.75).abs() < 1e-12);
//! # Ok::<(), ta_delay_space::EncodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod ops;
pub mod ring;
mod split;
mod value;

pub use error::{EncodeError, NormalizeError};
pub use split::SplitValue;
pub use value::DelayValue;
