//! Dual-rail split representation for signed values (§2.2 of the paper).

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::{ops, DelayValue, EncodeError};

/// A signed value represented as a non-negative pair `⟨x_pos, x_neg⟩`.
///
/// If the value is positive, `pos` holds it and `neg` is zero; if negative,
/// `neg` holds its absolute value; zero is `⟨0, 0⟩`. Both rails live in
/// delay space, so zero rails are infinite delays — a rail that never fires
/// is simply an absent wire, which is why the split representation costs no
/// extra delay elements in hardware (§4.4).
///
/// Arithmetic keeps intermediate results *denormalised* (both rails may be
/// non-zero); [`SplitValue::normalize`] applies the nLDE renormalisation
/// once at the end of a computation, exactly as the architecture does once
/// per convolution output.
///
/// ```
/// use ta_delay_space::SplitValue;
/// let a = SplitValue::encode_signed(0.5)?;
/// let b = SplitValue::encode_signed(-0.75)?;
/// let sum = (a + b).normalize();
/// assert!((sum.decode_signed() + 0.25).abs() < 1e-12);
/// # Ok::<(), ta_delay_space::EncodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitValue {
    pos: DelayValue,
    neg: DelayValue,
}

impl SplitValue {
    /// The signed zero `⟨0, 0⟩`.
    pub const ZERO: SplitValue = SplitValue {
        pos: DelayValue::ZERO,
        neg: DelayValue::ZERO,
    };

    /// Signed `1`.
    pub const ONE: SplitValue = SplitValue {
        pos: DelayValue::ONE,
        neg: DelayValue::ZERO,
    };

    /// Encodes any real (positive, negative or zero) into the split form.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::NotANumber`] for NaN.
    pub fn encode_signed(x: f64) -> Result<Self, EncodeError> {
        if x.is_nan() {
            return Err(EncodeError::NotANumber);
        }
        if x >= 0.0 {
            Ok(SplitValue {
                pos: DelayValue::encode(x)?,
                neg: DelayValue::ZERO,
            })
        } else {
            Ok(SplitValue {
                pos: DelayValue::ZERO,
                neg: DelayValue::encode(-x)?,
            })
        }
    }

    /// Builds a split value from raw rails (which may be denormalised).
    pub fn from_rails(pos: DelayValue, neg: DelayValue) -> Self {
        SplitValue { pos, neg }
    }

    /// The positive rail.
    pub fn pos(self) -> DelayValue {
        self.pos
    }

    /// The negative rail.
    // The name mirrors the paper's ⟨x_pos, x_neg⟩ notation; SplitValue also
    // implements std::ops::Neg (rail swap), which is a different operation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> DelayValue {
        self.neg
    }

    /// Decodes to a signed importance-space value (`pos - neg`).
    pub fn decode_signed(self) -> f64 {
        self.pos.decode() - self.neg.decode()
    }

    /// Whether the representation is normalised (at least one rail zero).
    pub fn is_normalized(self) -> bool {
        self.pos.is_never() || self.neg.is_never()
    }

    /// Renormalises so that at most one rail is non-zero, using exact nLDE —
    /// the delay-space subtraction unit of §4.4.
    ///
    /// ```
    /// use ta_delay_space::{DelayValue, SplitValue};
    /// let denorm = SplitValue::from_rails(
    ///     DelayValue::encode(0.9)?,
    ///     DelayValue::encode(0.4)?,
    /// );
    /// let norm = denorm.normalize();
    /// assert!(norm.is_normalized());
    /// assert!((norm.decode_signed() - 0.5).abs() < 1e-12);
    /// # Ok::<(), ta_delay_space::EncodeError>(())
    /// ```
    pub fn normalize(self) -> Self {
        if self.pos <= self.neg {
            // pos dominates (earlier edge = larger importance value).
            let diff = ops::nlde(self.pos, self.neg).unwrap_or(DelayValue::ZERO);
            SplitValue {
                pos: diff,
                neg: DelayValue::ZERO,
            }
        } else {
            let diff = ops::nlde(self.neg, self.pos).unwrap_or(DelayValue::ZERO);
            SplitValue {
                pos: DelayValue::ZERO,
                neg: diff,
            }
        }
    }

    /// Signed addition without renormalisation: rails add pairwise via nLSE.
    pub fn add_denorm(self, rhs: SplitValue) -> SplitValue {
        SplitValue {
            pos: ops::nlse(self.pos, rhs.pos),
            neg: ops::nlse(self.neg, rhs.neg),
        }
    }

    /// Signed multiplication: the four rail products routed by sign
    /// (`pos·pos + neg·neg → pos`, cross terms → `neg`).
    pub fn mul_denorm(self, rhs: SplitValue) -> SplitValue {
        SplitValue {
            pos: ops::nlse(self.pos + rhs.pos, self.neg + rhs.neg),
            neg: ops::nlse(self.pos + rhs.neg, self.neg + rhs.pos),
        }
    }
}

impl From<DelayValue> for SplitValue {
    /// Lifts a non-negative delay-space value onto the positive rail.
    fn from(v: DelayValue) -> Self {
        SplitValue {
            pos: v,
            neg: DelayValue::ZERO,
        }
    }
}

impl Add for SplitValue {
    type Output = SplitValue;

    /// Denormalised signed addition (call [`SplitValue::normalize`] at the
    /// end of the computation, as the hardware does).
    fn add(self, rhs: SplitValue) -> SplitValue {
        self.add_denorm(rhs)
    }
}

impl Sub for SplitValue {
    type Output = SplitValue;

    /// Subtraction is addition of the negation: rails swap (§2.2).
    fn sub(self, rhs: SplitValue) -> SplitValue {
        self.add_denorm(-rhs)
    }
}

impl Mul for SplitValue {
    type Output = SplitValue;

    fn mul(self, rhs: SplitValue) -> SplitValue {
        self.mul_denorm(rhs)
    }
}

impl Neg for SplitValue {
    type Output = SplitValue;

    fn neg(self) -> SplitValue {
        SplitValue {
            pos: self.neg,
            neg: self.pos,
        }
    }
}

impl fmt::Display for SplitValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨+{}, -{}⟩", self.pos.decode(), self.neg.decode())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn enc(x: f64) -> SplitValue {
        SplitValue::encode_signed(x).unwrap()
    }

    #[test]
    fn encode_routes_by_sign() {
        let p = enc(0.5);
        assert!((p.pos().decode() - 0.5).abs() < 1e-12);
        assert!(p.neg().is_never());

        let n = enc(-0.5);
        assert!(n.pos().is_never());
        assert!((n.neg().decode() - 0.5).abs() < 1e-12);

        let z = enc(0.0);
        assert!(z.pos().is_never() && z.neg().is_never());
        assert_eq!(z, SplitValue::ZERO);
    }

    #[test]
    fn decode_signed_roundtrip() {
        for &x in &[-3.0, -0.25, 0.0, 0.125, 7.5] {
            assert!((enc(x).decode_signed() - x).abs() < 1e-12);
        }
    }

    #[test]
    fn signed_addition() {
        let s = (enc(0.5) + enc(-0.2)).normalize();
        assert!(s.is_normalized());
        assert!((s.decode_signed() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn signed_subtraction_flips_to_negative() {
        let s = (enc(0.2) - enc(0.5)).normalize();
        assert!((s.decode_signed() + 0.3).abs() < 1e-12);
        assert!(s.pos().is_never());
    }

    #[test]
    fn signed_multiplication_sign_table() {
        for &(a, b) in &[(0.5, 0.5), (-0.5, 0.5), (0.5, -0.5), (-0.5, -0.5)] {
            let p = (enc(a) * enc(b)).normalize();
            assert!(
                (p.decode_signed() - a * b).abs() < 1e-12,
                "{a}*{b} gave {}",
                p.decode_signed()
            );
        }
    }

    #[test]
    fn zero_annihilates() {
        let v = enc(-0.8) * SplitValue::ZERO;
        assert!((v.normalize().decode_signed()).abs() < 1e-12);
    }

    #[test]
    fn neg_is_involution() {
        let v = enc(0.7);
        assert_eq!(-(-v), v);
    }

    #[test]
    fn denormalized_dot_product_normalizes_once() {
        // Emulates a convolution: accumulate many signed products
        // denormalised, renormalise once (as §2.2 prescribes).
        let xs = [0.3, 0.8, 0.1, 0.9];
        let ws = [1.0, -2.0, 0.0, 0.5];
        let mut acc = SplitValue::ZERO;
        for (&x, &w) in xs.iter().zip(&ws) {
            acc = acc + enc(x) * enc(w);
        }
        let expected: f64 = xs.iter().zip(&ws).map(|(x, w)| x * w).sum();
        let got = acc.normalize();
        assert!(got.is_normalized());
        assert!((got.decode_signed() - expected).abs() < 1e-12);
    }

    #[test]
    fn normalize_equal_rails_is_zero() {
        let d = SplitValue::from_rails(
            DelayValue::encode(0.4).unwrap(),
            DelayValue::encode(0.4).unwrap(),
        );
        let n = d.normalize();
        assert_eq!(n, SplitValue::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SplitValue::ZERO).is_empty());
    }
}
