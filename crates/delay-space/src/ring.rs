//! The ring-homomorphism view of delay space.
//!
//! §2 of the paper asks for "a bijective ring homomorphism of the reals":
//! operations performed directly on encoded values must mirror the
//! importance-space operations. This module packages that contract as
//! checkable predicates, used by the property-based test-suite and exposed
//! so downstream code (e.g. the architectural simulator's self-checks) can
//! assert it on live data.

use crate::{ops, DelayValue, SplitValue};

/// Default tolerance (relative where meaningful) for homomorphism checks.
///
/// Exact nLSE/nLDE are stable to ~1e-12 relative error; the looser default
/// absorbs decode/encode rounding at extreme magnitudes.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Checks `encode(a·b) == encode(a) + encode(b)` within `tol` (absolute, in
/// importance space).
pub fn mul_homomorphic(a: f64, b: f64, tol: f64) -> bool {
    let (Ok(ea), Ok(eb)) = (DelayValue::encode(a), DelayValue::encode(b)) else {
        return false;
    };
    ((ea + eb).decode() - a * b).abs() <= tol * (1.0 + (a * b).abs())
}

/// Checks `encode(a+b) == nLSE(encode(a), encode(b))` within `tol`.
pub fn add_homomorphic(a: f64, b: f64, tol: f64) -> bool {
    let (Ok(ea), Ok(eb)) = (DelayValue::encode(a), DelayValue::encode(b)) else {
        return false;
    };
    (ops::nlse(ea, eb).decode() - (a + b)).abs() <= tol * (1.0 + (a + b).abs())
}

/// Checks `encode(a-b) == nLDE(encode(a), encode(b))` within `tol`
/// (requires `a >= b >= 0`).
pub fn sub_homomorphic(a: f64, b: f64, tol: f64) -> bool {
    let (Ok(ea), Ok(eb)) = (DelayValue::encode(a), DelayValue::encode(b)) else {
        return false;
    };
    match ops::nlde(ea, eb) {
        Ok(d) => (d.decode() - (a - b)).abs() <= tol * (1.0 + (a - b).abs()),
        Err(_) => a < b,
    }
}

/// Checks associativity of nLSE on raw delays within `tol` (in delay units).
pub fn nlse_associative(x: f64, y: f64, z: f64, tol: f64) -> bool {
    let (x, y, z) = (
        DelayValue::from_delay(x),
        DelayValue::from_delay(y),
        DelayValue::from_delay(z),
    );
    let lhs = ops::nlse(ops::nlse(x, y), z);
    let rhs = ops::nlse(x, ops::nlse(y, z));
    (lhs.delay() - rhs.delay()).abs() <= tol
}

/// Checks commutativity of nLSE (exact — the implementation sorts operands).
pub fn nlse_commutative(x: f64, y: f64) -> bool {
    let (x, y) = (DelayValue::from_delay(x), DelayValue::from_delay(y));
    ops::nlse(x, y) == ops::nlse(y, x)
}

/// Checks the shift-distributivity `nLSE(a+δ, b+δ) = nLSE(a,b)+δ` within
/// `tol` (in delay units) — the identity the recurrence architecture of §3
/// relies on.
pub fn nlse_shift_invariant(x: f64, y: f64, delta: f64, tol: f64) -> bool {
    let (x, y) = (DelayValue::from_delay(x), DelayValue::from_delay(y));
    let lhs = ops::nlse(x.delayed(delta), y.delayed(delta));
    let rhs = ops::nlse(x, y).delayed(delta);
    (lhs.delay() - rhs.delay()).abs() <= tol
}

/// Checks that the signed [`SplitValue`] ring mirrors real arithmetic:
/// `(a+b)·c == a·c + b·c` after a single final renormalisation.
pub fn split_distributive(a: f64, b: f64, c: f64, tol: f64) -> bool {
    let (Ok(sa), Ok(sb), Ok(sc)) = (
        SplitValue::encode_signed(a),
        SplitValue::encode_signed(b),
        SplitValue::encode_signed(c),
    ) else {
        return false;
    };
    let lhs = ((sa + sb) * sc).normalize().decode_signed();
    let rhs = (sa * sc + sb * sc).normalize().decode_signed();
    let expected = (a + b) * c;
    (lhs - expected).abs() <= tol * (1.0 + expected.abs())
        && (rhs - expected).abs() <= tol * (1.0 + expected.abs())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn spot_checks() {
        assert!(mul_homomorphic(0.25, 0.5, DEFAULT_TOLERANCE));
        assert!(add_homomorphic(0.25, 0.5, DEFAULT_TOLERANCE));
        assert!(sub_homomorphic(0.5, 0.25, DEFAULT_TOLERANCE));
        assert!(nlse_associative(0.1, -0.7, 2.0, 1e-10));
        assert!(nlse_commutative(1.0, -1.0));
        assert!(nlse_shift_invariant(0.3, 0.9, -4.0, 1e-10));
        assert!(split_distributive(0.5, -0.25, 2.0, DEFAULT_TOLERANCE));
    }

    #[test]
    fn sub_homomorphic_rejects_wrong_order_gracefully() {
        // a < b: nlde errors, and the predicate accepts that as consistent.
        assert!(sub_homomorphic(0.25, 0.5, DEFAULT_TOLERANCE));
    }
}
