//! Exact delay-space arithmetic: nLSE, nLDE and their n-ary forms.
//!
//! These are the *mathematically exact* operations of Eqs. 4–5 of the paper,
//! computed in numerically stable form. Hardware approximates them with
//! min-of-max / min-of-inhibit networks (see the `ta-approx` crate); the
//! exact versions are used to verify the architectural simulator against
//! software convolution (§5.1) and to measure approximation error.

use crate::{DelayValue, NormalizeError};

/// Exact negative log-sum-exp: delay-space **addition** (Eq. 4).
///
/// `nLSE(x', y') = -ln(e^-x' + e^-y')`, evaluated as
/// `m - ln(1 + e^-(M-m))` with `m = min`, `M = max`, which is stable for
/// any spread of operands and handles infinite delays exactly.
///
/// ```
/// use ta_delay_space::{DelayValue, ops};
/// let a = DelayValue::encode(0.3)?;
/// let b = DelayValue::encode(0.4)?;
/// assert!((ops::nlse(a, b).decode() - 0.7).abs() < 1e-12);
/// # Ok::<(), ta_delay_space::EncodeError>(())
/// ```
pub fn nlse(x: DelayValue, y: DelayValue) -> DelayValue {
    let (m, big) = if x <= y { (x, y) } else { (y, x) };
    if m.is_never() {
        // 0 + 0 = 0.
        return DelayValue::ZERO;
    }
    if big.is_never() {
        // x + 0 = x.
        return m;
    }
    if m.delay() == f64::NEG_INFINITY {
        // Importance-space ∞ absorbs any addend; without this guard the
        // spread `big − m` is NaN when both operands are −∞.
        return m;
    }
    let d = big.delay() - m.delay();
    DelayValue::from_delay(m.delay() - (-d).exp().ln_1p())
}

/// Exact negative log-difference-exp: delay-space **subtraction** (Eq. 5).
///
/// `nLDE(x', y') = -ln(e^-x' - e^-y')`, defined only when `x` encodes the
/// strictly larger importance value (i.e. `x' < y'`). Evaluated stably as
/// `x' - ln(1 - e^-(y'-x'))`.
///
/// Equal operands decode to importance-space `0`, which *is* representable
/// (an infinite delay), so `x' == y'` returns [`DelayValue::ZERO`] rather
/// than an error.
///
/// # Errors
///
/// Returns [`NormalizeError`] if `y` encodes a larger importance value than
/// `x` (the difference would be negative and has no delay-space image).
///
/// ```
/// use ta_delay_space::{DelayValue, ops};
/// let a = DelayValue::encode(0.75)?;
/// let b = DelayValue::encode(0.5)?;
/// let d = ops::nlde(a, b)?;
/// assert!((d.decode() - 0.25).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn nlde(x: DelayValue, y: DelayValue) -> Result<DelayValue, NormalizeError> {
    if x > y {
        return Err(NormalizeError {
            dominant_is_second: true,
        });
    }
    if x == y {
        return Ok(DelayValue::ZERO);
    }
    if y.is_never() {
        // x - 0 = x.
        return Ok(x);
    }
    let d = y.delay() - x.delay(); // > 0
    let ln_term = (-(-d).exp()).ln_1p(); // ln(1 - e^-d) < 0
    Ok(DelayValue::from_delay(x.delay() - ln_term))
}

/// Below this spread, `exp(m − v)` underflows to exactly `+0.0`
/// (`ln(2^-1075)` ≈ −745.133, pinned by a unit test at this cutoff), so
/// the term can be skipped without changing a single bit of the
/// accumulator — adding `+0.0` to a non-negative sum is the identity.
/// Deliberately below the true threshold: between ≈−744.44 and the
/// threshold `exp` still returns subnormals, which *do* perturb the sum.
const EXP_UNDERFLOW: f64 = -745.2;

/// n-ary exact nLSE: delay-space sum of any number of operands.
///
/// Uses a single stable pass pivoted on the earliest edge rather than a
/// fold, so the result is independent of operand order to machine
/// precision. The empty sum is importance-space `0`
/// ([`DelayValue::ZERO`]).
///
/// Terms more than `EXP_UNDERFLOW` units behind the pivot are skipped
/// (their `exp` is exactly `+0.0`), and a sum the pivot fully dominates
/// returns the pivot without touching `ln` at all — both shortcuts are
/// bit-identical to the plain fold, pinned by a property test.
///
/// ```
/// use ta_delay_space::{DelayValue, ops};
/// let vals: Vec<_> = [0.1, 0.2, 0.3]
///     .iter()
///     .map(|&v| DelayValue::encode(v))
///     .collect::<Result<_, _>>()?;
/// assert!((ops::nlse_many(&vals).decode() - 0.6).abs() < 1e-12);
/// # Ok::<(), ta_delay_space::EncodeError>(())
/// ```
pub fn nlse_many(values: &[DelayValue]) -> DelayValue {
    let Some(&m) = values.iter().min() else {
        return DelayValue::ZERO;
    };
    if m.is_never() {
        return DelayValue::ZERO;
    }
    if m.delay() == f64::NEG_INFINITY {
        // Importance-space ∞ absorbs the whole sum (cf. `nlse`).
        return m;
    }
    if values.len() == 1 {
        // The pivot's own term is exp(0) = 1 and m − ln(1) = m.
        return m;
    }
    let mut acc = 0.0_f64;
    for &v in values {
        if !v.is_never() {
            let d = m.delay() - v.delay();
            if d >= EXP_UNDERFLOW {
                acc += d.exp();
            }
        }
    }
    if acc == 1.0 {
        // Min-dominated: every other term was never or underflowed, so
        // only the pivot's exp(0) survived; ln(1) = 0.
        return m;
    }
    DelayValue::from_delay(m.delay() - acc.ln())
}

/// Batch n-ary exact nLSE over raw delays, dispatched through the SIMD
/// tiers of `ta-simd`.
///
/// With `tolerant = false` this is bit-for-bit [`nlse_many`]: the pivot
/// scan vectorizes (total-order min is bit-exact in any association
/// order) while the `Σ exp` accumulation stays scalar, in slice order,
/// with libm `exp`, including the `EXP_UNDERFLOW` skip and the
/// min-domination shortcut. With `tolerant = true` the accumulation runs
/// in four fixed exp-polynomial stripes — tier-independent, but pinned
/// against [`nlse_many`] only by tolerance (see the property tests).
#[must_use]
pub fn nlse_many_batch(values: &[DelayValue], tolerant: bool) -> DelayValue {
    let delays: Vec<f64> = values.iter().map(|v| v.delay()).collect();
    DelayValue::from_delay(ta_simd::nlse_fold(&delays, EXP_UNDERFLOW, tolerant))
}

/// Batch elementwise [`nlde`] over two rows, dispatched through the SIMD
/// tiers of `ta-simd`.
///
/// With `tolerant = false` each element is bit-for-bit `nlde(xs[i],
/// ys[i])`, including the mixed comparator semantics (total-order
/// dominance check, numeric equality shortcut). With `tolerant = true`
/// the transcendentals vectorize with the polynomial lanes.
///
/// # Errors
///
/// [`NormalizeError`] if any element's second operand encodes a larger
/// importance than its first — the same condition under which [`nlde`]
/// errors elementwise.
///
/// # Panics
///
/// If `xs` and `ys` differ in length.
pub fn nlde_rows(
    xs: &[DelayValue],
    ys: &[DelayValue],
    tolerant: bool,
) -> Result<Vec<DelayValue>, NormalizeError> {
    assert_eq!(xs.len(), ys.len(), "row length mismatch");
    let xf: Vec<f64> = xs.iter().map(|v| v.delay()).collect();
    let yf: Vec<f64> = ys.iter().map(|v| v.delay()).collect();
    let mut out = vec![0.0_f64; xs.len()];
    ta_simd::nlde_rows(&xf, &yf, tolerant, &mut out).map_err(|_| NormalizeError {
        dominant_is_second: true,
    })?;
    Ok(out.into_iter().map(DelayValue::from_delay).collect())
}

/// Rescales a delay-space value by shifting its reference point.
///
/// Adding a constant delay `delta` to a value multiplies it by `e^-delta`
/// in importance space — the paper uses this to both implement weights and
/// to re-reference recurrent partial sums. Provided as a free function for
/// symmetry with [`nlse`]; equivalent to [`DelayValue::delayed`].
pub fn rescale(x: DelayValue, delta: f64) -> DelayValue {
    x.delayed(delta)
}

/// The shift-distributivity identity the recurrence architecture relies on:
/// `nLSE(a + δ, b + δ) = nLSE(a, b) + δ` (§2.1).
///
/// This helper applies nLSE in a shifted reference frame; it exists mainly
/// so tests and docs can state the property explicitly.
pub fn nlse_shifted(x: DelayValue, y: DelayValue, delta: f64) -> DelayValue {
    nlse(x.delayed(delta), y.delayed(delta))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn enc(x: f64) -> DelayValue {
        DelayValue::encode(x).unwrap()
    }

    #[test]
    fn nlse_is_addition() {
        for &(a, b) in &[(0.1, 0.2), (0.5, 0.5), (1e-6, 0.9), (3.0, 7.0)] {
            let s = nlse(enc(a), enc(b)).decode();
            assert!((s - (a + b)).abs() / (a + b) < 1e-12, "{a}+{b} gave {s}");
        }
    }

    #[test]
    fn nlse_identity_is_zero() {
        let a = enc(0.42);
        assert_eq!(nlse(a, DelayValue::ZERO), a);
        assert_eq!(nlse(DelayValue::ZERO, a), a);
        assert!(nlse(DelayValue::ZERO, DelayValue::ZERO).is_never());
    }

    #[test]
    fn nlse_commutes() {
        let a = enc(0.37);
        let b = enc(0.11);
        assert_eq!(nlse(a, b), nlse(b, a));
    }

    #[test]
    fn nlse_below_min() {
        // nLSE is bounded above by min and hits min - ln(2) at equality.
        let a = enc(0.5);
        let s = nlse(a, a);
        assert!((s.delay() - (a.delay() - 2.0_f64.ln())).abs() < 1e-12);
        let b = enc(0.1);
        assert!(nlse(a, b) <= a.min(b));
    }

    #[test]
    fn nlse_handles_huge_spread() {
        // Stable even when operands differ by hundreds of units of delay.
        let a = DelayValue::from_delay(0.0);
        let b = DelayValue::from_delay(800.0);
        let s = nlse(a, b);
        assert_eq!(s, a); // the tiny term underflows away entirely
    }

    #[test]
    fn nlde_is_subtraction() {
        for &(a, b) in &[(0.9, 0.2), (0.5, 0.4999), (2.0, 1.0)] {
            let d = nlde(enc(a), enc(b)).unwrap().decode();
            assert!((d - (a - b)).abs() < 1e-9, "{a}-{b} gave {d}");
        }
    }

    #[test]
    fn nlde_equal_operands_is_zero() {
        let a = enc(0.3);
        assert!(nlde(a, a).unwrap().is_never());
    }

    #[test]
    fn nlde_rejects_negative_result() {
        assert!(nlde(enc(0.2), enc(0.3)).is_err());
    }

    #[test]
    fn nlde_subtracting_zero() {
        let a = enc(0.3);
        assert_eq!(nlde(a, DelayValue::ZERO).unwrap(), a);
    }

    #[test]
    fn nlde_inverts_nlse() {
        let a = enc(0.6);
        let b = enc(0.3);
        let sum = nlse(a, b);
        let back = nlde(sum, b).unwrap();
        assert!((back.decode() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn nlse_many_matches_fold_and_is_order_free() {
        let xs = [0.03, 0.4, 0.001, 0.25, 0.11];
        let vals: Vec<_> = xs.iter().map(|&x| enc(x)).collect();
        let direct = nlse_many(&vals).decode();
        let expected: f64 = xs.iter().sum();
        assert!((direct - expected).abs() < 1e-12);

        let mut rev = vals.clone();
        rev.reverse();
        assert!((nlse_many(&rev).decode() - expected).abs() < 1e-12);
    }

    #[test]
    fn exp_underflow_cutoff_is_sound() {
        // The skip is bit-identical only if exp() at the cutoff is
        // *exactly* +0.0. Just above the true threshold (≈ −745.133)
        // exp() still returns subnormals, which must not be skipped.
        assert_eq!(EXP_UNDERFLOW.exp(), 0.0);
        assert_eq!(EXP_UNDERFLOW.exp().to_bits(), 0.0_f64.to_bits());
        assert!((-745.0_f64).exp() > 0.0, "subnormal terms still count");
    }

    #[test]
    fn nlse_many_single_element_is_identity() {
        let a = enc(0.37);
        assert_eq!(nlse_many(&[a]).delay().to_bits(), a.delay().to_bits());
    }

    #[test]
    fn nlse_many_min_dominated_returns_pivot() {
        // The far term is > 745 units behind: its exp underflows to zero
        // and the sum is exactly the pivot.
        let a = DelayValue::from_delay(0.0);
        let far = DelayValue::from_delay(800.0);
        let s = nlse_many(&[a, far, DelayValue::ZERO]);
        assert_eq!(s.delay().to_bits(), a.delay().to_bits());
    }

    #[test]
    fn nlse_many_empty_and_zeros() {
        assert!(nlse_many(&[]).is_never());
        assert!(nlse_many(&[DelayValue::ZERO, DelayValue::ZERO]).is_never());
        let a = enc(0.5);
        assert_eq!(nlse_many(&[a, DelayValue::ZERO]), a);
    }

    #[test]
    fn shift_distributes_through_nlse() {
        let a = DelayValue::from_delay(0.7);
        let b = DelayValue::from_delay(-0.3);
        for &delta in &[0.0, 1.0, -2.5, 10.0] {
            let lhs = nlse_shifted(a, b, delta);
            let rhs = nlse(a, b).delayed(delta);
            assert!((lhs.delay() - rhs.delay()).abs() < 1e-12);
        }
    }

    #[test]
    fn staged_nlse_equals_flat() {
        // nLSE(nLSE(x,y),z) == nLSE over all three: the §3 recurrence identity.
        let x = enc(0.2);
        let y = enc(0.3);
        let z = enc(0.4);
        let staged = nlse(nlse(x, y), z);
        let flat = nlse_many(&[x, y, z]);
        assert!((staged.delay() - flat.delay()).abs() < 1e-12);
    }
}
