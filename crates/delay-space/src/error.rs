//! Error types for encoding and renormalisation.

use std::error::Error;
use std::fmt;

/// Error returned when a real number cannot be encoded into delay space.
///
/// Only values in `[0, ∞)` have a delay-space image (`0` maps to an infinite
/// delay). Negative values must go through [`crate::SplitValue`], and NaN is
/// never representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// The input was negative; use [`crate::SplitValue::encode_signed`].
    Negative,
    /// The input was NaN.
    NotANumber,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Negative => {
                write!(f, "negative values need the split representation")
            }
            EncodeError::NotANumber => write!(f, "NaN is not encodable in delay space"),
        }
    }
}

impl Error for EncodeError {}

/// Error returned by exact delay-space subtraction ([`crate::ops::nlde`])
/// when the subtrahend is at least as large as the minuend in importance
/// space, so the difference would be negative (or the inputs were invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct NormalizeError {
    /// Which side of the split pair dominated, for diagnostics.
    pub dominant_is_second: bool,
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nLDE undefined: second operand is not smaller than the first in importance space"
        )
    }
}

impl Error for NormalizeError {}
