//! The [`DelayValue`] newtype: a single rising edge in delay space.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use crate::EncodeError;

/// A value encoded as a temporal delay: `x' = -ln(x)`.
///
/// The wrapped `f64` is the delay itself (in abstract *units*; the hardware
/// layer maps one unit onto a physical time via the *unit scale*). It is
/// guaranteed never to be NaN. `+∞` is a first-class citizen: it encodes
/// importance-space `0`, an edge that never fires. Negative delays are legal
/// — they encode importance-space values greater than `1` — because delay
/// space is shift-invariant and hardware re-references them with a constant
/// offset (§2.3 of the paper).
///
/// # Ordering
///
/// `DelayValue` is totally ordered by **delay** (earlier edge first). Note
/// that this is the *reverse* of importance-space ordering: the smallest
/// delay carries the largest value. [`DelayValue::min`]/[`max`] therefore
/// implement race-logic first/last arrival on this encoding.
///
/// ```
/// use ta_delay_space::DelayValue;
/// let big = DelayValue::encode(0.9)?;
/// let small = DelayValue::encode(0.1)?;
/// assert!(big < small); // larger importance arrives earlier
/// # Ok::<(), ta_delay_space::EncodeError>(())
/// ```
///
/// [`max`]: DelayValue::max
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayValue(f64);

impl DelayValue {
    /// The additive identity of delay-space multiplication: zero delay,
    /// which decodes to importance-space `1`.
    pub const ONE: DelayValue = DelayValue(0.0);

    /// The edge that never arrives: infinite delay, importance-space `0`.
    pub const ZERO: DelayValue = DelayValue(f64::INFINITY);

    /// Encodes a non-negative importance-space value as a delay.
    ///
    /// ```
    /// use ta_delay_space::DelayValue;
    /// let v = DelayValue::encode(std::f64::consts::E)?;
    /// assert!((v.delay() + 1.0).abs() < 1e-12); // -ln(e) = -1
    /// # Ok::<(), ta_delay_space::EncodeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::Negative`] for negative inputs and
    /// [`EncodeError::NotANumber`] for NaN.
    pub fn encode(x: f64) -> Result<Self, EncodeError> {
        if x.is_nan() {
            Err(EncodeError::NotANumber)
        } else if x < 0.0 {
            Err(EncodeError::Negative)
        } else {
            Ok(DelayValue(-x.ln()))
        }
    }

    /// Wraps a raw delay (in abstract units).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN; every other `f64` (including `±∞`) is a
    /// valid delay.
    pub fn from_delay(delay: f64) -> Self {
        assert!(!delay.is_nan(), "delay must not be NaN");
        DelayValue(delay)
    }

    /// Decodes back to importance space: `x = e^(-x')`.
    ///
    /// ```
    /// use ta_delay_space::DelayValue;
    /// assert_eq!(DelayValue::ZERO.decode(), 0.0);
    /// assert_eq!(DelayValue::ONE.decode(), 1.0);
    /// ```
    pub fn decode(self) -> f64 {
        (-self.0).exp()
    }

    /// The raw delay in abstract units.
    pub fn delay(self) -> f64 {
        self.0
    }

    /// Whether the edge never fires (importance-space zero).
    pub fn is_never(self) -> bool {
        self.0 == f64::INFINITY
    }

    /// Shifts the edge later by `delta` units — a *delay element*.
    ///
    /// In importance space this is multiplication by `e^-delta`; the paper
    /// uses it both for weight multiplication and for reference-frame
    /// synchronisation.
    pub fn delayed(self, delta: f64) -> Self {
        debug_assert!(!delta.is_nan());
        DelayValue(self.0 + delta)
    }

    /// First arrival (race-logic `fa`, an OR gate on rising edges): the
    /// earlier of two edges, i.e. the **larger** importance-space value.
    pub fn first_arrival(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Last arrival (race-logic `la`, an AND gate on rising edges): the
    /// later of two edges, i.e. the **smaller** importance-space value.
    pub fn last_arrival(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Race-logic `inhibit`: passes the data edge `self` only if it arrives
    /// strictly before the inhibiting edge `inhibitor`; otherwise the output
    /// never fires.
    ///
    /// ```
    /// use ta_delay_space::DelayValue;
    /// let data = DelayValue::from_delay(1.0);
    /// let gate = DelayValue::from_delay(2.0);
    /// assert_eq!(data.inhibited_by(gate), data);
    /// assert!(gate.inhibited_by(data).is_never());
    /// ```
    pub fn inhibited_by(self, inhibitor: Self) -> Self {
        if self.0 < inhibitor.0 {
            self
        } else {
            DelayValue::ZERO
        }
    }

    /// The minimum by delay (alias of [`first_arrival`]).
    ///
    /// [`first_arrival`]: DelayValue::first_arrival
    pub fn min(self, other: Self) -> Self {
        self.first_arrival(other)
    }

    /// The maximum by delay (alias of [`last_arrival`]).
    ///
    /// [`last_arrival`]: DelayValue::last_arrival
    pub fn max(self, other: Self) -> Self {
        self.last_arrival(other)
    }
}

impl Default for DelayValue {
    /// The default value is [`DelayValue::ZERO`] (importance-space `0`).
    fn default() -> Self {
        DelayValue::ZERO
    }
}

impl Eq for DelayValue {}

impl PartialOrd for DelayValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DelayValue {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is excluded by construction, so total_cmp agrees with the
        // IEEE order on every representable value.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for DelayValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            write!(f, "never (=0)")
        } else {
            write!(f, "{}u (={})", self.0, self.decode())
        }
    }
}

/// Delay-space multiplication: adding delays multiplies importance values.
impl Add for DelayValue {
    type Output = DelayValue;

    fn add(self, rhs: DelayValue) -> DelayValue {
        // ∞ + (-∞) cannot occur: -∞ encodes importance-space +∞, and
        // 0 · ∞ is indeterminate; we saturate to "never" (zero), matching
        // the hardware where a missing edge kills the whole path.
        let d = self.0 + rhs.0;
        if d.is_nan() {
            DelayValue::ZERO
        } else {
            DelayValue(d)
        }
    }
}

impl AddAssign for DelayValue {
    fn add_assign(&mut self, rhs: DelayValue) {
        *self = *self + rhs;
    }
}

/// Delay-space division: subtracting delays divides importance values.
impl Sub for DelayValue {
    type Output = DelayValue;

    fn sub(self, rhs: DelayValue) -> DelayValue {
        let d = self.0 - rhs.0;
        if d.is_nan() {
            DelayValue::ZERO
        } else {
            DelayValue(d)
        }
    }
}

/// Summing delay values multiplies their importance-space values
/// (the empty product is [`DelayValue::ONE`]).
impl Sum for DelayValue {
    fn sum<I: Iterator<Item = DelayValue>>(iter: I) -> DelayValue {
        iter.fold(DelayValue::ONE, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn encode_rejects_bad_inputs() {
        assert_eq!(DelayValue::encode(-1.0), Err(EncodeError::Negative));
        assert_eq!(DelayValue::encode(f64::NAN), Err(EncodeError::NotANumber));
    }

    #[test]
    fn encode_zero_is_never() {
        let z = DelayValue::encode(0.0).unwrap();
        assert!(z.is_never());
        assert_eq!(z, DelayValue::ZERO);
        assert_eq!(z.decode(), 0.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for &x in &[1e-9, 0.001, 0.5, 1.0, 2.0, 1e6] {
            let v = DelayValue::encode(x).unwrap();
            assert!(
                (v.decode() - x).abs() / x < 1e-12,
                "roundtrip failed for {x}"
            );
        }
    }

    #[test]
    fn values_above_one_have_negative_delay() {
        let v = DelayValue::encode(2.0).unwrap();
        assert!(v.delay() < 0.0);
    }

    #[test]
    fn importance_ordering_is_reversed() {
        let hi = DelayValue::encode(0.9).unwrap();
        let lo = DelayValue::encode(0.2).unwrap();
        assert!(hi < lo);
        assert_eq!(hi.first_arrival(lo), hi);
        assert_eq!(hi.last_arrival(lo), lo);
    }

    #[test]
    fn add_is_multiplication() {
        let a = DelayValue::encode(0.25).unwrap();
        let b = DelayValue::encode(0.5).unwrap();
        assert!(((a + b).decode() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn sub_is_division() {
        let a = DelayValue::encode(0.25).unwrap();
        let b = DelayValue::encode(0.5).unwrap();
        assert!(((a - b).decode() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_annihilates_products() {
        let a = DelayValue::encode(0.25).unwrap();
        assert!((a + DelayValue::ZERO).is_never());
        assert_eq!((a + DelayValue::ZERO).decode(), 0.0);
    }

    #[test]
    fn one_is_multiplicative_identity() {
        let a = DelayValue::encode(0.3).unwrap();
        assert_eq!(a + DelayValue::ONE, a);
    }

    #[test]
    fn sum_folds_products() {
        let vals = [0.5, 0.5, 0.25];
        let prod: DelayValue = vals.iter().map(|&x| DelayValue::encode(x).unwrap()).sum();
        assert!((prod.decode() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn inhibit_semantics() {
        let early = DelayValue::from_delay(1.0);
        let late = DelayValue::from_delay(5.0);
        assert_eq!(early.inhibited_by(late), early);
        assert!(late.inhibited_by(early).is_never());
        // Simultaneous arrival inhibits (t_d < t_i required).
        assert!(early.inhibited_by(early).is_never());
        // A never-firing inhibitor passes everything.
        assert_eq!(early.inhibited_by(DelayValue::ZERO), early);
    }

    #[test]
    fn delayed_shifts_edge() {
        let v = DelayValue::from_delay(1.5);
        assert_eq!(v.delayed(2.5).delay(), 4.0);
        // Delaying "never" is still never.
        assert!(DelayValue::ZERO.delayed(3.0).is_never());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", DelayValue::ZERO).is_empty());
        assert!(!format!("{}", DelayValue::ONE).is_empty());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DelayValue>();
    }
}
