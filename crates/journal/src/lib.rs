//! Append-only write-ahead journal with CRC-framed records.
//!
//! This crate is the durability primitive under `tconv batch --journal`
//! checkpoint/resume and `tconv serve` crash recovery (DESIGN.md §5.13).
//! It is deliberately small and std-only:
//!
//! * **Append-only framing** — every record is an opaque byte payload
//!   wrapped in a fixed header (`magic | u32 length | u32 CRC-32`). The
//!   journal never interprets payloads; layering record semantics on top
//!   is the caller's job.
//! * **Torn-tail truncation** — [`Journal::open`] scans the file front to
//!   back and accepts the longest valid prefix of records. The first
//!   frame that fails its magic, length bound, or CRC marks the torn
//!   tail: everything from that offset on is discarded and the file is
//!   truncated there, so a crash mid-append (the only write this crate
//!   ever does) recovers to exactly the records whose appends completed.
//!   Corruption is therefore not an open error — it is the expected
//!   crash artifact the format is designed to shed. A corrupt *file
//!   header* is different: that means the path is not (or is no longer)
//!   a journal we wrote, and opening fails loud with a typed error.
//! * **Fsync policy** — [`FsyncPolicy`] picks the durability/latency
//!   trade: `Always` fsyncs every append, `Batch` fsyncs every
//!   [`BATCH_SYNC_EVERY`] appends (and on [`Journal::sync`]/compaction),
//!   `Never` leaves flushing to the OS. Callers at a consistency barrier
//!   call [`Journal::sync`] explicitly.
//! * **Snapshot/compaction** — [`Journal::compact`] rewrites the journal
//!   to a caller-provided record set via write-to-temp + fsync + atomic
//!   rename, so a crash during compaction leaves either the old journal
//!   or the new one, never a hybrid.
//!
//! Format versioning fails loud: a journal whose header carries a newer
//! format version than this build understands opens with
//! [`JournalError::VersionMismatch`] instead of guessing at the framing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal file-format version written into the header.
pub const FORMAT_VERSION: u16 = 1;

/// File header magic: identifies a file as a ta-journal.
pub const FILE_MAGIC: [u8; 4] = *b"TAJL";

/// Per-record frame magic.
pub const RECORD_MAGIC: [u8; 2] = [0xA5, 0x5A];

/// File header length in bytes: magic + u16 version + u16 reserved.
pub const HEADER_LEN: u64 = 8;

/// Record frame overhead: magic + u32 payload length + u32 CRC-32.
pub const RECORD_OVERHEAD: u64 = 10;

/// Hard bound on a single record payload. A corrupt length field cannot
/// make the scanner allocate past this.
pub const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// Appends between fsyncs under [`FsyncPolicy::Batch`].
pub const BATCH_SYNC_EVERY: u32 = 8;

/// When the journal forces bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: a completed append survives power loss.
    Always,
    /// fsync every [`BATCH_SYNC_EVERY`] appends and at explicit barriers
    /// ([`Journal::sync`], compaction). The recommended default: bounded
    /// loss window, near-`Never` latency.
    Batch,
    /// Never fsync; the OS flushes on its own schedule. Survives process
    /// death (kill -9) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` | `batch` | `never`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every way the journal layer can fail.
///
/// Note what is *not* here: record-level corruption. Torn or corrupt
/// record tails are recovered by truncation at open, reported through
/// [`Recovery::truncated_bytes`], and never error.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the journal was doing.
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file exists but does not start with a ta-journal header —
    /// refusing to truncate what we did not write.
    NotAJournal {
        /// The offending path.
        path: PathBuf,
    },
    /// The file header carries a format version this build does not
    /// understand. Version bumps fail loud instead of misframing.
    VersionMismatch {
        /// Version found in the header.
        got: u16,
        /// Version this build writes.
        want: u16,
    },
    /// An append payload exceeds [`MAX_RECORD`].
    RecordTooLarge {
        /// The payload length.
        len: usize,
        /// The bound.
        max: u32,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, source } => write!(f, "journal {op}: {source}"),
            JournalError::NotAJournal { path } => {
                write!(f, "{} is not a ta-journal file", path.display())
            }
            JournalError::VersionMismatch { got, want } => {
                write!(f, "journal format version {got} (this build reads {want})")
            }
            JournalError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> JournalError {
    move |source| JournalError::Io { op, source }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven.
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) over `bytes` — the per-record checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

/// What [`Journal::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Every valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded from the torn tail (0 for a clean file).
    pub truncated_bytes: u64,
    /// True if the file did not exist (or was empty) and a fresh header
    /// was written.
    pub created: bool,
}

/// Cumulative size counters for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Records currently in the file (recovered + appended − compacted
    /// away).
    pub records: u64,
    /// File length in bytes, including the header.
    pub bytes: u64,
}

/// An open write-ahead journal. See the crate docs for the format and
/// the recovery contract.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    records: u64,
    bytes: u64,
    unsynced_appends: u32,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, recovering every intact
    /// record and truncating the torn tail, then positions for append.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure,
    /// [`JournalError::NotAJournal`] when the file exists but is not a
    /// journal, and [`JournalError::VersionMismatch`] when its format
    /// version is newer than this build.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<(Journal, Recovery), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err("open"))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(io_err("read"))?;

        let mut created = false;
        if buf.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&FILE_MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&[0, 0]);
            file.write_all(&header).map_err(io_err("write header"))?;
            if policy != FsyncPolicy::Never {
                file.sync_data().map_err(io_err("fsync header"))?;
            }
            created = true;
            buf = header;
        } else {
            if buf.len() < HEADER_LEN as usize || buf[..4] != FILE_MAGIC {
                return Err(JournalError::NotAJournal {
                    path: path.to_path_buf(),
                });
            }
            let got = u16::from_le_bytes([buf[4], buf[5]]);
            if got != FORMAT_VERSION {
                return Err(JournalError::VersionMismatch {
                    got,
                    want: FORMAT_VERSION,
                });
            }
        }

        // Scan records; `off` always points at the start of the next
        // candidate frame. The first invalid frame is the torn tail.
        let mut records = Vec::new();
        let mut off = HEADER_LEN as usize;
        loop {
            let rest = buf.len() - off;
            if rest == 0 {
                break;
            }
            if rest < RECORD_OVERHEAD as usize {
                break; // torn mid-header
            }
            if buf[off..off + 2] != RECORD_MAGIC {
                break; // torn or overwritten frame start
            }
            let len = u32::from_le_bytes([buf[off + 2], buf[off + 3], buf[off + 4], buf[off + 5]]);
            let crc = u32::from_le_bytes([buf[off + 6], buf[off + 7], buf[off + 8], buf[off + 9]]);
            if len > MAX_RECORD {
                break; // corrupt length
            }
            let body_start = off + RECORD_OVERHEAD as usize;
            let body_end = body_start + len as usize;
            if body_end > buf.len() {
                break; // torn mid-payload
            }
            let payload = &buf[body_start..body_end];
            if crc32(payload) != crc {
                break; // bit rot or torn write inside the payload
            }
            records.push(payload.to_vec());
            off = body_end;
        }

        let truncated_bytes = (buf.len() - off) as u64;
        if truncated_bytes > 0 {
            file.set_len(off as u64).map_err(io_err("truncate tail"))?;
            if policy != FsyncPolicy::Never {
                file.sync_data().map_err(io_err("fsync truncate"))?;
            }
        }
        file.seek(SeekFrom::Start(off as u64))
            .map_err(io_err("seek"))?;

        let journal = Journal {
            file,
            path: path.to_path_buf(),
            policy,
            records: records.len() as u64,
            bytes: off as u64,
            unsynced_appends: 0,
        };
        Ok((
            journal,
            Recovery {
                records,
                truncated_bytes,
                created,
            },
        ))
    }

    /// Appends one record. The payload is on disk (in the OS cache) when
    /// this returns; whether it is on stable storage depends on the
    /// [`FsyncPolicy`].
    ///
    /// # Errors
    ///
    /// [`JournalError::RecordTooLarge`] past [`MAX_RECORD`], otherwise
    /// [`JournalError::Io`].
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        if payload.len() > MAX_RECORD as usize {
            return Err(JournalError::RecordTooLarge {
                len: payload.len(),
                max: MAX_RECORD,
            });
        }
        // One contiguous write per record keeps the torn-tail window to a
        // single frame: either the whole record lands or the scanner
        // truncates at its start.
        let mut frame = Vec::with_capacity(RECORD_OVERHEAD as usize + payload.len());
        frame.extend_from_slice(&RECORD_MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame).map_err(io_err("append"))?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.unsynced_appends += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch => {
                if self.unsynced_appends >= BATCH_SYNC_EVERY {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces every appended byte to stable storage regardless of policy
    /// — the explicit consistency barrier.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when fsync fails.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(io_err("fsync"))?;
        self.unsynced_appends = 0;
        Ok(())
    }

    /// Rewrites the journal to contain exactly `records` (a snapshot),
    /// atomically: the new content is written to a temp file, fsynced,
    /// and renamed over the old journal. A crash at any point leaves
    /// either the complete old journal or the complete new one.
    ///
    /// # Errors
    ///
    /// [`JournalError::RecordTooLarge`] or [`JournalError::Io`].
    pub fn compact<'a, I>(&mut self, records: I) -> Result<(), JournalError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut tmp_path = self.path.clone().into_os_string();
        tmp_path.push(".tmp");
        let tmp_path = PathBuf::from(tmp_path);

        let mut buf = Vec::new();
        buf.extend_from_slice(&FILE_MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        let mut count = 0u64;
        for payload in records {
            if payload.len() > MAX_RECORD as usize {
                return Err(JournalError::RecordTooLarge {
                    len: payload.len(),
                    max: MAX_RECORD,
                });
            }
            buf.extend_from_slice(&RECORD_MAGIC);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
            count += 1;
        }

        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(io_err("create snapshot"))?;
        tmp.write_all(&buf).map_err(io_err("write snapshot"))?;
        tmp.sync_data().map_err(io_err("fsync snapshot"))?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path).map_err(io_err("rename snapshot"))?;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(io_err("reopen"))?;
        file.seek(SeekFrom::End(0)).map_err(io_err("seek"))?;
        if self.policy != FsyncPolicy::Never {
            file.sync_data().map_err(io_err("fsync reopened"))?;
        }
        self.file = file;
        self.records = count;
        self.bytes = buf.len() as u64;
        self.unsynced_appends = 0;
        Ok(())
    }

    /// Current record/byte counters for telemetry.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            records: self.records,
            bytes: self.bytes,
        }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ta-journal-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("j.wal");
        let _ = std::fs::remove_file(&path);
        let (mut j, rec) = Journal::open(&path, FsyncPolicy::Batch).unwrap();
        assert!(rec.created);
        assert!(rec.records.is_empty());
        j.append(b"alpha").unwrap();
        j.append(b"").unwrap();
        j.append(&[0xFFu8; 1000]).unwrap();
        j.sync().unwrap();
        assert_eq!(j.stats().records, 3);
        drop(j);

        let (j2, rec2) = Journal::open(&path, FsyncPolicy::Batch).unwrap();
        assert!(!rec2.created);
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.records.len(), 3);
        assert_eq!(rec2.records[0], b"alpha");
        assert_eq!(rec2.records[1], b"");
        assert_eq!(rec2.records[2], vec![0xFFu8; 1000]);
        assert_eq!(j2.stats().records, 3);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let path = dir.join("j.wal");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        j.append(b"keep me").unwrap();
        j.append(b"also keep").unwrap();
        let good_len = j.stats().bytes;
        j.append(b"torn record body").unwrap();
        drop(j);

        // Chop the last record mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (j2, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(j2.stats().bytes, good_len);
        // The file itself shrank back to the good prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let dir = tmp_dir("continue");
        let path = dir.join("j.wal");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        j.append(b"one").unwrap();
        drop(j);
        // Corrupt tail: half a record header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&RECORD_MAGIC);
        bytes.push(9);
        std::fs::write(&path, &bytes).unwrap();

        let (mut j2, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.records.len(), 1);
        j2.append(b"two").unwrap();
        drop(j2);

        let (_, rec3) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(rec3.records, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn future_format_version_fails_loud() {
        let dir = tmp_dir("version");
        let path = dir.join("j.wal");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FILE_MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        std::fs::write(&path, &bytes).unwrap();
        match Journal::open(&path, FsyncPolicy::Batch) {
            Err(JournalError::VersionMismatch { got: 99, want }) => {
                assert_eq!(want, FORMAT_VERSION)
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_journal_file_is_refused() {
        let dir = tmp_dir("notajournal");
        let path = dir.join("j.wal");
        std::fs::write(&path, b"PGM or something else entirely").unwrap();
        assert!(matches!(
            Journal::open(&path, FsyncPolicy::Batch),
            Err(JournalError::NotAJournal { .. })
        ));
    }

    #[test]
    fn oversized_append_is_typed() {
        let dir = tmp_dir("oversize");
        let path = dir.join("j.wal");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        // Don't allocate 64 MiB in a unit test: the length check happens
        // before any framing, so a zero-length slice with a fake length
        // is not constructible — use a just-over-bound vec instead.
        let big = vec![0u8; MAX_RECORD as usize + 1];
        assert!(matches!(
            j.append(&big),
            Err(JournalError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn compaction_is_atomic_and_reopenable() {
        let dir = tmp_dir("compact");
        let path = dir.join("j.wal");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Batch).unwrap();
        for i in 0..20u8 {
            j.append(&[i; 100]).unwrap();
        }
        let before = j.stats().bytes;
        let keep: Vec<Vec<u8>> = vec![b"snapshot".to_vec(), b"cursor".to_vec()];
        j.compact(keep.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(j.stats().records, 2);
        assert!(j.stats().bytes < before);
        // The journal stays appendable after compaction.
        j.append(b"post-compact").unwrap();
        drop(j);

        let (_, rec) = Journal::open(&path, FsyncPolicy::Batch).unwrap();
        assert_eq!(
            rec.records,
            vec![
                b"snapshot".to_vec(),
                b"cursor".to_vec(),
                b"post-compact".to_vec()
            ]
        );
    }

    #[test]
    fn corrupt_crc_truncates_from_that_record() {
        let dir = tmp_dir("crc");
        let path = dir.join("j.wal");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        j.append(b"good one").unwrap();
        let keep_until = j.stats().bytes;
        j.append(b"will be corrupted").unwrap();
        j.append(b"shadowed by the corruption").unwrap();
        drop(j);

        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside the second record.
        let idx = keep_until as usize + RECORD_OVERHEAD as usize + 3;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        // Truncation is prefix-wise: the third (intact) record is behind
        // the corrupt one and is discarded with it.
        assert_eq!(rec.records, vec![b"good one".to_vec()]);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep_until);
    }
}
