//! Property tests for the journal format, mirroring the wire-decoder
//! contract from the serve codec suite: round-trips are exact, and any
//! corruption — bit flips, truncated tails, duplicated records, pure
//! noise — yields either a typed error or clean prefix truncation.
//! Never a panic, never a silent misparse.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use ta_journal::{
    crc32, FsyncPolicy, Journal, FILE_MAGIC, FORMAT_VERSION, HEADER_LEN, RECORD_OVERHEAD,
};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A unique scratch path per proptest case (cases run in-process, and a
/// shrinking run revisits the same test body many times).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ta-journal-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}.wal",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn arb_record() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 0..128)
}

fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(arb_record(), 0..12)
}

/// Writes `records` through the journal API and returns the file bytes.
fn write_journal(path: &PathBuf, records: &[Vec<u8>]) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let (mut j, rec) = Journal::open(path, FsyncPolicy::Never).unwrap();
    assert!(rec.created);
    for r in records {
        j.append(r).unwrap();
    }
    drop(j);
    std::fs::read(path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(records in arb_records()) {
        let path = scratch("roundtrip");
        write_journal(&path, &records);
        let (j, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert_eq!(&rec.records, &records);
        prop_assert_eq!(j.stats().records, records.len() as u64);
    }

    #[test]
    fn truncated_tail_recovers_a_prefix(records in arb_records(), cut_seed in 0usize..1 << 20) {
        let path = scratch("truncate");
        let bytes = write_journal(&path, &records);
        // Cut anywhere from "header only" to "one byte short of intact".
        let min = HEADER_LEN as usize;
        let cut = min + cut_seed % (bytes.len() - min).max(1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (_, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        // Recovery is exactly some prefix of what was appended — records
        // whose append completed before the cut survive verbatim, the
        // rest vanish; nothing is reordered or invented.
        prop_assert!(rec.records.len() <= records.len());
        prop_assert_eq!(&rec.records[..], &records[..rec.records.len()]);
        // And the file is left scannable: a second open agrees.
        let (_, rec2) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(rec2.truncated_bytes, 0);
        prop_assert_eq!(&rec2.records, &rec.records);
    }

    #[test]
    fn single_bit_flip_never_panics_or_misparses(
        records in arb_records(),
        pos_seed in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let path = scratch("bitflip");
        let mut bytes = write_journal(&path, &records);
        let i = pos_seed % bytes.len();
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        match Journal::open(&path, FsyncPolicy::Never) {
            // Header flips fail loud with a typed error.
            Err(e) => {
                let text = e.to_string();
                prop_assert!(!text.is_empty());
                prop_assert!(i < HEADER_LEN as usize);
            }
            // Record flips truncate: recovery is a prefix of the original
            // records, except that a flip inside one payload can at worst
            // be "caught by CRC" — it can never alter a record that is
            // still reported as valid *before* the flip position's frame.
            Ok((_, rec)) => {
                prop_assert!(rec.records.len() <= records.len());
                for (got, want) in rec.records.iter().zip(records.iter()) {
                    if got != want {
                        // A surviving-but-different record means the flip
                        // landed in this record's payload *and* forged the
                        // CRC — impossible for a single bit flip.
                        prop_assert!(false, "silent misparse: record differs from written");
                    }
                }
            }
        }
    }

    #[test]
    fn duplicated_record_frames_parse_as_duplicates(
        records in prop::collection::vec(arb_record(), 1..8),
        dup_seed in 0usize..64,
    ) {
        // Re-appending a frame verbatim (e.g. a retried writer) is not
        // corruption: both copies are valid and both are returned, in
        // order. Idempotency is the caller's layer (keyed records).
        let path = scratch("dup");
        let bytes = write_journal(&path, &records);

        // Locate frame boundaries by re-scanning with the public layout.
        let mut frames = Vec::new();
        let mut off = HEADER_LEN as usize;
        while off < bytes.len() {
            let len = u32::from_le_bytes([
                bytes[off + 2], bytes[off + 3], bytes[off + 4], bytes[off + 5],
            ]) as usize;
            let end = off + RECORD_OVERHEAD as usize + len;
            frames.push((off, end));
            off = end;
        }
        let (s, e) = frames[dup_seed % frames.len()];
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[s..e]);
        std::fs::write(&path, &doubled).unwrap();

        let (_, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(rec.records.len(), records.len() + 1);
        prop_assert_eq!(&rec.records[..records.len()], &records[..]);
        prop_assert_eq!(&rec.records[records.len()], &records[dup_seed % frames.len()]);
    }

    #[test]
    fn random_garbage_after_header_never_panics(noise in prop::collection::vec(0u8..=255, 0..512)) {
        let path = scratch("noise");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FILE_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&noise);
        std::fs::write(&path, &bytes).unwrap();

        // Noise may accidentally contain valid frames (magic + CRC both
        // have to line up); whatever survives must re-open identically.
        let (_, rec) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        let (_, rec2) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(rec2.truncated_bytes, 0);
        prop_assert_eq!(&rec2.records, &rec.records);
    }

    #[test]
    fn random_files_never_panic(noise in prop::collection::vec(0u8..=255, 0..64)) {
        // Totally arbitrary files: open either succeeds (file happened to
        // look like a journal) or returns a typed error — never panics.
        let path = scratch("rawnoise");
        std::fs::write(&path, &noise).unwrap();
        match Journal::open(&path, FsyncPolicy::Never) {
            Ok((j, _)) => prop_assert!(j.stats().bytes >= HEADER_LEN),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn crc_detects_any_single_byte_change(
        payload in prop::collection::vec(0u8..=255, 1..128),
        pos_seed in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut mutated = payload.clone();
        let i = pos_seed % mutated.len();
        mutated[i] ^= xor;
        prop_assert_ne!(crc32(&payload), crc32(&mutated));
    }
}
