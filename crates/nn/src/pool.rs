//! Pooling and rectification in the temporal domain.
//!
//! These operations are the cheapest things race logic does:
//!
//! * **max** is a first-arrival — an OR gate on rising edges, because the
//!   largest importance value carries the *shortest* delay;
//! * **min** is a last-arrival — an AND gate;
//! * **ReLU** is free: a dual-rail value's positive part *is* its ReLU, so
//!   rectification just means not routing the negative rail onward.

use ta_image::Image;

/// 2×2-style max-pooling with the given window and stride (window = stride
/// = 2 gives classic halving). In hardware this is one `fa` (OR) gate per
/// output — no arithmetic at all.
///
/// **Truncation semantics**: the output is
/// `⌊(w − window) / stride⌋ + 1` × `⌊(h − window) / stride⌋ + 1` — only
/// window placements that fit entirely inside the input produce an
/// output. When `stride` does not divide `w − window` (or the height
/// analogue), the trailing columns/rows that cannot seat a full window
/// are *dropped*, never padded or partially pooled; every output value
/// therefore aggregates exactly `window²` input pixels. A 1×1 window
/// with stride 1 is the identity.
///
/// # Panics
///
/// Panics if `window` or `stride` is zero, or the window does not fit.
pub fn max_pool(input: &Image, window: usize, stride: usize) -> Image {
    pool_by(input, window, stride, f64::max, f64::NEG_INFINITY)
}

/// Min-pooling: one `la` (AND) gate per output.
///
/// Output geometry and truncation semantics are exactly [`max_pool`]'s:
/// trailing rows/columns that cannot seat a full window are dropped.
///
/// # Panics
///
/// Same contract as [`max_pool`].
pub fn min_pool(input: &Image, window: usize, stride: usize) -> Image {
    pool_by(input, window, stride, f64::min, f64::INFINITY)
}

fn pool_by(
    input: &Image,
    window: usize,
    stride: usize,
    merge: fn(f64, f64) -> f64,
    identity: f64,
) -> Image {
    assert!(
        window > 0 && stride > 0,
        "window and stride must be non-zero"
    );
    assert!(
        window <= input.width() && window <= input.height(),
        "pooling window must fit the feature map"
    );
    let ow = (input.width() - window) / stride + 1;
    let oh = (input.height() - window) / stride + 1;
    Image::from_fn(ow, oh, |ox, oy| {
        let mut acc = identity;
        for wy in 0..window {
            for wx in 0..window {
                acc = merge(acc, input.get(ox * stride + wx, oy * stride + wy));
            }
        }
        acc
    })
}

/// Rectified linear unit. In the dual-rail representation this costs
/// nothing: the positive rail of a renormalised `⟨x_pos, x_neg⟩` *is*
/// `max(x, 0)`, so hardware simply leaves `x_neg` unrouted.
pub fn relu(input: &Image) -> Image {
    input.map(|v| v.max(0.0))
}

/// Average pooling. In delay space a window mean is one nLSE tree plus a
/// single fixed delay of `ln(window²)` units (dividing by `n` is
/// multiplying by `1/n`, i.e. delaying by `-ln(1/n)`), so it costs the
/// same hardware as one extra accumulation stage — unlike digital
/// pipelines where the divide is real work.
///
/// # Panics
///
/// Same contract as [`max_pool`].
pub fn avg_pool(input: &Image, window: usize, stride: usize) -> Image {
    let summed = pool_by(input, window, stride, |a, b| a + b, 0.0);
    let n = (window * window) as f64;
    summed.map(|v| v / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Image {
        Image::from_fn(4, 4, |x, y| (y * 4 + x) as f64)
    }

    #[test]
    fn max_pool_2x2() {
        let out = max_pool(&ramp(), 2, 2);
        assert_eq!((out.width(), out.height()), (2, 2));
        assert_eq!(out.get(0, 0), 5.0);
        assert_eq!(out.get(1, 1), 15.0);
    }

    #[test]
    fn min_pool_2x2() {
        let out = min_pool(&ramp(), 2, 2);
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(1, 1), 10.0);
    }

    #[test]
    fn overlapping_windows() {
        let out = max_pool(&ramp(), 2, 1);
        assert_eq!((out.width(), out.height()), (3, 3));
        assert_eq!(out.get(0, 0), 5.0);
        assert_eq!(out.get(2, 2), 15.0);
    }

    #[test]
    fn avg_pool_means_windows() {
        let out = avg_pool(&ramp(), 2, 2);
        assert_eq!(out.get(0, 0), (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
        assert_eq!(out.get(1, 1), (10.0 + 11.0 + 14.0 + 15.0) / 4.0);
    }

    #[test]
    fn avg_pool_matches_delay_space_formulation() {
        // mean = nLSE over the window followed by a +ln(n) delay.
        use ta_delay_space::{ops, DelayValue};
        let values = [0.2, 0.9, 0.4, 0.7];
        let edges: Vec<DelayValue> = values
            .iter()
            .map(|&v| DelayValue::encode(v).unwrap())
            .collect();
        let pooled = ops::nlse_many(&edges)
            .delayed((values.len() as f64).ln())
            .decode();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((pooled - mean).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negative() {
        let img = Image::from_fn(2, 2, |x, y| x as f64 - y as f64);
        let r = relu(&img);
        assert_eq!(r.pixels(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_matches_first_arrival_semantics() {
        // fa on delay-space edges == max in importance space.
        use ta_delay_space::DelayValue;
        let values = [0.2, 0.9, 0.4, 0.7];
        let edges: Vec<DelayValue> = values
            .iter()
            .map(|&v| DelayValue::encode(v).unwrap())
            .collect();
        let first = edges.iter().copied().reduce(DelayValue::min).unwrap();
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((first.decode() - max).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_window_panics() {
        max_pool(&ramp(), 5, 1);
    }
}
