//! Multi-channel temporal convolution layers.

use ta_circuits::EnergyTally;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription, SystemError};
use ta_delay_space::SplitValue;
use ta_image::{Image, Kernel};

/// A 2-D convolution layer compiled onto delay-space engines.
///
/// Weights are organised `[out_channel][in_channel]`, each a [`Kernel`] of
/// one shared shape. One [`Architecture`] is compiled per *input* channel
/// (carrying that channel's slice of every output filter, exactly like the
/// multi-kernel MAC blocks of §4.3); output channels are then summed
/// across input channels with one extra delay-space addition stage, whose
/// energy is accounted explicitly.
#[derive(Debug, Clone)]
pub struct TemporalConv2d {
    weights: Vec<Vec<Kernel>>,
    /// Per-output-channel bias, empty when the layer is unbiased. A bias
    /// is delay-space-native: a constant edge at delay `-ln|b|` joining
    /// the accumulation on the rail matching its sign — one more nLSE
    /// leaf, no arithmetic unit.
    bias: Vec<f64>,
    stride: usize,
    cfg: ArchConfig,
    in_channels: usize,
    out_channels: usize,
}

impl TemporalConv2d {
    /// Builds a layer from `weights[out][in]` kernels.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the weight grid is empty, ragged, or
    /// shape-mixed, or the stride is zero.
    pub fn new(
        weights: Vec<Vec<Kernel>>,
        stride: usize,
        cfg: ArchConfig,
    ) -> Result<Self, SystemError> {
        if stride == 0 {
            return Err(SystemError::ZeroStride);
        }
        let Some(first_row) = weights.first() else {
            return Err(SystemError::NoKernels);
        };
        let in_channels = first_row.len();
        if in_channels == 0 {
            return Err(SystemError::NoKernels);
        }
        if weights.iter().any(|row| row.len() != in_channels) {
            return Err(SystemError::MixedKernelShapes);
        }
        let shape = (first_row[0].width(), first_row[0].height());
        if weights
            .iter()
            .flatten()
            .any(|k| (k.width(), k.height()) != shape)
        {
            return Err(SystemError::MixedKernelShapes);
        }
        Ok(TemporalConv2d {
            out_channels: weights.len(),
            in_channels,
            weights,
            bias: Vec::new(),
            stride,
            cfg,
        })
    }

    /// Adds a per-output-channel bias. In hardware each bias is one
    /// constant reference edge (delay `-ln|b|` from the frame start)
    /// feeding the output's accumulation — the cheapest parameter a
    /// temporal layer can have.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != out_channels` or any bias is non-finite.
    pub fn with_bias(mut self, bias: Vec<f64>) -> Self {
        assert_eq!(bias.len(), self.out_channels, "one bias per output channel");
        assert!(bias.iter().all(|b| b.is_finite()), "biases must be finite");
        self.bias = bias;
        self
    }

    /// The per-output-channel biases (empty when unbiased).
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Runs the layer. `input` holds one image per input channel (all the
    /// same size); the result holds one feature map per output channel
    /// plus the layer's energy.
    ///
    /// Feature values enter through the layer's VTC, whose range contract
    /// is `[e^-6, 1]`: values outside it saturate. (In a real multi-layer
    /// design the inter-stage rescale is a free reference shift in delay
    /// space — §2.1; the saturation models staying within one reference
    /// frame.)
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the input geometry cannot host the
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_channels` or the channel images have
    /// mixed sizes.
    pub fn forward(
        &self,
        input: &[Image],
        mode: ArithmeticMode,
        seed: u64,
    ) -> Result<(Vec<Image>, EnergyTally), SystemError> {
        assert_eq!(input.len(), self.in_channels, "one image per input channel");
        let (w, h) = (input[0].width(), input[0].height());
        assert!(
            input.iter().all(|i| (i.width(), i.height()) == (w, h)),
            "all channels must share one geometry"
        );

        let mut energy = EnergyTally::new();
        // Per input channel: one engine carrying that channel's kernels
        // for every output filter.
        let mut per_in: Vec<Vec<Image>> = Vec::with_capacity(self.in_channels);
        for (ci, channel) in input.iter().enumerate() {
            let kernels: Vec<Kernel> = self.weights.iter().map(|row| row[ci].clone()).collect();
            let desc = SystemDescription::new(w, h, kernels, self.stride)?;
            let arch = Architecture::new(desc, self.cfg.clone())?;
            let run = exec::run(&arch, channel, mode, seed.wrapping_add(ci as u64))
                .expect("geometry checked above");
            energy += run.energy;
            per_in.push(run.outputs);
        }

        // Channel summation: one more delay-space addition tree per output
        // pixel. Functionally exact here (§3's staging makes the order
        // immaterial); energetically it is (in_channels - 1) extra nLSE
        // operations per output pixel, charged below. The optional bias
        // joins the same stage as one constant edge per output.
        let outputs: Vec<Image> = (0..self.out_channels)
            .map(|co| {
                let first = per_in[0][co].clone();
                let summed = per_in[1..]
                    .iter()
                    .fold(first, |acc, maps| sum_images(&acc, &maps[co]));
                match self.bias.get(co) {
                    Some(&b) if b != 0.0 => {
                        let bias = SplitValue::encode_signed(b)
                            .expect("biases validated finite at construction");
                        summed.map(|v| {
                            let sv = SplitValue::encode_signed(v).expect("finite feature value");
                            (sv + bias).normalize().decode_signed()
                        })
                    }
                    _ => summed,
                }
            })
            .collect();
        if self.in_channels > 1 {
            let unit = ta_circuits::NlseUnit::with_terms(self.cfg.nlse_terms, self.cfg.unit);
            let px = outputs[0].width() * outputs[0].height();
            let merges = px * self.out_channels * (self.in_channels - 1);
            // Signed sums run both rails through the adder.
            energy.delay_pj += 2.0 * merges as f64 * unit.energy_pj(&self.cfg.energy, 2);
        }
        Ok((outputs, energy))
    }
}

/// Element-wise signed addition through the split representation.
fn sum_images(a: &Image, b: &Image) -> Image {
    Image::from_fn(a.width(), a.height(), |x, y| {
        let sa = SplitValue::encode_signed(a.get(x, y)).expect("finite feature value");
        let sb = SplitValue::encode_signed(b.get(x, y)).expect("finite feature value");
        (sa + sb).normalize().decode_signed()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_image::{conv, metrics, synth};

    fn cfg() -> ArchConfig {
        ArchConfig::fast_1ns(7, 20)
    }

    #[test]
    fn validates_weight_grid() {
        assert!(matches!(
            TemporalConv2d::new(vec![], 1, cfg()),
            Err(SystemError::NoKernels)
        ));
        assert!(matches!(
            TemporalConv2d::new(vec![vec![]], 1, cfg()),
            Err(SystemError::NoKernels)
        ));
        assert!(matches!(
            TemporalConv2d::new(
                vec![
                    vec![Kernel::sobel_x()],
                    vec![Kernel::sobel_x(), Kernel::sobel_y()]
                ],
                1,
                cfg()
            ),
            Err(SystemError::MixedKernelShapes)
        ));
        assert!(matches!(
            TemporalConv2d::new(
                vec![vec![Kernel::sobel_x(), Kernel::box_filter(5)]],
                1,
                cfg()
            ),
            Err(SystemError::MixedKernelShapes)
        ));
        assert!(matches!(
            TemporalConv2d::new(vec![vec![Kernel::sobel_x()]], 0, cfg()),
            Err(SystemError::ZeroStride)
        ));
    }

    #[test]
    fn single_channel_matches_reference() {
        let layer = TemporalConv2d::new(vec![vec![Kernel::sobel_x()]], 1, cfg()).unwrap();
        let img = synth::natural_image(24, 24, 1);
        let (out, energy) = layer
            .forward(std::slice::from_ref(&img), ArithmeticMode::DelayExact, 0)
            .unwrap();
        let clipped = img.map(|p| p.max((-6.0_f64).exp()));
        let reference = conv::convolve(&clipped, &Kernel::sobel_x(), 1);
        assert!(metrics::normalized_rmse(&out[0], &reference) < 1e-9);
        assert!(energy.total_pj() > 0.0);
    }

    #[test]
    fn multi_channel_sums_inputs() {
        // Two input channels through identity-ish 1×1 kernels: output is
        // w0·c0 + w1·c1.
        let k = |v: f64| Kernel::new("w", 1, 1, vec![v]);
        let layer = TemporalConv2d::new(vec![vec![k(0.5), k(-0.25)]], 1, cfg()).unwrap();
        let c0 = synth::natural_image(10, 10, 2).map(|p| p.max(0.01));
        let c1 = synth::natural_image(10, 10, 3).map(|p| p.max(0.01));
        let (out, _) = layer
            .forward(&[c0.clone(), c1.clone()], ArithmeticMode::DelayExact, 0)
            .unwrap();
        for y in 0..10 {
            for x in 0..10 {
                let want = 0.5 * c0.get(x, y) - 0.25 * c1.get(x, y);
                assert!((out[0].get(x, y) - want).abs() < 1e-9, "({x},{y})");
            }
        }
    }

    #[test]
    fn bias_shifts_each_output_channel() {
        let k = |v: f64| Kernel::new("w", 1, 1, vec![v]);
        let layer = TemporalConv2d::new(vec![vec![k(1.0)], vec![k(1.0)]], 1, cfg())
            .unwrap()
            .with_bias(vec![0.25, -0.5]);
        assert_eq!(layer.bias(), &[0.25, -0.5]);
        let img = synth::natural_image(8, 8, 6).map(|p| p.max(0.01));
        let (out, _) = layer
            .forward(std::slice::from_ref(&img), ArithmeticMode::DelayExact, 0)
            .unwrap();
        for y in 0..8 {
            for x in 0..8 {
                let p = img.get(x, y);
                assert!((out[0].get(x, y) - (p + 0.25)).abs() < 1e-9, "({x},{y})");
                assert!((out[1].get(x, y) - (p - 0.5)).abs() < 1e-9, "({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one bias per output channel")]
    fn bias_arity_checked() {
        let layer = TemporalConv2d::new(vec![vec![Kernel::sobel_x()]], 1, cfg()).unwrap();
        let _ = layer.with_bias(vec![0.1, 0.2]);
    }

    #[test]
    fn channel_merge_energy_is_charged() {
        let k = || vec![Kernel::box_filter(3)];
        let one = TemporalConv2d::new(vec![k()], 1, cfg()).unwrap();
        let two = TemporalConv2d::new(vec![[k(), k()].concat()], 1, cfg()).unwrap();
        let img = synth::natural_image(16, 16, 4);
        let (_, e1) = one
            .forward(std::slice::from_ref(&img), ArithmeticMode::DelayApprox, 0)
            .unwrap();
        let (_, e2) = two
            .forward(&[img.clone(), img], ArithmeticMode::DelayApprox, 0)
            .unwrap();
        // Two channels: double the engine energy plus the merge stage.
        assert!(e2.total_pj() > 2.0 * e1.total_pj());
    }

    #[test]
    fn approx_mode_stays_close() {
        let layer = TemporalConv2d::new(
            vec![vec![Kernel::sobel_x()], vec![Kernel::sobel_y()]],
            1,
            cfg(),
        )
        .unwrap();
        let img = synth::natural_image(24, 24, 5);
        let (out, _) = layer
            .forward(std::slice::from_ref(&img), ArithmeticMode::DelayApprox, 0)
            .unwrap();
        assert_eq!(out.len(), 2);
        let reference = conv::convolve(&img, &Kernel::sobel_x(), 1);
        assert!(metrics::normalized_rmse(&out[0], &reference) < 0.1);
    }

    #[test]
    #[should_panic(expected = "one image per input channel")]
    fn wrong_channel_count_panics() {
        let layer = TemporalConv2d::new(vec![vec![Kernel::sobel_x()]], 1, cfg()).unwrap();
        let img = synth::natural_image(8, 8, 0);
        let _ = layer.forward(&[img.clone(), img], ArithmeticMode::DelayExact, 0);
    }
}
