//! Temporal CNN layers on the delay-space convolution engine.
//!
//! The paper motivates delay-space arithmetic with convolutional neural
//! networks and closes by proposing "additional computation in the
//! temporal domain, such as more convolutional layers or min/max
//! selections" (§5.3, §7). This crate implements exactly that extension:
//!
//! * [`TemporalConv2d`] — a multi-channel convolution layer compiled onto
//!   [`ta_core::Architecture`] engines (one per input channel), with
//!   delay-space channel summation;
//! * [`relu`] — rectification, which is *free* in the dual-rail
//!   representation: dropping the negative rail before renormalisation is
//!   ReLU by construction (§2.2);
//! * [`max_pool`] — max-pooling, which is a bare first-arrival (`fa`/OR)
//!   gate on temporal edges: the earliest edge is the largest value;
//! * [`avg_pool`] — mean pooling, one nLSE tree plus a fixed `ln(n)` delay
//!   (division is free in the log domain);
//! * [`TemporalNetwork`] — a sequential container with per-layer energy
//!   accounting.
//!
//! ```
//! use ta_nn::{Layer, TemporalConv2d, TemporalNetwork};
//! use ta_core::{ArchConfig, ArithmeticMode};
//! use ta_image::{synth, Kernel};
//!
//! let net = TemporalNetwork::new(vec![
//!     Layer::Conv(TemporalConv2d::new(
//!         vec![vec![Kernel::sobel_x()], vec![Kernel::sobel_y()]], // 2 out-channels × 1 in-channel
//!         1,
//!         ArchConfig::fast_1ns(7, 20),
//!     )?),
//!     Layer::Relu,
//!     Layer::MaxPool2,
//! ]);
//! let input = vec![synth::natural_image(32, 32, 1)];
//! let out = net.forward(&input, ArithmeticMode::DelayApprox, 0)?;
//! assert_eq!(out.features.len(), 2);
//! assert_eq!(out.features[0].width(), 15); // (32-3+1)/2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod network;
mod pool;

pub use conv::TemporalConv2d;
pub use network::{ForwardResult, Layer, NnError, TemporalNetwork};
pub use pool::{avg_pool, max_pool, min_pool, relu};
