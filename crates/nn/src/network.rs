//! Sequential temporal networks with per-layer energy accounting.

use std::error::Error;
use std::fmt;

use ta_circuits::EnergyTally;
use ta_core::{ArithmeticMode, SystemError};
use ta_image::Image;

use crate::{avg_pool, max_pool, relu, TemporalConv2d};

/// One stage of a [`TemporalNetwork`].
// Conv carries its compiled configuration inline; networks hold a handful
// of layers, so the variant size imbalance is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Layer {
    /// A delay-space convolution layer.
    Conv(TemporalConv2d),
    /// Dual-rail rectification (free in hardware, §2.2).
    Relu,
    /// 2×2 stride-2 max-pooling (one `fa` gate per output).
    MaxPool2,
    /// 2×2 stride-2 average pooling (one 4-leaf nLSE tree plus a fixed
    /// `ln 4` delay per output — division is free in the log domain).
    AvgPool2,
}

/// Errors raised during a forward pass.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A convolution stage rejected the geometry it received.
    System(SystemError),
    /// A feature map became too small for the next stage.
    FeatureMapTooSmall {
        /// Index of the offending layer.
        layer: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::System(e) => write!(f, "convolution stage failed: {e}"),
            NnError::FeatureMapTooSmall { layer } => {
                write!(f, "feature map too small entering layer {layer}")
            }
        }
    }
}

impl Error for NnError {}

impl From<SystemError> for NnError {
    fn from(e: SystemError) -> Self {
        NnError::System(e)
    }
}

/// The outcome of a forward pass.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// Final feature maps, one per channel.
    pub features: Vec<Image>,
    /// Total energy across all layers.
    pub energy: EnergyTally,
    /// Energy per layer, in layer order (pooling and ReLU are ≈ free).
    pub per_layer_energy: Vec<EnergyTally>,
}

/// A feed-forward stack of temporal layers.
#[derive(Debug, Clone)]
pub struct TemporalNetwork {
    layers: Vec<Layer>,
}

impl TemporalNetwork {
    /// Builds a network from its layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        TemporalNetwork { layers }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Runs the network on multi-channel input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if a stage's geometry is infeasible.
    ///
    /// # Panics
    ///
    /// Panics if `input` is empty.
    pub fn forward(
        &self,
        input: &[Image],
        mode: ArithmeticMode,
        seed: u64,
    ) -> Result<ForwardResult, NnError> {
        assert!(!input.is_empty(), "need at least one input channel");
        let mut features: Vec<Image> = input.to_vec();
        let mut per_layer_energy = Vec::with_capacity(self.layers.len());
        let mut energy = EnergyTally::new();

        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Conv(conv) => {
                    let (out, e) =
                        conv.forward(&features, mode, seed.wrapping_add(i as u64 * 101))?;
                    features = out;
                    energy += e;
                    per_layer_energy.push(e);
                }
                Layer::Relu => {
                    features = features.iter().map(relu).collect();
                    per_layer_energy.push(EnergyTally::new());
                }
                Layer::MaxPool2 => {
                    if features[0].width() < 2 || features[0].height() < 2 {
                        return Err(NnError::FeatureMapTooSmall { layer: i });
                    }
                    features = features.iter().map(|f| max_pool(f, 2, 2)).collect();
                    // One fa gate event per output pixel per channel.
                    let mut e = EnergyTally::new();
                    let px = features[0].width() * features[0].height();
                    e.add_gate_events(px * features.len(), &ta_circuits::EnergyModel::asplos24());
                    energy += e;
                    per_layer_energy.push(e);
                }
                Layer::AvgPool2 => {
                    if features[0].width() < 2 || features[0].height() < 2 {
                        return Err(NnError::FeatureMapTooSmall { layer: i });
                    }
                    features = features.iter().map(|f| avg_pool(f, 2, 2)).collect();
                    // Three nLSE merges plus a ln(4)-unit delay per output.
                    let model = ta_circuits::EnergyModel::asplos24();
                    let scale = ta_circuits::UnitScale::default_1ns();
                    let unit = ta_circuits::NlseUnit::with_terms(7, scale);
                    let mut e = EnergyTally::new();
                    let px = features[0].width() * features[0].height();
                    e.delay_pj += (px * features.len()) as f64 * 3.0 * unit.energy_pj(&model, 2);
                    e.add_delay_units((px * features.len()) as f64 * 4.0_f64.ln(), scale, &model);
                    energy += e;
                    per_layer_energy.push(e);
                }
            }
        }
        Ok(ForwardResult {
            features,
            energy,
            per_layer_energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_core::ArchConfig;
    use ta_image::{conv, synth, Kernel};

    fn two_stage_net() -> TemporalNetwork {
        TemporalNetwork::new(vec![
            Layer::Conv(
                TemporalConv2d::new(
                    vec![vec![Kernel::sobel_x()], vec![Kernel::sobel_y()]],
                    1,
                    ArchConfig::fast_1ns(7, 20),
                )
                .unwrap(),
            ),
            Layer::Relu,
            Layer::MaxPool2,
            Layer::Conv(
                TemporalConv2d::new(
                    vec![vec![Kernel::box_filter(3), Kernel::box_filter(3)]],
                    1,
                    ArchConfig::fast_1ns(7, 20),
                )
                .unwrap(),
            ),
        ])
    }

    #[test]
    fn forward_shapes_and_energy() {
        let net = two_stage_net();
        let input = vec![synth::natural_image(32, 32, 9)];
        let out = net.forward(&input, ArithmeticMode::DelayApprox, 0).unwrap();
        // 32 → conv3 → 30 → pool → 15 → conv3 → 13, one fused channel.
        assert_eq!(out.features.len(), 1);
        assert_eq!(
            (out.features[0].width(), out.features[0].height()),
            (13, 13)
        );
        assert_eq!(out.per_layer_energy.len(), 4);
        assert!(out.per_layer_energy[0].total_pj() > 0.0);
        assert_eq!(out.per_layer_energy[1].total_pj(), 0.0); // ReLU is free
        let sum: f64 = out.per_layer_energy.iter().map(|e| e.total_pj()).sum();
        assert!((sum - out.energy.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn exact_network_matches_software_reference() {
        let net = two_stage_net();
        let img = synth::natural_image(24, 24, 10).map(|p| p.max(0.01));
        let out = net
            .forward(std::slice::from_ref(&img), ArithmeticMode::DelayExact, 0)
            .unwrap();

        // Software reference with identical stages. Between stages the
        // engine re-enters through the VTC, whose range contract is
        // [min_pixel, 1] — the reference applies the same saturation.
        let floor = (-6.0_f64).exp();
        let gx = conv::convolve(&img, &Kernel::sobel_x(), 1);
        let gy = conv::convolve(&img, &Kernel::sobel_y(), 1);
        let p0 = crate::max_pool(&crate::relu(&gx), 2, 2).clamped(floor, 1.0);
        let p1 = crate::max_pool(&crate::relu(&gy), 2, 2).clamped(floor, 1.0);
        let s0 = conv::convolve(&p0, &Kernel::box_filter(3), 1);
        let s1 = conv::convolve(&p1, &Kernel::box_filter(3), 1);
        let want = Image::from_fn(s0.width(), s0.height(), |x, y| s0.get(x, y) + s1.get(x, y));

        // Exact mode differs only by the VTC dynamic-range floor between
        // stages (tiny pooled values below e^-6 saturate).
        let err = ta_image::metrics::normalized_rmse(&out.features[0], &want);
        assert!(err < 5e-3, "nrmse {err}");
    }

    #[test]
    fn avg_pool_layer_means_and_charges_energy() {
        let net = TemporalNetwork::new(vec![Layer::AvgPool2]);
        let input = vec![synth::natural_image(8, 8, 2)];
        let out = net.forward(&input, ArithmeticMode::DelayExact, 0).unwrap();
        assert_eq!((out.features[0].width(), out.features[0].height()), (4, 4));
        let want = crate::avg_pool(&input[0], 2, 2);
        assert_eq!(out.features[0], want);
        // Unlike max-pooling, averaging pays real nLSE energy.
        assert!(out.per_layer_energy[0].total_pj() > 0.0);
    }

    #[test]
    fn too_small_feature_maps_error() {
        let net = TemporalNetwork::new(vec![Layer::MaxPool2, Layer::MaxPool2, Layer::MaxPool2]);
        let input = vec![synth::natural_image(4, 4, 1)];
        let err = net
            .forward(&input, ArithmeticMode::DelayExact, 0)
            .unwrap_err();
        assert!(matches!(err, NnError::FeatureMapTooSmall { layer: 2 }));
    }

    #[test]
    fn noisy_forward_is_seeded() {
        let net = two_stage_net();
        let input = vec![synth::natural_image(24, 24, 11)];
        let a = net
            .forward(&input, ArithmeticMode::DelayApproxNoisy, 5)
            .unwrap();
        let b = net
            .forward(&input, ArithmeticMode::DelayApproxNoisy, 5)
            .unwrap();
        assert_eq!(a.features[0], b.features[0]);
    }
}
