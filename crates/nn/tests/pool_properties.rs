//! Property tests for the temporal pooling layers: `max_pool` and
//! `min_pool` must agree with a naive reference implementation on every
//! geometry — including windows/strides that do not divide the input
//! (trailing rows and columns are truncated, never padded) and the
//! degenerate 1×1 window.

use proptest::prelude::*;
use ta_image::Image;
use ta_nn::{max_pool, min_pool};

/// A random feature map plus a (window, stride) pair guaranteed to fit,
/// biased so non-dividing remainders are common.
fn pool_case() -> impl Strategy<Value = (Image, usize, usize)> {
    (1usize..=12, 1usize..=12)
        .prop_flat_map(|(w, h)| {
            let window = 1..=w.min(h);
            (Just((w, h)), window, 1usize..=4)
        })
        .prop_flat_map(|((w, h), window, stride)| {
            proptest::collection::vec(-100.0f64..100.0, w * h).prop_map(move |px| {
                let img = Image::from_fn(w, h, |x, y| px[y * w + x]);
                (img, window, stride)
            })
        })
}

/// The obvious quadratic-loop reference: every fully-seated window,
/// truncating placements that run past the edge.
fn reference_pool(
    input: &Image,
    window: usize,
    stride: usize,
    merge: fn(f64, f64) -> f64,
) -> Image {
    let ow = (input.width() - window) / stride + 1;
    let oh = (input.height() - window) / stride + 1;
    Image::from_fn(ow, oh, |ox, oy| {
        let mut best = input.get(ox * stride, oy * stride);
        for wy in 0..window {
            for wx in 0..window {
                best = merge(best, input.get(ox * stride + wx, oy * stride + wy));
            }
        }
        best
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn max_pool_matches_naive_reference(case in pool_case()) {
        let (img, window, stride) = case;
        let got = max_pool(&img, window, stride);
        let want = reference_pool(&img, window, stride, f64::max);
        prop_assert_eq!((got.width(), got.height()), (want.width(), want.height()));
        for (a, b) in got.pixels().iter().zip(want.pixels()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn min_pool_matches_naive_reference(case in pool_case()) {
        let (img, window, stride) = case;
        let got = min_pool(&img, window, stride);
        let want = reference_pool(&img, window, stride, f64::min);
        prop_assert_eq!((got.width(), got.height()), (want.width(), want.height()));
        for (a, b) in got.pixels().iter().zip(want.pixels()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn output_dims_follow_truncation_formula(case in pool_case()) {
        let (img, window, stride) = case;
        let out = max_pool(&img, window, stride);
        prop_assert_eq!(out.width(), (img.width() - window) / stride + 1);
        prop_assert_eq!(out.height(), (img.height() - window) / stride + 1);
    }

    #[test]
    fn unit_window_stride_one_is_identity(
        wh in (1usize..=8, 1usize..=8),
        seed in 0u64..1000,
    ) {
        let (w, h) = wh;
        let img = Image::from_fn(w, h, |x, y| {
            ((x as u64 * 31 + y as u64 * 17 + seed) % 97) as f64 - 48.0
        });
        for pooled in [max_pool(&img, 1, 1), min_pool(&img, 1, 1)] {
            prop_assert_eq!((pooled.width(), pooled.height()), (w, h));
            for (a, b) in pooled.pixels().iter().zip(img.pixels()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn max_dominates_min(case in pool_case()) {
        let (img, window, stride) = case;
        let hi = max_pool(&img, window, stride);
        let lo = min_pool(&img, window, stride);
        for (a, b) in hi.pixels().iter().zip(lo.pixels()) {
            prop_assert!(a >= b);
        }
    }
}
