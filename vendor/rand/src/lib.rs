//! Workspace-local stand-in for the parts of the `rand` crate used by this
//! repository.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This crate implements exactly the API surface the
//! workspace consumes — `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over `Range<{float,int}>` — with a deterministic
//! xoshiro256++ generator seeded through SplitMix64 (the same construction
//! the real `SmallRng` uses on 64-bit targets). Streams are reproducible
//! across runs and platforms, which is what the simulator's seeded noise
//! and fault models rely on; they are *not* bit-identical to upstream
//! `rand`, and nothing here is cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range
/// (stand-in for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Sized {
    /// Draws one value uniformly from `range` using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Random number generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the full significand of an f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a value uniformly from the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                let v = range.start + u * (range.end - range.start);
                // Guard the open upper bound against rounding.
                if v < range.end { v } else { range.start }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types (subset of `rand::rngs`).
pub mod rngs {
    /// A small, fast, deterministic generator: xoshiro256++ seeded via
    /// SplitMix64, mirroring the construction of `rand`'s `SmallRng` on
    /// 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let r = &mut rng;
        // Both a generic fn taking &mut R and a &mut R used directly as Rng.
        let _ = draw(r);
        fn draw_dyn(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let _ = draw_dyn(&mut rng);
    }
}
