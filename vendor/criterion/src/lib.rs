//! Workspace-local stand-in for the parts of the `criterion` crate used
//! by this repository's benches.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. The benches only need `Criterion`,
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, and `Bencher::iter`, so that is what this provides:
//! a wall-clock timer that reports mean ns/iteration to stdout. When the
//! binary is run without the `--bench` flag (e.g. under `cargo test`),
//! each benchmark executes a single iteration as a smoke test, mirroring
//! real criterion's test-mode behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for bench code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
pub struct Criterion {
    bench_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            bench_mode: self.bench_mode,
            sample_size: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each batch.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if !self.bench_mode {
            // Test mode (`cargo test`): one smoke iteration, untimed.
            black_box(f());
            self.iters += 1;
            return;
        }
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.sample_size as u64;
    }

    fn report(&self, id: &str) {
        if !self.bench_mode {
            println!("{id}: ok (test mode, 1 iteration)");
            return;
        }
        if self.iters == 0 {
            println!("{id}: no iterations recorded");
            return;
        }
        let ns_per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("{id}: {ns_per_iter:.1} ns/iter ({} iterations)", self.iters);
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            bench_mode: false,
            sample_size: 5,
        };
        let mut ran = 0u32;
        c.bench_function("unit", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn groups_share_configuration() {
        let mut c = Criterion {
            bench_mode: true,
            sample_size: 50,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("inner", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 2);
    }
}
