//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::Rng;

/// Acceptable length specifications for [`vec`]: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange(len..len + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange(range)
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let range = self.size.0.clone();
        assert!(!range.is_empty(), "vec strategy with empty size range");
        let len = if range.end - range.start == 1 {
            range.start
        } else {
            rng.gen_range(range)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = new_rng("collection_unit");
        for _ in 0..200 {
            assert_eq!(vec(0.0..1.0f64, 7).sample(&mut rng).len(), 7);
            let v = vec(0u8..5, 1..4).sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
