//! Workspace-local stand-in for the parts of the `proptest` crate used by
//! this repository.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This crate provides the same *interface* for
//! the features the workspace's property tests use — the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), range / tuple /
//! array / `Just` / `prop_oneof!` / `prop_map` / `prop_flat_map`
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros —
//! backed by a simple seeded sampler. Unlike real proptest there is no
//! shrinking and no failure persistence: a failing case panics with the
//! values embedded in the assertion message. Case counts honour the
//! `PROPTEST_CASES` environment variable and `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::type_complexity)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports property tests are written against.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`, the module-style entry point
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its arguments from the given
/// strategies for a number of cases and runs the body, which may
/// `return Ok(())` early or fall off the end.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = $crate::test_runner::case_count(&__cfg);
                let mut __rng = $crate::test_runner::new_rng(stringify!($name));
                for __case in 0..__cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("property test {} failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking: panics with
/// the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let mut __union = $crate::strategy::Union::new();
        $(
            {
                let __s = $strat;
                __union = __union.arm(
                    $weight as u32,
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::sample(&__s, rng)
                    }),
                );
            }
        )+
        __union
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}
