//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::{Rng, SampleUniform};

/// A way of generating test values (no shrinking support).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_inclusive_int {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // Shift down one so the half-open range stays in type.
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full type domain: no half-open equivalent exists.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_inclusive_float {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_inclusive_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|i| self[i].sample(rng))
    }
}

/// A weighted union of strategies, built by [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    total_weight: u32,
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
}

impl<T> Union<T> {
    /// Creates an empty union (must gain at least one arm before sampling).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            total_weight: 0,
            arms: Vec::new(),
        }
    }

    /// Adds one weighted arm.
    pub fn arm(mut self, weight: u32, sampler: Box<dyn Fn(&mut TestRng) -> T>) -> Self {
        assert!(weight > 0, "union arm weight must be positive");
        self.total_weight += weight;
        self.arms.push((weight, sampler));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "union has no arms");
        let mut pick = rng.gen_range(0u32..self.total_weight);
        for (weight, sampler) in &self.arms {
            if pick < *weight {
                return sampler(rng);
            }
            pick -= weight;
        }
        unreachable!("weights cover the sampled index")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_tuples_arrays_and_maps_sample_in_bounds() {
        let mut rng = new_rng("strategy_unit");
        for _ in 0..500 {
            let v = (0.5..2.0f64).sample(&mut rng);
            assert!((0.5..2.0).contains(&v));
            let n = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&n));
            let (a, b) = (0u8..3, -1.0..1.0f64).sample(&mut rng);
            assert!(a < 3 && (-1.0..1.0).contains(&b));
            let arr = [0.0..5.0f64, 0.0..5.0f64].sample(&mut rng);
            assert!(arr.iter().all(|x| (0.0..5.0).contains(x)));
            let doubled = (1usize..10).prop_map(|x| x * 2).sample(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 20);
            let flat = (1usize..3)
                .prop_flat_map(|n| crate::collection::vec(0.0..1.0f64, n))
                .sample(&mut rng);
            assert!(!flat.is_empty() && flat.len() < 3);
        }
    }

    #[test]
    fn union_honours_weights_roughly() {
        let union = Union::new()
            .arm(3, Box::new(|_rng: &mut TestRng| true))
            .arm(1, Box::new(|_rng: &mut TestRng| false));
        let mut rng = new_rng("union_unit");
        let hits = (0..4000).filter(|_| union.sample(&mut rng)).count();
        assert!((2700..3300).contains(&hits), "weighted arm hit {hits}/4000");
    }
}
