//! Test-execution plumbing (subset of `proptest::test_runner`).

use rand::SeedableRng;

/// The generator property tests sample from.
pub type TestRng = rand::rngs::SmallRng;

/// Per-block configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the case count for one test: the `PROPTEST_CASES` environment
/// variable overrides the block configuration.
pub fn case_count(cfg: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases)
}

/// Creates the deterministic generator for one named test. Seeded from
/// the test name so distinct tests explore distinct streams while every
/// run of the same test is reproducible.
pub fn new_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Failure type property-test bodies may return early with
/// (`return Ok(())` to skip a case is the only use in this workspace).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// An explicit rejection/failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
