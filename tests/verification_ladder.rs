//! The paper's §5.1 verification strategy as an end-to-end integration
//! test: the same compiled architecture must reproduce software
//! convolution exactly under importance-space and exact delay-space
//! arithmetic, and degrade gracefully through the approximate and noisy
//! modes.

use temporal_conv::core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use temporal_conv::image::{conv, metrics, synth, Image, Kernel};

fn ladder_for(kernels: Vec<Kernel>, stride: usize) -> Vec<(ArithmeticMode, f64)> {
    let size = 40;
    let image = synth::natural_image(size, size, 11);
    // Compare against the convolution of the VTC-clipped image: pixels
    // below the converter's dynamic-range floor saturate by design.
    let clipped = image.map(|p| p.max((-6.0_f64).exp()));
    let references: Vec<Image> = kernels
        .iter()
        .map(|k| conv::convolve(&clipped, k, stride))
        .collect();
    let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
    ArithmeticMode::ALL
        .iter()
        .map(|&mode| {
            let run = exec::run(&arch, &image, mode, 5).unwrap();
            (mode, run.pooled_rmse(&references))
        })
        .collect()
}

#[test]
fn exact_modes_reproduce_software_convolution() {
    for (kernels, stride) in [
        (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1),
        (vec![Kernel::pyr_down_5x5()], 2),
        (vec![Kernel::gaussian(7, 0.0)], 1),
        (vec![Kernel::edge_ternary(2, 2)], 2),
        (vec![Kernel::box_filter(3)], 3),
    ] {
        let name = kernels[0].name().to_string();
        let ladder = ladder_for(kernels, stride);
        // ImportanceExact compares against the *unclipped* arithmetic, so
        // allow only the clipping residue; DelayExact must match to
        // floating-point noise.
        assert!(
            ladder[0].1 < 2e-3,
            "{name}: importance-exact error {}",
            ladder[0].1
        );
        assert!(
            ladder[1].1 < 1e-9,
            "{name}: delay-exact error {}",
            ladder[1].1
        );
    }
}

#[test]
fn realism_costs_accuracy_monotonically() {
    for (kernels, stride) in [
        (vec![Kernel::pyr_down_5x5()], 2),
        (vec![Kernel::sobel_x()], 1),
    ] {
        let name = kernels[0].name().to_string();
        let ladder = ladder_for(kernels, stride);
        let exact = ladder[1].1;
        let approx = ladder[2].1;
        let noisy = ladder[3].1;
        assert!(approx > exact, "{name}: approximation must not be free");
        assert!(
            noisy > 0.8 * approx,
            "{name}: noise should not help ({noisy} vs {approx})"
        );
        assert!(noisy < 0.2, "{name}: noisy error {noisy} implausibly large");
    }
}

#[test]
fn split_kernel_outputs_are_signed() {
    // Sobel responses must carry both signs through the dual-rail path.
    let size = 24;
    let image = Image::from_fn(size, size, |x, _| if x < 12 { 0.2 } else { 0.8 });
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
    let run = exec::run(&arch, &image, ArithmeticMode::DelayApprox, 0).unwrap();
    let out = &run.outputs[0];
    let (lo, hi) = out.min_max();
    assert!(hi > 0.5, "rising edge must respond positively, max {hi}");
    assert_eq!(lo, 0.0, "no falling edges in this scene");

    let flipped = Image::from_fn(size, size, |x, _| if x < 12 { 0.8 } else { 0.2 });
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
    let run = exec::run(&arch, &flipped, ArithmeticMode::DelayApprox, 0).unwrap();
    let (lo, _) = run.outputs[0].min_max();
    assert!(lo < -0.5, "falling edge must respond negatively, min {lo}");
}

#[test]
fn metrics_and_modes_compose_across_crates() {
    // Cross-crate smoke: energy identical across modes, geometry follows
    // conv::output_dims, timing is finite and positive.
    let size = 32;
    let image = synth::natural_image(size, size, 3);
    let desc = SystemDescription::new(size, size, vec![Kernel::pyr_down_5x5()], 2).unwrap();
    let arch = Architecture::new(desc.clone(), ArchConfig::fast_1ns(5, 10)).unwrap();
    let (ow, oh) = desc.output_dims();
    let mut energies = Vec::new();
    for mode in ArithmeticMode::ALL {
        let run = exec::run(&arch, &image, mode, 9).unwrap();
        assert_eq!((run.outputs[0].width(), run.outputs[0].height()), (ow, oh));
        assert!(run.timing.frame_delay_ns > 0.0);
        energies.push(run.energy.total_pj());
    }
    assert!(energies.windows(2).all(|w| w[0] == w[1]));
    assert!(
        metrics::normalized_rmse(
            &synth::natural_image(ow, oh, 0),
            &synth::natural_image(ow, oh, 0)
        ) == 0.0
    );
}
