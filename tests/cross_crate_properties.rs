//! Property-based integration tests: random kernels and images through
//! the whole stack, checking the invariants that hold regardless of
//! configuration.

use proptest::prelude::*;
use temporal_conv::core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use temporal_conv::image::{conv, Image, Kernel};

/// Random small kernels with mixed-sign weights (including zeros).
fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (1usize..=4, 1usize..=4)
        .prop_flat_map(|(w, h)| {
            (
                Just(w),
                Just(h),
                prop::collection::vec(
                    prop_oneof![
                        3 => -2.0..2.0f64,
                        1 => Just(0.0),
                    ],
                    w * h,
                ),
            )
        })
        .prop_map(|(w, h, weights)| Kernel::new("prop", w, h, weights))
}

/// Random small images with pixels in the VTC's dynamic range.
fn image_strategy() -> impl Strategy<Value = Image> {
    prop::collection::vec(0.01..1.0f64, 144).prop_map(|px| Image::from_pixels(12, 12, px).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn delay_exact_always_matches_software_conv(
        kernel in kernel_strategy(),
        image in image_strategy(),
        stride in 1usize..=2,
    ) {
        let desc = match SystemDescription::new(12, 12, vec![kernel.clone()], stride) {
            Ok(d) => d,
            Err(_) => return Ok(()), // kernel/stride does not fit: not this test's concern
        };
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(5, 8)).unwrap();
        let run = exec::run(&arch, &image, ArithmeticMode::DelayExact, 0).unwrap();
        let reference = conv::convolve(&image, &kernel, stride);
        for y in 0..reference.height() {
            for x in 0..reference.width() {
                let got = run.outputs[0].get(x, y);
                let want = reference.get(x, y);
                prop_assert!(
                    (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "({x},{y}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn energy_and_area_are_positive_and_config_monotone(
        kernel in kernel_strategy(),
        stride in 1usize..=2,
    ) {
        let desc = match SystemDescription::new(12, 12, vec![kernel], stride) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let small = Architecture::new(desc.clone(), ArchConfig::fast_1ns(3, 5)).unwrap();
        let large = Architecture::new(desc, ArchConfig::fast_1ns(12, 5)).unwrap();
        prop_assert!(small.energy_per_frame().total_pj() > 0.0);
        prop_assert!(small.area_mm2() > 0.0);
        // More max-terms never reduce energy or area.
        prop_assert!(large.energy_per_frame().total_pj() >= small.energy_per_frame().total_pj());
        prop_assert!(large.area_mm2() >= small.area_mm2());
    }

    #[test]
    fn noisy_runs_are_reproducible_per_seed(
        image in image_strategy(),
        seed in 0u64..1000,
    ) {
        let desc =
            SystemDescription::new(12, 12, vec![Kernel::box_filter(3)], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 5)).unwrap();
        let a = exec::run(&arch, &image, ArithmeticMode::DelayApproxNoisy, seed).unwrap();
        let b = exec::run(&arch, &image, ArithmeticMode::DelayApproxNoisy, seed).unwrap();
        prop_assert_eq!(&a.outputs[0], &b.outputs[0]);
    }

    #[test]
    fn approx_error_bounded_by_accumulated_minimax(
        image in image_strategy(),
    ) {
        // Box filter: all-positive, so every output is a pure nLSE tree
        // result whose delay error is at most ops × per-op minimax error.
        let desc =
            SystemDescription::new(12, 12, vec![Kernel::box_filter(3)], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(8, 5)).unwrap();
        let run = exec::run(&arch, &image, ArithmeticMode::DelayApprox, 0).unwrap();
        let reference = conv::convolve(&image, &Kernel::box_filter(3), 1);
        let eps = arch.nlse_unit().approx().max_slice_error();
        let ops = 9.0; // 8 merges + headroom
        for y in 0..reference.height() {
            for x in 0..reference.width() {
                let got = run.outputs[0].get(x, y);
                let want = reference.get(x, y);
                // Relative error bound from accumulated delay error.
                let bound = ((ops * eps).exp() - 1.0) * want.abs() + 1e-6;
                prop_assert!(
                    (got - want).abs() <= bound,
                    "({x},{y}): {got} vs {want} (bound {bound})"
                );
            }
        }
    }
}
