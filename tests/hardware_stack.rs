//! Integration across the hardware stack: the gate-level netlists of
//! `ta-race-logic`, the functional unit models of `ta-circuits`, and the
//! architecture-level simulator of `ta-core` must all agree on the same
//! arithmetic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use temporal_conv::circuits::{NldeUnit, NlseUnit, NoiseRealization, UnitScale};
use temporal_conv::delay_space::{ops, DelayValue, SplitValue};
use temporal_conv::race_logic::{blocks, CircuitBuilder};

#[test]
fn three_layers_of_nlse_agree() {
    // Formula ≡ functional unit ≡ gate-level netlist, across term counts.
    for terms in [2, 5, 9] {
        let scale = UnitScale::new(1.0, 50.0);
        let unit = NlseUnit::with_terms(terms, scale);
        let k = unit.latency_units();
        let circuit = blocks::nlse_circuit(unit.approx().terms(), k, true).unwrap();
        let mut rng = SmallRng::seed_from_u64(terms as u64);
        for _ in 0..200 {
            let x = DelayValue::from_delay(rng.gen_range(0.0..6.0));
            let y = DelayValue::from_delay(rng.gen_range(0.0..6.0));
            let formula = blocks::nlse_min_of_max(x, y, unit.approx().terms()).delayed(k);
            let functional = unit.eval_ideal(x, y);
            let netlist = circuit.evaluate(&[x, y]).unwrap()[0];
            assert!((formula.delay() - functional.delay()).abs() < 1e-9);
            assert!((functional.delay() - netlist.delay()).abs() < 1e-9);
        }
    }
}

#[test]
fn three_layers_of_nlde_agree() {
    for terms in [4, 10, 20] {
        let scale = UnitScale::new(1.0, 50.0);
        let unit = NldeUnit::with_terms(terms, scale);
        let k = unit.latency_units();
        let circuit = blocks::nlde_circuit(unit.approx().terms(), k).unwrap();
        let mut rng = SmallRng::seed_from_u64(100 + terms as u64);
        for _ in 0..200 {
            let x = DelayValue::from_delay(rng.gen_range(0.0..4.0));
            let y = DelayValue::from_delay(x.delay() + rng.gen_range(0.0..4.0));
            let functional = unit.eval_ideal(x, y);
            let netlist = circuit.evaluate(&[x, y]).unwrap()[0];
            match (functional.is_never(), netlist.is_never()) {
                (true, true) => {}
                (false, false) => {
                    assert!((functional.delay() - netlist.delay()).abs() < 1e-9)
                }
                _ => panic!("dead-zone disagreement at x={x}, y={y}"),
            }
        }
    }
}

#[test]
fn split_mac_through_approximate_hardware() {
    // A signed dot product computed three ways: pure f64, exact delay
    // space (SplitValue), and the approximate hardware units.
    let xs = [0.31, 0.78, 0.12, 0.55, 0.92];
    let ws = [0.8, -1.5, 0.0, 2.0, -0.4];
    let expected: f64 = xs.iter().zip(&ws).map(|(x, w)| x * w).sum();

    // Exact delay space.
    let mut acc = SplitValue::ZERO;
    for (&x, &w) in xs.iter().zip(&ws) {
        acc = acc + SplitValue::encode_signed(x).unwrap() * SplitValue::encode_signed(w).unwrap();
    }
    let exact = acc.normalize().decode_signed();
    assert!((exact - expected).abs() < 1e-9);

    // Approximate hardware: accumulate each rail with an nLSE unit,
    // renormalise with an nLDE unit (the §4.4 datapath).
    let scale = UnitScale::new(1.0, 50.0);
    let add = NlseUnit::with_terms(10, scale);
    let sub = NldeUnit::with_terms(20, scale);
    let k = add.latency_units();
    let mut pos = DelayValue::ZERO;
    let mut neg = DelayValue::ZERO;
    for (&x, &w) in xs.iter().zip(&ws) {
        if w == 0.0 {
            continue; // absent path
        }
        let term = DelayValue::encode(x).unwrap() + DelayValue::encode(w.abs()).unwrap();
        if w > 0.0 {
            pos = add.eval_ideal(pos, term).delayed(-k);
        } else {
            neg = add.eval_ideal(neg, term).delayed(-k);
        }
    }
    let (minuend, subtrahend, sign) = if pos <= neg {
        (pos, neg, 1.0)
    } else {
        (neg, pos, -1.0)
    };
    let got = sign
        * sub
            .eval_ideal(minuend, subtrahend)
            .delayed(-sub.latency_units())
            .decode();
    assert!(
        (got - expected).abs() < 0.12,
        "hardware MAC {got} vs {expected}"
    );
}

#[test]
fn noise_injection_is_consistent_between_layers() {
    // A netlist evaluated with a jitter hook and the functional unit under
    // an ideal realization bracket the same nominal value.
    let scale = UnitScale::new(1.0, 50.0);
    let unit = NlseUnit::with_terms(6, scale);
    let x = DelayValue::from_delay(1.0);
    let y = DelayValue::from_delay(1.4);
    let nominal = unit.eval_ideal(x, y);
    let r = NoiseRealization::ideal(scale);
    let mut rng = SmallRng::seed_from_u64(4);
    let quiet = unit.eval_noisy(x, y, &r, &mut rng);
    assert!((nominal.delay() - quiet.delay()).abs() < 1e-12);
}

#[test]
fn recurrent_fold_matches_wide_tree_netlist() {
    // §3: an n-input accumulation staged through a 2-input unit equals the
    // wide tree built in gates, up to the fitted function itself.
    let scale = UnitScale::new(1.0, 50.0);
    let unit = NlseUnit::with_terms(5, scale);
    let k = unit.latency_units();
    let inputs: Vec<DelayValue> = (0..6)
        .map(|i| DelayValue::from_delay(0.4 + 0.7 * i as f64))
        .collect();

    // Wide tree in gates.
    let mut b = CircuitBuilder::new();
    let nodes: Vec<_> = (0..inputs.len())
        .map(|i| b.input(format!("x{i}")))
        .collect();
    let out = blocks::build_nlse_tree(&mut b, &nodes, unit.approx().terms(), k);
    b.output("sum", out.node);
    let circuit = b.build().unwrap();
    let tree_val = circuit.evaluate(&inputs).unwrap()[0].delayed(-out.shift);

    // Exact reference.
    let exact = ops::nlse_many(&inputs);
    assert!(
        (tree_val.delay() - exact.delay()).abs() < 6.0 * unit.approx().max_slice_error(),
        "tree {} vs exact {}",
        tree_val.delay(),
        exact.delay()
    );

    // Staged recurrent fold through the same unit.
    let mut acc = inputs[0];
    for &v in &inputs[1..] {
        acc = unit.eval_ideal(acc, v).delayed(-k);
    }
    assert!(
        (acc.delay() - exact.delay()).abs() < 6.0 * unit.approx().max_slice_error(),
        "fold {} vs exact {}",
        acc.delay(),
        exact.delay()
    );
}

#[test]
fn gate_level_engine_matches_functional_engine_end_to_end() {
    // The apex of the verification pyramid: the whole convolution engine
    // compiled to race-logic netlists agrees with the functional
    // simulator on complete frames, across kernel families.
    use temporal_conv::core::{
        exec, ArchConfig, Architecture, ArithmeticMode, GateEngine, SystemDescription,
    };
    use temporal_conv::image::{metrics, synth, Kernel};

    for (kernels, stride) in [
        (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1usize),
        (vec![Kernel::pyr_down_5x5()], 2),
        (vec![Kernel::sharpen()], 1),
    ] {
        let size = 14;
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(5, 12)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(size, size, 31);
        let gates = engine.run(&arch, &img).unwrap();
        let functional = exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        for (g, f) in gates.iter().zip(&functional.outputs) {
            assert!(
                metrics::rmse(g, f) < 1e-9,
                "engines diverge: {}",
                metrics::rmse(g, f)
            );
        }
    }
}
